"""Metrics registry: counters, gauges, histograms with per-node labels.

Series are keyed by ``(metric name, sorted label items)``.  Per metric
name the number of distinct label sets is capped
(:attr:`Metrics.max_series`): observability must never be the thing that
eats the memory of a long run because someone labelled a counter with a
message sequence number.  Excess series fold into a single overflow
series per name and are counted in :attr:`Metrics.dropped_series`.

Histograms use fixed upper-bound buckets (default: decades from 1e-6 to
1e3) plus an implicit overflow bucket, and track count/sum/min/max so
means survive export even when the bucket resolution is coarse.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Histogram", "Metrics", "NULL_METRICS", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (virtual seconds / wall seconds
#: both live comfortably on a decade grid).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0,
)

#: Label-set key used when a metric exceeds the cardinality cap.
OVERFLOW_KEY: tuple = (("overflow", "true"),)


def label_key(labels: dict) -> tuple:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max side-car stats."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        v = float(value)
        lo = 0
        hi = len(self.bounds)
        while lo < hi:  # bisect over the (small) bound list
            mid = (lo + hi) // 2
            if v <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_json(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Histogram":
        h = cls(tuple(data["bounds"]))
        h.counts = [int(c) for c in data["counts"]]
        h.count = int(data["count"])
        h.total = float(data["sum"])
        h.min = data.get("min")
        h.max = data.get("max")
        return h


class Metrics:
    """Counter / gauge / histogram registry with labelled series.

    All mutators are cheap dict operations; hot loops should still batch
    (accumulate locally, flush once per call) exactly as they do for
    :class:`~repro.localsearch.engine.OpStats`.
    """

    __slots__ = ("counters", "gauges", "hists", "max_series", "dropped_series")

    def __init__(self, max_series: int = 256):
        #: name -> {label_key: value}
        self.counters: dict[str, dict[tuple, float]] = {}
        self.gauges: dict[str, dict[tuple, float]] = {}
        #: name -> {label_key: Histogram}
        self.hists: dict[str, dict[tuple, Histogram]] = {}
        self.max_series = int(max_series)
        #: Series discarded into the overflow key by the cardinality cap.
        self.dropped_series = 0

    # -- series admission -----------------------------------------------------

    def _slot(self, table: dict, name: str, labels: dict) -> tuple:
        series = table.setdefault(name, {})
        key = label_key(labels)
        if key not in series and len(series) >= self.max_series:
            self.dropped_series += 1
            return OVERFLOW_KEY
        return key

    # -- mutators --------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the counter series ``name``/``labels``."""
        key = self._slot(self.counters, name, labels)
        series = self.counters[name]
        series[key] = series.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Record the current value of a gauge series (last write wins)."""
        key = self._slot(self.gauges, name, labels)
        self.gauges[name][key] = float(value)

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels) -> None:
        """Record one sample into the histogram series ``name``/``labels``."""
        key = self._slot(self.hists, name, labels)
        series = self.hists[name]
        hist = series.get(key)
        if hist is None:
            hist = series[key] = Histogram(bounds)
        hist.observe(value)

    # -- queries ---------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter series (0.0 when absent)."""
        return self.counters.get(name, {}).get(label_key(labels), 0.0)

    def histogram(self, name: str, **labels) -> Optional[Histogram]:
        return self.hists.get(name, {}).get(label_key(labels))

    def series_count(self, name: str) -> int:
        """Distinct label sets currently held for a metric name."""
        return sum(
            len(table.get(name, ()))
            for table in (self.counters, self.gauges, self.hists)
        )

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.hists.clear()
        self.dropped_series = 0


class _NullMetrics(Metrics):
    """Shared no-op registry handed out by disabled tracers.

    Instrumentation may call it unconditionally; nothing is stored, so
    the disabled path costs one method call and no allocation.
    """

    __slots__ = ()

    def inc(self, name, value=1.0, **labels):  # noqa: D102 - no-op
        return None

    def set_gauge(self, name, value, **labels):
        return None

    def observe(self, name, value, bounds=DEFAULT_BUCKETS, **labels):
        return None


NULL_METRICS = _NullMetrics()
