"""Local search: the shared engine layer (distance views, don't-look
queues, telemetry, operator registry), 2-opt, Or-opt, 3-opt,
Lin-Kernighan, kicks, and Chained LK."""

from .batch import BATCH_BACKENDS, BatchChainResult, BatchKickRunner
from .chained_lk import ChainedLK, ChainedLKResult, chained_lk
from .engine import (
    DistView,
    DontLookQueue,
    OpStats,
    get_operator,
    operator_names,
    register_operator,
    run_pipeline,
)
from .kicks import KICK_STRATEGIES, apply_double_bridge, get_kick
from .lin_kernighan import LKConfig, LinKernighan, lin_kernighan
from .or_opt import or_opt
from .three_opt import three_opt
from .two_opt import two_opt

__all__ = [
    "DistView",
    "DontLookQueue",
    "OpStats",
    "register_operator",
    "get_operator",
    "operator_names",
    "run_pipeline",
    "two_opt",
    "or_opt",
    "three_opt",
    "LKConfig",
    "LinKernighan",
    "lin_kernighan",
    "KICK_STRATEGIES",
    "get_kick",
    "apply_double_bridge",
    "BATCH_BACKENDS",
    "BatchChainResult",
    "BatchKickRunner",
    "ChainedLK",
    "ChainedLKResult",
    "chained_lk",
]
