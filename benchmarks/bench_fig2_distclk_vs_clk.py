"""Paper Figure 2 (c, d): DistCLK(8) vs ABCC-CLK anytime curves.

    "Relation between tour length and CPU time for the Distributed
    Chained Lin-Kernighan algorithm (DistCLK) compared with the results
    from the original CLK (ABCC-CLK)" — Random-walk kick, fl1577 and
    sw24978; the x-axis is CPU time per node.

Shape to reproduce: on the per-node time axis the 8-node curve drops far
faster and ends at least as low; on the fl-class CLK visibly plateaus
(the paper's 'gets stuck in local optima').
"""

import numpy as np

from _common import (
    emit,
    N_NODES,
    N_RUNS,
    clk_budget,
    dist_budget_per_node,
    print_banner,
    reference,
    run_clk,
    run_dist,
    seeds,
)
from repro.analysis import ascii_chart, average_traces, format_series

INSTANCES = ("fl150", "sw520")


def _experiment():
    out = {}
    for name in INSTANCES:
        dist_budget = dist_budget_per_node(name)
        times = np.linspace(dist_budget / 20, clk_budget(name), 12)
        clk_traces = [
            run_clk(name, "random_walk", s).trace
            for s in seeds(8500 + hash(name) % 500, N_RUNS)
        ]
        dist_traces = [
            run_dist(name, "random_walk", s).global_trace
            for s in seeds(8600 + hash(name) % 500, N_RUNS)
        ]
        series = {
            "ABCC-CLK": average_traces(clk_traces, times),
            f"DistCLK-{N_NODES}": average_traces(dist_traces, times),
        }
        out[name] = (times, series, dist_budget)
    return out


def test_fig2_distclk_vs_clk(once):
    out = once(_experiment)
    for name, (times, series, dist_budget) in out.items():
        ref, _ = reference(name)
        print_banner(
            f"Figure 2 ({'c' if name == INSTANCES[0] else 'd'}): "
            f"DistCLK vs ABCC-CLK on {name} (x = vsec per node; "
            f"DistCLK stops at {dist_budget:g}, CLK runs 8x longer)"
        )
        emit(format_series(times, series))
        emit()
        emit(ascii_chart(times, series, title=f"{name}"))

        # Shape: at the distributed budget's end, DistCLK is at least as
        # good as CLK is at that same per-node time.
        k = int(np.searchsorted(times, dist_budget))
        k = min(max(k, 1), len(times) - 1)
        d = series[f"DistCLK-{N_NODES}"][k - 1]
        c = series["ABCC-CLK"][k - 1]
        if np.isfinite(d) and np.isfinite(c):
            emit(f"\nat ~{times[k-1]:.1f} vsec/node: DistCLK {d:.0f} "
                  f"vs CLK {c:.0f}")
            assert d <= c * 1.005, name
