"""Public API surface tests: exports exist, are documented, and import
cleanly.  Guards against the packaging drift that plagues research code."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.tsp",
    "repro.bounds",
    "repro.construct",
    "repro.localsearch",
    "repro.core",
    "repro.distributed",
    "repro.baselines",
    "repro.analysis",
    "repro.service",
    "repro.obs",
    "repro.utils",
]


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_all_exports_resolve(pkg_name):
    pkg = importlib.import_module(pkg_name)
    assert hasattr(pkg, "__all__"), pkg_name
    for name in pkg.__all__:
        assert hasattr(pkg, name), f"{pkg_name}.{name} missing"


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_package_documented(pkg_name):
    pkg = importlib.import_module(pkg_name)
    assert pkg.__doc__ and pkg.__doc__.strip(), pkg_name


def _walk_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                out.append(f"{pkg_name}.{info.name}")
    return out


@pytest.mark.parametrize("mod_name", _walk_modules())
def test_every_module_has_docstring(mod_name):
    mod = importlib.import_module(mod_name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, mod_name


def test_public_classes_and_functions_documented():
    undocumented = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            obj = getattr(pkg, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{pkg_name}.{name}")
    assert not undocumented, undocumented


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_cli_importable_without_side_effects():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.prog == "repro"
