"""Lower bounds and exact solvers (Held-Karp machinery)."""

from .branch_and_bound import BranchAndBoundResult, branch_and_bound
from .exact import brute_force, held_karp_exact
from .held_karp import HeldKarpResult, held_karp_bound
from .one_tree import OneTree, minimum_one_tree

__all__ = [
    "OneTree",
    "minimum_one_tree",
    "HeldKarpResult",
    "held_karp_bound",
    "held_karp_exact",
    "brute_force",
    "branch_and_bound",
    "BranchAndBoundResult",
]
