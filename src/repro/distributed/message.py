"""Message types exchanged between nodes.

Mirrors the paper's protocol: nodes broadcast locally-improved tours to
their topology neighbours, and an ``OPTIMUM_FOUND`` notification when the
target length is reached (one of the paper's termination criteria).
Payloads are plain arrays (no shared mutable state between nodes), so the
same types serialize across the multiprocessing backend unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "MessageKind",
    "Message",
    "tour_payload",
    "WIRE_TOUR",
    "WIRE_OPTIMUM_FOUND",
    "WIRE_NEIGHBORS",
    "WIRE_STOP",
    "CONTROL_KINDS",
    "CRITICAL_KINDS",
    "wire_encode",
    "wire_decode",
]


class MessageKind(enum.Enum):
    """Protocol message kinds."""

    TOUR = "tour"
    OPTIMUM_FOUND = "optimum_found"


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    Attributes
    ----------
    kind:
        Protocol message kind.
    sender:
        Originating node id.
    length:
        Tour length carried (also set on OPTIMUM_FOUND).
    order:
        Tour order array (copied; receivers may keep it).
    sent_at:
        Sender's virtual clock at send time (vsec).
    seq:
        Monotone per-network sequence number; makes delivery ordering and
        event replay deterministic.
    """

    kind: MessageKind
    sender: int
    length: int
    order: Optional[np.ndarray] = field(default=None, compare=False)
    sent_at: float = 0.0
    seq: int = 0

    def size_bytes(self) -> int:
        """Approximate wire size (for the latency model)."""
        base = 64
        if self.order is not None:
            base += 4 * len(self.order)
        return base


def tour_payload(tour) -> tuple:
    """Snapshot a tour into an immutable (order, length) payload."""
    order = np.array(tour.order, dtype=np.int32, copy=True)
    order.setflags(write=False)
    return order, int(tour.length)


# -- multiprocessing wire format ---------------------------------------------
#
# The real-process backend ships messages as plain picklable tuples
# ``(kind, sender, order, length)``.  Besides the two protocol kinds it
# carries two *control* kinds the simulator never needs: a supervisor-
# pushed neighbour-list replacement (crash rerouting) and the poison
# pill used for deterministic shutdown.  Control messages are consumed
# by the transport loop and never reach :meth:`EANode.select`.

WIRE_TOUR = MessageKind.TOUR.value
WIRE_OPTIMUM_FOUND = MessageKind.OPTIMUM_FOUND.value
WIRE_NEIGHBORS = "neighbors"
WIRE_STOP = "stop"

CONTROL_KINDS = frozenset({WIRE_NEIGHBORS, WIRE_STOP})

#: Wire kinds whose delivery must never be silently dropped: losing an
#: OPTIMUM_FOUND strands peers until their budget; losing a control
#: message desynchronizes the supervisor from its workers.
CRITICAL_KINDS = frozenset({WIRE_OPTIMUM_FOUND, WIRE_NEIGHBORS, WIRE_STOP})


def wire_encode(kind: str, sender: int, order, length: int) -> tuple:
    """Pack one message for a multiprocessing queue."""
    return (kind, sender, order, length)


def wire_decode(raw: list) -> list:
    """Decode drained wire tuples into protocol :class:`Message` objects.

    Control-kind tuples are skipped (the transport loop handles them
    before calling this).
    """
    out = []
    for kind, sender, order, length in raw:
        if kind in CONTROL_KINDS:
            continue
        out.append(
            Message(
                kind=MessageKind(kind),
                sender=sender,
                length=int(length),
                order=None if order is None else np.asarray(order),
            )
        )
    return out
