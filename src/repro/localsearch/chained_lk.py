"""Chained Lin-Kernighan (Martin-Otto-Felten / Applegate-Cook-Rohe).

The sequential CLK loop: LK-optimize, then repeatedly *kick* the best tour
with a double-bridge move and re-optimize, keeping the result iff it is no
worse.  This is the paper's ``ABCC-CLK`` baseline (Concorde's ``linkern``)
and also the inner engine of every node of the distributed algorithm.

Matches linkern's behaviour in the respects the paper relies on:

* Quick-Borůvka construction by default;
* the four kicking strategies, Random-walk being the default;
* after a kick only the cities incident to the kick's edges are woken
  (don't-look bits), so one chained iteration is far cheaper than a full
  LK pass;
* termination on kick budget, work budget, or target length (the paper
  sets the known optimum as a termination criterion).

Progress is reported through an optional callback receiving
``(work_vsec, best_length)`` after every improvement, which the analysis
layer turns into the paper's anytime curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..construct.quick_boruvka import quick_boruvka
from ..obs import get_tracer
from ..tsp.tour import Tour
from ..utils.rng import ensure_rng
from ..utils.work import OPS_PER_VSEC, WorkMeter
from .engine import OpStats, get_operator
from .kicks import apply_double_bridge, get_kick
from .lin_kernighan import LKConfig, LinKernighan

__all__ = ["ChainedLKResult", "ChainedLK", "chained_lk"]


@dataclass
class ChainedLKResult:
    """Outcome of a (possibly partial) CLK run."""

    tour: Tour
    kicks: int
    improvements: int
    work_vsec: float
    hit_target: bool
    #: (vsec, length) pairs recorded at every improvement, for anytime curves.
    trace: list = field(default_factory=list)
    #: Engine telemetry aggregated over the run (candidate scans, flips,
    #: reversal swaps, queue wakeups; see repro.localsearch.engine.OpStats).
    op_stats: OpStats = field(default_factory=OpStats)

    @property
    def length(self) -> int:
        return self.tour.length


class ChainedLK:
    """Reusable Chained LK solver bound to one instance.

    The object holds the LK engine (and thus the neighbour lists); call
    :meth:`run` for a complete run or :meth:`step` to drive it kick by
    kick (the distributed node does the latter).
    """

    def __init__(
        self,
        instance,
        kick: str = "random_walk",
        lk_config: LKConfig | None = None,
        rng=None,
        polish: tuple = (),
        batch_width: int = 1,
        batch_backend: str = "process",
    ):
        """``polish`` names registered operators (see
        :func:`repro.localsearch.engine.get_operator`) applied to the
        final tour of :meth:`run` — e.g. ``("or_opt",)`` for an LK +
        Or-opt pipeline.  They share the LK engine's candidate set,
        meter, and stats sink; the default is no polish (the paper's
        plain CLK).

        ``batch_width`` > 1 turns each kick of :meth:`run` into a batched
        best-of-N stage (:meth:`step_batch`): N independent kick chains,
        keep the best.  ``batch_backend`` picks how the chains execute —
        ``"process"`` (spawn-context pool, falls back to inline where
        pools are unavailable) or ``"inline"`` (sequential in-process).
        Width 1 never touches the batch machinery: it *is* the serial
        path, bit for bit."""
        self.instance = instance
        self.lk = LinKernighan(instance, lk_config)
        self.kick_name = kick
        self._kick_fn = get_kick(kick)
        self.rng = ensure_rng(rng)
        self.polish = tuple(polish)
        self._polish_ops = [get_operator(name) for name in self.polish]
        self.batch_width = int(batch_width)
        if self.batch_width < 1:
            raise ValueError(f"batch_width must be >= 1, got {batch_width}")
        # Validate eagerly: the runner is built lazily on the first batched
        # step, which would let a typo'd backend pass silently at width 1.
        from .batch import BATCH_BACKENDS

        if batch_backend not in BATCH_BACKENDS:
            raise ValueError(
                f"unknown batch backend {batch_backend!r}; "
                f"choices: {BATCH_BACKENDS}"
            )
        self.batch_backend = batch_backend
        self._batch_runner = None
        # Captured at construction: one attribute check per span site.
        self.tracer = get_tracer()

    @property
    def stats(self) -> OpStats:
        """Cumulative engine telemetry across this solver's lifetime."""
        return self.lk.stats

    def initial_tour(self, meter: WorkMeter | None = None) -> Tour:
        """Quick-Borůvka construction followed by a full LK pass."""
        meter = meter if meter is not None else WorkMeter()
        with self.tracer.span("clk.init", vt=meter):
            tour = quick_boruvka(self.instance, rng=self.rng)
            meter.tick(self.instance.n)  # construction cost, roughly linear
            self.lk.optimize(tour, meter)
        return tour

    def step(self, best: Tour, meter: WorkMeter, n_kicks: int = 1,
             fixed: set | None = None, rng=None) -> Tour:
        """One chained iteration: kick a copy of ``best`` then re-optimize.

        ``n_kicks`` successive double bridges are applied before the LK
        pass (the distributed algorithm's variable perturbation strength).
        ``fixed`` edges are protected from the LK pass (backbone
        extension).  ``rng`` overrides the solver's stream (batched kick
        chains each carry their own).  Returns the candidate tour; the
        caller decides acceptance.
        """
        if rng is None:
            rng = self.rng
        with self.tracer.span("clk.kick", vt=meter):
            cand = best.copy()
            dirty: set[int] = set()
            for _ in range(max(1, n_kicks)):
                positions = self._kick_fn(cand, rng, stats=self.lk.stats)
                dirty.update(apply_double_bridge(cand, positions))
                meter.tick(cand.n // 8 + 8)  # kick cost: O(n) rewiring
            self.lk.optimize(cand, meter, dirty=dirty, fixed=fixed)
        return cand

    def step_batch(self, best: Tour, meter: WorkMeter, n_kicks: int = 1,
                   fixed: set | None = None, target_length: int | None = None,
                   width: int | None = None) -> Tour:
        """Batched best-of-N kick stage: N chains from ``best``, keep best.

        Each of ``width`` (default :attr:`batch_width`) chains runs
        ``n_kicks`` kick → LK steps from ``best`` with its own RNG stream
        — one root seed is drawn from the solver's stream and split into
        per-chain :class:`numpy.random.SeedSequence` children, so results
        depend only on the solver seed, not on scheduling.  The parent
        meter is charged the *sum* of all chain work (identical to
        running the chains serially); ties in length break toward the
        lowest chain index.  Returns the winning tour; the caller decides
        acceptance (the winner is never worse than ``best``).
        """
        from .batch import BatchKickRunner  # lazy: batch imports this module

        if width is None:
            width = self.batch_width
        if width < 1:
            raise ValueError(f"batch width must be >= 1, got {width}")
        runner = self._batch_runner
        if (runner is None or runner.width != width
                or runner.backend != self.batch_backend):
            if runner is not None:
                runner.close()
            runner = BatchKickRunner(self.instance, self.kick_name,
                                     self.lk.config, width,
                                     backend=self.batch_backend)
            self._batch_runner = runner
        with self.tracer.span("clk.kick_batch", vt=meter, width=width,
                              backend=runner.backend):
            root = int(self.rng.integers(2 ** 63 - 1))
            seeds = np.random.SeedSequence(root).spawn(width)
            results = runner.run_batch(self, best, meter, n_kicks, seeds,
                                       fixed=fixed, target=target_length)
            meter.tick(sum(r.ops for r in results))
            chosen = min(results, key=lambda r: (r.length, r.chain))
            if self.tracer.enabled:
                metrics = self.tracer.metrics
                metrics.set_gauge("kick.batch_width", width)
                gain = best.length - chosen.length
                if gain > 0:
                    metrics.inc("kick.batch_best_gain", gain)
        return Tour(self.instance, chosen.order, chosen.length)

    def close(self) -> None:
        """Release the batch runner's process pool, if one was created.

        Safe to call repeatedly and on never-batched solvers; the pool
        respawns lazily if the solver is used again."""
        if self._batch_runner is not None:
            self._batch_runner.close()
            self._batch_runner = None

    def __enter__(self) -> "ChainedLK":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(
        self,
        budget_vsec: float | None = None,
        max_kicks: int | None = None,
        target_length: int | None = None,
        initial: Tour | None = None,
        on_improvement: Optional[Callable[[float, int], None]] = None,
        free_init: bool = False,
        progress: Optional[Callable[[float, int], bool]] = None,
    ) -> ChainedLKResult:
        """Run CLK until a budget, kick limit, or target is reached.

        Parameters mirror the paper's protocol: the kick limit is usually
        set "to a very high value to make time bounds the only termination
        criterion", and ``target_length`` carries the known optimum.

        ``free_init`` leaves the one-time construction + first LK pass
        uncharged (budget and trace timestamps count kick work only).
        At the paper's scale initialization is ~0.01% of the budget; at
        virtual-time bench scale it is ~25%, so benches exclude it on
        both sides of every comparison (DESIGN.md §2).

        ``progress`` is the cooperative seam for callers that interleave
        this run with other work (the service layer): it is called after
        *every* kick iteration with ``(vsec_elapsed, best_length)`` —
        unlike ``on_improvement``, which fires only on improvements —
        and a truthy return value stops the run early with the current
        best (a cooperative cancel; the partial result is still valid).
        """
        if budget_vsec is None and max_kicks is None and target_length is None:
            raise ValueError("need at least one stopping criterion")
        stats0 = self.lk.stats.copy()
        if free_init:
            meter = WorkMeter()  # budget applied after the free init
        elif budget_vsec is not None:
            meter = WorkMeter.with_vsec_budget(budget_vsec)
        else:
            meter = WorkMeter()
        trace: list = []
        t0 = 0.0

        def record(length: int) -> None:
            trace.append((meter.vsec - t0, length))
            if on_improvement is not None:
                on_improvement(meter.vsec - t0, length)

        best = initial.copy() if initial is not None else self.initial_tour(meter)
        if initial is not None:
            self.lk.optimize(best, meter)
        if free_init:
            t0 = meter.vsec
            if budget_vsec is not None:
                meter.budget_ops = (t0 + budget_vsec) * OPS_PER_VSEC
        record(best.length)

        kicks = 0
        improvements = 0
        batched = self.batch_width > 1
        hit = target_length is not None and best.length <= target_length
        while not hit and not meter.exhausted():
            if max_kicks is not None and kicks >= max_kicks:
                break
            if batched:
                # Best-of-N stage: counts as batch_width kicks, so a
                # max_kicks limit may overshoot by at most width - 1.
                cand = self.step_batch(best, meter,
                                       target_length=target_length)
                kicks += self.batch_width
            else:
                cand = self.step(best, meter)
                kicks += 1
            if cand.length <= best.length:
                if cand.length < best.length:
                    improvements += 1
                    record(cand.length)
                best = cand
            if target_length is not None and best.length <= target_length:
                hit = True
            if progress is not None and progress(meter.vsec - t0, best.length):
                break
        if self._polish_ops and not meter.exhausted():
            before = best.length
            for op in self._polish_ops:
                op(best, candidates=self.lk.candidates, meter=meter,
                   stats=self.lk.stats, view=self.lk.view,
                   kernel=self.lk.kernel)
                if meter.exhausted():
                    break
            if best.length < before:
                improvements += 1
                record(best.length)
        op_stats = self.lk.stats - stats0
        if self.tracer.enabled:
            # Windowed engine telemetry for this run only; the kick and
            # init spans carry the time axis, the counters the volume.
            op_stats.emit(self.tracer.metrics, run="clk")
            if op_stats.kick_fallbacks:
                self.tracer.metrics.inc("kick.fallbacks",
                                        op_stats.kick_fallbacks, run="clk")
        return ChainedLKResult(
            tour=best,
            kicks=kicks,
            improvements=improvements,
            work_vsec=meter.vsec - t0,
            hit_target=hit,
            trace=trace,
            op_stats=op_stats,
        )


def chained_lk(
    instance,
    budget_vsec: float | None = None,
    max_kicks: int | None = None,
    target_length: int | None = None,
    kick: str = "random_walk",
    lk_config: LKConfig | None = None,
    free_init: bool = False,
    polish: tuple = (),
    rng=None,
    batch_width: int = 1,
    batch_backend: str = "process",
    progress: Optional[Callable[[float, int], bool]] = None,
) -> ChainedLKResult:
    """One-shot convenience wrapper around :class:`ChainedLK`.

    The solver (and any batch-kick process pool it spawned) is released
    before returning."""
    with ChainedLK(instance, kick=kick, lk_config=lk_config, rng=rng,
                   polish=polish, batch_width=batch_width,
                   batch_backend=batch_backend) as solver:
        return solver.run(
            budget_vsec=budget_vsec, max_kicks=max_kicks,
            target_length=target_length, free_init=free_init,
            progress=progress,
        )
