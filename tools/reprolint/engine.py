"""reprolint core: file walking, suppression handling, rule dispatch.

A rule is an object with an ``id``, a one-line ``rationale`` and a
``check(module, config, index) -> iterable[Violation]`` method (see
:mod:`tools.reprolint.rules`).  Linting runs in two tiers:

1. every file is parsed once into a :class:`~tools.reprolint.dataflow.ModuleInfo`
   (AST + import aliases + ``atomic-section`` annotations);
2. a project-wide :class:`~tools.reprolint.dataflow.ProjectIndex` is
   built over *all* parsed modules (class attribute kinds, frozen wire
   types), then every rule whose configured scope matches the file runs
   with both the module and the shared index in hand.

Single-pass rules (RPL001–006) only look at ``module.tree``; the
dataflow rules (RPL007–011) use the index so that e.g. a
read-modify-write of ``self.queue._heap`` in ``service.py`` resolves
through the ``WorkQueue`` class defined in ``queue.py``.

Violations are filtered through the suppression comments:

* ``# reprolint: disable=RPL001`` (or ``disable=RPL001,RPL005``) on the
  offending line suppresses those rules for that line only;
* ``# reprolint: disable-file=RPL001`` within the first 10 lines
  suppresses the rule for the whole file;
* ``disable=all`` / ``disable-file=all`` suppress every rule.

Suppressions are deliberately line-anchored (no block form): every
exemption stays visible next to the code it excuses.  The separate
``# reprolint: atomic-section`` annotation is not a suppression — it is
an RPL008-specific marker for a reviewed read-modify-write that spans an
await on purpose (see docs/CHECKS.md).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .config import Config, iter_python_files, load_config
from .dataflow import ModuleInfo, ProjectIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .rules import Rule

__all__ = ["Violation", "lint_file", "lint_paths", "parse_suppressions"]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)
_FILE_SCOPE_LINES = 10


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def parse_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str]]:
    """Extract (per-line, whole-file) suppression sets from ``source``.

    Returned rule IDs are upper-cased; the sentinel ``"ALL"`` suppresses
    every rule.  Uses a plain line scan rather than the tokenizer so
    suppressions still apply to files the AST parser rejects elsewhere.
    """
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        kind, spec = m.group(1), m.group(2)
        ids = {part.strip().upper() for part in spec.split(",") if part.strip()}
        if kind == "disable-file":
            if lineno <= _FILE_SCOPE_LINES:
                whole_file |= ids
        else:
            per_line.setdefault(lineno, set()).update(ids)
    return per_line, whole_file


def _suppressed(
    violation: Violation,
    per_line: dict[int, set[str]],
    whole_file: set[str],
) -> bool:
    if "ALL" in whole_file or violation.rule_id in whole_file:
        return True
    line_ids = per_line.get(violation.line, ())
    return "ALL" in line_ids or violation.rule_id in line_ids


def _relative_posix(path: Path, root: Path | None) -> str:
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def _parse_module(
    path: Path, root: Path | None
) -> tuple[ModuleInfo | None, Violation | None]:
    """Parse one file: (module, None) on success, (None, RPL000) on a
    syntax error."""
    posix = _relative_posix(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Violation(
            rule_id="RPL000",
            path=posix,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"syntax error: {exc.msg}",
        )
    return ModuleInfo.build(posix, tree, source), None


def _lint_module(
    module: ModuleInfo,
    config: Config,
    rules: Sequence["Rule"],
    index: ProjectIndex,
) -> list[Violation]:
    per_line, whole_file = parse_suppressions(module.source)
    out: list[Violation] = []
    for rule in rules:
        if not config.scope_for(rule.id).matches(module.path):
            continue
        for violation in rule.check(module, config, index):
            if not _suppressed(violation, per_line, whole_file):
                out.append(violation)
    return sorted(out, key=lambda v: (v.line, v.col, v.rule_id))


def lint_file(
    path: Path,
    config: Config | None = None,
    rules: Sequence["Rule"] | None = None,
    root: Path | None = None,
    index: ProjectIndex | None = None,
) -> list[Violation]:
    """Lint one file; returns unsuppressed violations sorted by location.

    Without an ``index``, one is built from this file alone — cross-file
    attribute resolution (``self.queue._heap``) only works through
    :func:`lint_paths`, which indexes every file first.
    """
    from .rules import ALL_RULES

    config = config or load_config(root)
    rules = rules if rules is not None else ALL_RULES
    module, syntax_error = _parse_module(path, root)
    if syntax_error is not None:
        return [syntax_error]
    assert module is not None
    if index is None:
        index = ProjectIndex.build([module])
    return _lint_module(module, config, rules, index)


def lint_paths(
    paths: Iterable[Path],
    config: Config | None = None,
    rules: Sequence["Rule"] | None = None,
    root: Path | None = None,
) -> list[Violation]:
    """Lint files/directories; returns all unsuppressed violations.

    Two-phase: parse every file first, build the shared project index,
    then run the rules — so dataflow rules see attribute definitions
    from files other than the one they are checking.
    """
    from .rules import ALL_RULES

    config = config or load_config(root)
    rules = rules if rules is not None else ALL_RULES
    modules: list[ModuleInfo] = []
    out: list[Violation] = []
    for path in iter_python_files([Path(p) for p in paths], config.exclude):
        module, syntax_error = _parse_module(path, root)
        if syntax_error is not None:
            out.append(syntax_error)
        elif module is not None:
            modules.append(module)
    index = ProjectIndex.build(modules)
    for module in modules:
        out.extend(_lint_module(module, config, rules, index))
    return out
