"""End-to-end integration tests across the whole stack.

Each test exercises a paper-shaped scenario at miniature scale: the
protocol of the evaluation section, wired through real public API calls.
"""

import numpy as np

from repro.analysis import (
    excess_percent,
    success_count,
    time_to_target,
)
from repro.bounds import held_karp_bound, held_karp_exact
from repro.core import replicate, solve
from repro.localsearch import chained_lk
from repro.tsp import registry, generators, tsplib


class TestPaperProtocolMiniature:
    """A miniature of the paper's experimental protocol."""

    def test_clk_vs_distclk_equal_total_budget(self):
        """DistCLK(8 nodes, B/8 each) must be competitive with CLK(B).

        This is the paper's headline framing at toy scale; we assert
        'not much worse' (within 2%) rather than strict dominance, which
        needs the full bench budgets to materialize reliably.
        """
        inst = generators.clustered(80, rng=31)
        total = 8.0
        clk = chained_lk(inst, budget_vsec=total, rng=0)
        dist = solve(inst, budget_vsec_per_node=total / 8, n_nodes=8, rng=0)
        assert dist.best_length <= clk.length * 1.02

    def test_success_count_protocol(self):
        """Table-3-style success counting with a known optimum."""
        inst = generators.uniform(14, rng=3)
        opt, _ = held_karp_exact(inst)
        summary = replicate(
            inst, budget_vsec_per_node=5.0, n_runs=3, n_nodes=2,
            target_length=opt, rng=0,
        )
        assert summary.successes == success_count(summary.lengths, opt) == 3

    def test_quality_vs_hk_bound(self):
        """Table-4-style excess over the Held-Karp bound."""
        inst = generators.uniform(60, rng=8)
        hk = held_karp_bound(inst, max_iterations=120).bound
        res = chained_lk(inst, budget_vsec=2.0, rng=1)
        excess = excess_percent(res.length, hk)
        assert 0.0 <= excess < 8.0  # CLK lands within a few % of HK

    def test_anytime_curve_extraction(self):
        """Figure-2-style: traces from both algorithms, comparable axes."""
        inst = generators.uniform(60, rng=9)
        clk = chained_lk(inst, budget_vsec=1.0, rng=2)
        dist = solve(inst, budget_vsec_per_node=0.5, n_nodes=4, rng=2)
        assert clk.trace and dist.global_trace
        target = max(clk.length, dist.best_length)
        assert time_to_target(clk.trace, target) is not None
        assert time_to_target(dist.global_trace, target) is not None


class TestRegistryWorkflow:
    def test_registry_instance_solvable(self):
        inst = registry.get_instance("E100")
        res = chained_lk(inst, max_kicks=5, rng=0)
        assert res.tour.is_valid()

    def test_roundtrip_through_tsplib(self, tmp_path):
        """Generate -> dump -> load -> solve: the file format is usable
        end to end."""
        inst = generators.clustered(40, rng=13)
        path = tmp_path / "c40.tsp"
        tsplib.dump(inst, path)
        loaded = tsplib.load(path)
        a = chained_lk(inst, max_kicks=3, rng=4)
        b = chained_lk(loaded, max_kicks=3, rng=4)
        assert a.length == b.length


class TestMessageStatistics:
    def test_broadcast_counting_like_section4(self):
        """The paper's §4: message counts equal per-node improvement
        broadcasts; most messages happen early in the run."""
        inst = generators.clustered(70, rng=17)
        res = solve(inst, budget_vsec_per_node=1.0, n_nodes=4, rng=5)
        stats = res.network_stats
        # One broadcast per *locally found* improvement (incl. initials).
        from repro.core.events import EventKind

        local_broadcasts = sum(
            len(log.of_kind(EventKind.BROADCAST))
            for log in res.event_logs.values()
        )
        assert stats.broadcasts == local_broadcasts
        if len(stats.broadcast_log) >= 4:
            times = np.array([t for _, t in stats.broadcast_log])
            assert np.median(times) < 0.7 * times.max()
