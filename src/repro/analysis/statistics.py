"""Statistical comparison of run sets.

The paper reports bare 10-run averages; a modern reproduction should say
whether differences are *significant*.  This module wraps the two
standard nonparametric tests for solver comparisons — Mann-Whitney U for
independent run sets, Wilcoxon signed-rank for per-seed pairs — plus
bootstrap confidence intervals for the mean excess, all via scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["Comparison", "compare_runs", "paired_compare", "bootstrap_mean_ci"]


@dataclass(frozen=True)
class Comparison:
    """Outcome of a two-sample comparison (lower lengths are better)."""

    mean_a: float
    mean_b: float
    p_value: float
    #: Negative = A better, positive = B better (difference of means).
    effect: float
    test: str

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05."""
        return self.p_value < 0.05

    def summary(self, name_a: str = "A", name_b: str = "B") -> str:
        winner = name_a if self.effect < 0 else name_b
        sig = "significant" if self.significant else "not significant"
        return (
            f"{name_a} mean {self.mean_a:.1f} vs {name_b} mean "
            f"{self.mean_b:.1f}; {winner} ahead by {abs(self.effect):.1f} "
            f"({self.test}, p={self.p_value:.3g}, {sig} at 0.05)"
        )


def compare_runs(lengths_a, lengths_b) -> Comparison:
    """Mann-Whitney U on two independent sets of final tour lengths."""
    a = np.asarray(list(lengths_a), dtype=float)
    b = np.asarray(list(lengths_b), dtype=float)
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two runs per side")
    if np.all(a == a[0]) and np.all(b == b[0]) and a[0] == b[0]:
        p = 1.0
    else:
        _, p = _scipy_stats.mannwhitneyu(a, b, alternative="two-sided")
    return Comparison(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        p_value=float(p),
        effect=float(a.mean() - b.mean()),
        test="Mann-Whitney U",
    )


def paired_compare(lengths_a, lengths_b) -> Comparison:
    """Wilcoxon signed-rank on per-seed pairs (same seeds, two solvers)."""
    a = np.asarray(list(lengths_a), dtype=float)
    b = np.asarray(list(lengths_b), dtype=float)
    if a.shape != b.shape or len(a) < 2:
        raise ValueError("need equal-length paired samples (>= 2)")
    diffs = a - b
    if np.all(diffs == 0):
        p = 1.0
    else:
        _, p = _scipy_stats.wilcoxon(a, b, zero_method="zsplit")
    return Comparison(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        p_value=float(p),
        effect=float(diffs.mean()),
        test="Wilcoxon signed-rank",
    )


def bootstrap_mean_ci(values, confidence: float = 0.95,
                      n_boot: int = 2000, rng=None) -> tuple:
    """Bootstrap confidence interval for the mean of a run statistic."""
    v = np.asarray(list(values), dtype=float)
    if len(v) < 2:
        raise ValueError("need at least two values")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    gen = np.random.default_rng(rng)
    means = np.array([
        gen.choice(v, size=len(v), replace=True).mean()
        for _ in range(n_boot)
    ])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )
