"""Real-parallel backend: one OS process per node.

The discrete-event simulator is the reference implementation (it is
deterministic and reproduces the paper's CPU-time accounting); this
backend runs the *same* :class:`~repro.core.node.EANode` logic with real
processes, wall-clock budgets and OS pipes, demonstrating that the
algorithm is transport-agnostic.  Results are not bit-reproducible across
machines (that is the point), so tests only assert invariants.

Message passing follows the mpi4py idiom for Python objects: each node
owns an inbox queue; ``send`` is a put into the neighbour's queue; tours
travel as plain ``(order, length)`` payloads.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass

import numpy as np

from ..core.node import EANode, NodeConfig
from ..tsp.instance import TSPInstance
from ..tsp.tour import Tour
from .topology import get_topology

__all__ = ["MPResult", "run_multiprocessing"]


@dataclass
class MPResult:
    """Outcome of a multiprocessing run."""

    best_order: np.ndarray
    best_length: int
    best_node: int
    node_lengths: dict
    reasons: dict
    elapsed_seconds: float

    def tour(self, instance) -> Tour:
        return Tour(instance, self.best_order, self.best_length)


def _instance_payload(instance: TSPInstance) -> dict:
    if instance.edge_weight_type == "EXPLICIT":
        return {
            "matrix": np.asarray(instance.matrix),
            "edge_weight_type": "EXPLICIT",
            "name": instance.name,
        }
    return {
        "coords": np.asarray(instance.coords),
        "edge_weight_type": instance.edge_weight_type,
        "name": instance.name,
    }


def _rebuild_instance(payload: dict) -> TSPInstance:
    return TSPInstance(**payload)


def _node_worker(
    node_id: int,
    payload: dict,
    config: NodeConfig,
    neighbor_ids: tuple,
    inboxes: dict,
    result_queue,
    budget_seconds: float,
    seed: int,
) -> None:
    instance = _rebuild_instance(payload)
    node = EANode(node_id, instance, config, rng=seed)
    my_inbox = inboxes[node_id]
    deadline = time.monotonic() + budget_seconds

    def drain() -> list:
        out = []
        while True:
            try:
                out.append(my_inbox.get_nowait())
            except queue_mod.Empty:
                return out

    def broadcast(kind: str, order, length: int) -> None:
        for dst in neighbor_ids:
            try:
                inboxes[dst].put_nowait((kind, node_id, order, length))
            except queue_mod.Full:  # pragma: no cover - bounded queues
                pass

    reason = "budget"
    while time.monotonic() < deadline:
        _work, candidate = node.compute(budget_vsec=1e18)
        raw = drain()
        messages = _as_messages(raw)
        outcome = node.select(candidate, messages)
        if outcome.broadcast is not None:
            broadcast("tour", np.asarray(outcome.broadcast.order, dtype=np.int32),
                      outcome.broadcast.length)
        if outcome.done_reason is not None:
            reason = outcome.done_reason
            broadcast("optimum_found",
                      np.asarray(node.s_best.order, dtype=np.int32),
                      node.s_best.length)
            break
    result_queue.put(
        (
            node_id,
            np.asarray(node.s_best.order, dtype=np.int32),
            int(node.s_best.length),
            reason,
        )
    )


def _as_messages(raw: list):
    from .message import Message, MessageKind

    out = []
    for kind, sender, order, length in raw:
        out.append(
            Message(
                kind=MessageKind.TOUR if kind == "tour"
                else MessageKind.OPTIMUM_FOUND,
                sender=sender,
                length=int(length),
                order=np.asarray(order),
            )
        )
    return out


def run_multiprocessing(
    instance,
    budget_seconds: float,
    n_nodes: int = 8,
    node_config: NodeConfig | None = None,
    topology: str | dict = "hypercube",
    rng=None,
) -> MPResult:
    """Run the distributed algorithm with real processes.

    ``budget_seconds`` is wall-clock per node.  Worker seeds derive from
    ``rng`` so runs are repeatable up to OS scheduling effects on message
    arrival order.
    """
    config = node_config or NodeConfig()
    if isinstance(topology, str):
        topology = get_topology(topology, n_nodes)
    seeds = np.random.default_rng(
        rng if not isinstance(rng, np.random.Generator) else rng.integers(2**31)
    ).integers(0, 2**31 - 1, size=n_nodes)

    ctx = mp.get_context("spawn")
    manager = ctx.Manager()
    inboxes = {i: manager.Queue(maxsize=1024) for i in range(n_nodes)}
    result_queue = manager.Queue()
    payload = _instance_payload(instance)

    t0 = time.monotonic()
    procs = []
    for i in range(n_nodes):
        p = ctx.Process(
            target=_node_worker,
            args=(
                i, payload, config, topology[i], inboxes, result_queue,
                budget_seconds, int(seeds[i]),
            ),
        )
        p.start()
        procs.append(p)

    results = {}
    # Nodes always report within budget + one iteration; allow slack.
    deadline = time.monotonic() + budget_seconds * 3 + 60
    while len(results) < n_nodes and time.monotonic() < deadline:
        try:
            node_id, order, length, reason = result_queue.get(timeout=1.0)
            results[node_id] = (order, length, reason)
        except queue_mod.Empty:
            continue
    for p in procs:
        p.join(timeout=10)
        if p.is_alive():  # pragma: no cover - defensive
            p.terminate()
    elapsed = time.monotonic() - t0

    if not results:
        raise RuntimeError("no node reported a result")
    best_node = min(results, key=lambda i: (results[i][1], i))
    order, length, _ = results[best_node]
    return MPResult(
        best_order=np.asarray(order, dtype=np.intp),
        best_length=int(length),
        best_node=best_node,
        node_lengths={i: results[i][1] for i in results},
        reasons={i: results[i][2] for i in results},
        elapsed_seconds=elapsed,
    )
