"""Tests for TSPLIB distance functions."""


import numpy as np
import pytest

from repro.tsp import distances as D


class TestEuc2D:
    def test_simple_345_triangle(self):
        assert D.euc_2d(np.array([3.0]), np.array([4.0]))[0] == 5

    def test_rounding_is_nint_not_bankers(self):
        # sqrt gives 0.5 exactly: TSPLIB nint rounds up (floor(x+0.5)).
        assert D.euc_2d(np.array([0.5]), np.array([0.0]))[0] == 1
        assert D.euc_2d(np.array([1.5]), np.array([0.0]))[0] == 2

    def test_zero_distance(self):
        assert D.euc_2d(np.array([0.0]), np.array([0.0]))[0] == 0


class TestCeil2D:
    def test_rounds_up(self):
        assert D.ceil_2d(np.array([1.0]), np.array([1.0]))[0] == 2  # sqrt2

    def test_integer_stays(self):
        assert D.ceil_2d(np.array([3.0]), np.array([4.0]))[0] == 5


class TestMan2D:
    def test_sum_of_abs(self):
        assert D.man_2d(np.array([-3.0]), np.array([4.0]))[0] == 7


class TestMax2D:
    def test_max_norm(self):
        assert D.max_2d(np.array([-3.0]), np.array([4.0]))[0] == 4


class TestAtt:
    def test_att_formula(self):
        # dx=10, dy=0: r = sqrt(100/10) = sqrt(10) ~ 3.162; t = 3 < r -> 4
        assert D.att(np.array([10.0]), np.array([0.0]))[0] == 4

    def test_att_exact(self):
        # dx*dx+dy*dy = 40 -> r = 2.0 exactly -> t = 2, not bumped
        assert D.att(np.array([6.0]), np.array([2.0]))[0] == 2


class TestGeo:
    def test_symmetric(self):
        a = np.array([52.30, 13.25])  # DDD.MM format
        b = np.array([48.51, 2.21])
        assert D.geo(a, b) == D.geo(b, a)

    def test_zero_on_same_point_is_one(self):
        # TSPLIB GEO adds 1.0 before truncation; same point -> 1.
        a = np.array([50.0, 10.0])
        assert D.geo(a, a) == 1


class TestPairwiseMatrix:
    @pytest.mark.parametrize("ewt", ["EUC_2D", "CEIL_2D", "MAN_2D", "MAX_2D", "ATT"])
    def test_matches_closure(self, ewt, rng):
        coords = rng.uniform(0, 1000, size=(25, 2))
        m = D.pairwise_matrix(coords, ewt)
        f = D.distance_closure(coords, ewt)
        for i in range(25):
            for j in range(25):
                assert m[i, j] == f(i, j), (ewt, i, j)

    def test_geo_matches_closure(self, rng):
        coords = rng.uniform(-80, 80, size=(10, 2))
        m = D.pairwise_matrix(coords, "GEO")
        f = D.distance_closure(coords, "GEO")
        for i in range(10):
            for j in range(10):
                if i != j:
                    assert m[i, j] == f(i, j)

    def test_symmetric_zero_diag(self, rng):
        coords = rng.uniform(0, 100, size=(15, 2))
        m = D.pairwise_matrix(coords, "EUC_2D")
        assert np.array_equal(m, m.T)
        assert np.all(np.diag(m) == 0)

    def test_unknown_type_raises(self, rng):
        coords = rng.uniform(0, 10, size=(4, 2))
        with pytest.raises(ValueError, match="unsupported"):
            D.pairwise_matrix(coords, "XRAY")

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError, match="shape"):
            D.pairwise_matrix(np.zeros((4, 3)))


class TestRowDistances:
    def test_matches_matrix(self, rng):
        coords = rng.uniform(0, 500, size=(20, 2))
        m = D.pairwise_matrix(coords, "EUC_2D")
        js = np.array([0, 5, 19, 3])
        assert np.array_equal(D.row_distances(coords, 7, js), m[7, js])

    def test_geo_rows(self, rng):
        coords = rng.uniform(-60, 60, size=(8, 2))
        m = D.pairwise_matrix(coords, "GEO")
        js = np.arange(8)
        rows = D.row_distances(coords, 2, js, "GEO")
        mask = js != 2
        assert np.array_equal(rows[mask], m[2, js[mask]])


class TestTriangleInequality:
    def test_euclidean_metric_holds(self, rng):
        # Rounded Euclidean can violate by at most 1 per composition; the
        # raw hypot values must satisfy the inequality exactly.
        coords = rng.uniform(0, 1000, size=(12, 2))
        m = D.pairwise_matrix(coords, "EUC_2D").astype(float)
        n = len(coords)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert m[i, j] <= m[i, k] + m[k, j] + 1.0
