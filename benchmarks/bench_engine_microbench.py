"""Engine microbenchmarks: the substrate costs everything else rests on.

Not a paper table — this measures the repository's own hot paths
(construction, one LK pass, one chained kick, a 1-tree) in wall-clock
time via pytest-benchmark's normal timing machinery, so regressions in
the engine show up even when the virtual-time results stay identical.

``test_engine_ops_per_sec`` additionally writes ``BENCH_engine.json``
at the repository root: wall-clock ops/sec per operator per candidate
set on an n=1000 geometric instance, plus the row-cached-vs-scalar
DistView comparison that justifies the engine's fast path (the
acceptance bar is a >= 1.5x speedup for 2-opt and Or-opt).
``test_batched_vs_serial_kicks`` merges a ``batched_kicks`` entry into
the same file: wall clock of the batched best-of-N kick stage (width 4,
process pool) against the serial loop doing the same number of kicks
(the >= 1.5x acceptance bar applies on machines with >= 4 cores; on
smaller boxes the measurement is recorded but not asserted).
"""

import json
import os
import time
from pathlib import Path

import pytest

from _common import emit, print_banner
from repro.bounds import minimum_one_tree
from repro.construct import quick_boruvka
from repro.localsearch import (
    ChainedLK,
    DistView,
    LinKernighan,
    OpStats,
    get_operator,
)
from repro.tsp import generators, get_candidate_set
from repro.utils.rng import ensure_rng
from repro.utils.work import WorkMeter


@pytest.fixture(scope="module")
def inst():
    instance = generators.uniform(300, rng=77)
    instance.materialize()
    instance.neighbor_lists(8)
    return instance


def test_quick_boruvka_300(benchmark, inst):
    tour = benchmark(lambda: quick_boruvka(inst))
    assert tour.is_valid()


def test_lk_full_pass_300(benchmark, inst):
    engine = LinKernighan(inst)

    def run():
        t = quick_boruvka(inst)
        engine.optimize(t)
        return t

    tour = benchmark(run)
    assert tour.is_valid()


def test_clk_kick_step_300(benchmark, inst):
    solver = ChainedLK(inst, rng=0)
    best = solver.initial_tour()

    def step():
        return solver.step(best, WorkMeter())

    cand = benchmark(step)
    assert cand.is_valid()


def test_one_tree_300(benchmark, inst):
    tree = benchmark(lambda: minimum_one_tree(inst))
    assert tree.degrees.sum() == 2 * inst.n


# -- engine ops/sec report (BENCH_engine.json) --------------------------------

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
_OPERATORS = ("two_opt", "or_opt", "lk")
_CAND_SETS = ("knn", "quadrant")
_REPEATS = 3


def _engine_ops(stats: OpStats) -> int:
    """Inner-loop work of one run: candidate scans + reversal swaps."""
    return stats.candidate_scans + stats.segment_swaps


def _kicked_starts(inst, n_tours=12, kicks=25, seed=20260805):
    """Deterministic workload: construction tours roughed up by kicks.

    This is the regime the engine actually runs in (re-optimization after
    chained-LK perturbations): many candidate scans, short reversals —
    unlike a fully random tour, whose first 2-opt moves reverse ~n/4
    cities each and so measure numpy slice speed, not the scan loop.
    """
    rng = ensure_rng(seed)
    base = quick_boruvka(inst, rng=rng)
    starts = []
    for _ in range(n_tours):
        t = base.copy()
        for _ in range(kicks):
            cuts = 1 + rng.choice(inst.n - 1, size=3, replace=False)
            t.double_bridge(cuts)
        starts.append(t)
    return starts


def _timed_run(op_name, starts, provider, view=None, kernel=None):
    """Best-of-_REPEATS (elapsed, stats) over one pass of all starts.

    Every repeat works on copies of the same tours, so the work done
    (and hence the stats) is identical across repeats and across views
    and kernels — only the wall-clock changes.
    """
    op = get_operator(op_name)
    best = None
    for _ in range(_REPEATS):
        tours = [t.copy() for t in starts]
        stats = OpStats()
        kwargs = {"candidates": provider, "stats": stats}
        if view is not None:
            kwargs["view"] = view
        if kernel is not None:
            kwargs["kernel"] = kernel
        t0 = time.perf_counter()
        for tour in tours:
            op(tour, **kwargs)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, stats)
    return best


@pytest.fixture(scope="module")
def inst1000():
    instance = generators.uniform(1000, rng=4242)
    instance.materialize()
    instance.matrix_row_lists()
    return instance


def test_engine_ops_per_sec(inst1000):
    """Ops/sec per operator per candidate set; row vs scalar DistView."""
    inst = inst1000
    starts = _kicked_starts(inst)
    providers = {name: get_candidate_set(name, k=8) for name in _CAND_SETS}
    for p in providers.values():
        p.row_lists(inst)  # build outside the timed region

    report = {
        "n": inst.n,
        "instance": "uniform(1000, rng=4242)",
        "workload": f"{len(starts)} quick-Boruvka tours + 25 kicks each",
        "ops_measure": "candidate_scans + segment_swaps",
        "ops_per_sec": {},
        "row_vs_scalar": {},
    }

    print_banner(
        "Engine microbench: ops/sec per operator per candidate set",
        f"n={inst.n}, best of {_REPEATS} passes over {len(starts)} "
        "kicked construction tours",
    )
    for op_name in _OPERATORS:
        report["ops_per_sec"][op_name] = {}
        for cname, provider in providers.items():
            elapsed, stats = _timed_run(op_name, starts, provider)
            rate = _engine_ops(stats) / elapsed
            report["ops_per_sec"][op_name][cname] = round(rate, 1)
            emit(f"  {op_name:9s} {cname:9s} {rate:12,.0f} ops/s "
                 f"(gain {stats.gain}, {stats.moves} moves)")

    emit("row-cached DistView vs scalar instance.dist:")
    scalar_view = DistView(inst, prefer_rows=False)
    assert scalar_view.rows is None
    for op_name in ("two_opt", "or_opt"):
        provider = providers["knn"]
        t_row, s_row = _timed_run(op_name, starts, provider)
        t_scalar, s_scalar = _timed_run(
            op_name, starts, provider, view=scalar_view
        )
        # Same tour, same candidates -> identical work either way.
        assert _engine_ops(s_row) == _engine_ops(s_scalar)
        speedup = t_scalar / t_row
        report["row_vs_scalar"][op_name] = {
            "row_ops_per_sec": round(_engine_ops(s_row) / t_row, 1),
            "scalar_ops_per_sec": round(_engine_ops(s_scalar) / t_scalar, 1),
            "speedup": round(speedup, 2),
        }
        emit(f"  {op_name:9s} row {_engine_ops(s_row) / t_row:12,.0f} ops/s"
             f"   scalar {_engine_ops(s_scalar) / t_scalar:12,.0f} ops/s"
             f"   speedup {speedup:.2f}x")
        assert speedup >= 1.5, (
            f"{op_name}: row-cached path only {speedup:.2f}x faster"
        )

    _BENCH_JSON.write_text(json.dumps(report, indent=1) + "\n")
    emit(f"wrote {_BENCH_JSON.name}")


def _scan_counts_row(tour, nbr_rows, rows):
    """Reference-loop full-width forward scans: improving-move count.

    One pass = for every city ``a`` (with tour successor ``b``), evaluate
    the 2-opt gain of *all* of ``a``'s candidates — the work a wide miss
    scan does in the reference row loop, with the same inner body.
    """
    n = tour.n
    order, position = tour.order, tour.position
    pos_item, order_item = position.item, order.item
    hits = 0
    for a in range(n):
        da = rows[a]
        p = pos_item(a) + 1
        b = order_item(p if p < n else 0)
        d_ab = da[b]
        db = rows[b]
        for c in nbr_rows[a]:
            if c == b:
                continue
            p = pos_item(c) + 1
            d_city = order_item(p if p < n else 0)
            if d_city == a:
                continue
            if da[c] + db[d_city] - d_ab - rows[c][d_city] < 0:
                hits += 1
    return hits


def _scan_counts_vector(tour, kc, mat, rows):
    """Vector-kernel full-width forward scans: improving-move count.

    Same batch evaluation as ``kernels.two_opt_vector``'s wide tail
    (successor gather, flat-matrix candidate gather, int64 gain), one
    launch per city.  ``c == b`` and ``d_city == a`` entries evaluate to
    exactly zero gain on a symmetric instance, so the strict ``< 0``
    excludes them just as the reference's skips do; padded slots carry a
    huge sentinel distance and can never count.
    """
    import numpy as np

    n = tour.n
    order, position = tour.order, tour.position
    cmat, cd, cmn, mat_flat = kc.cmat, kc.cd, kc.cmn, kc.mat_flat
    step_f = 1 - n
    hits = 0
    for a in range(n):
        cpos = position[cmat[a]]
        d_city = order[cpos + step_f]
        b = order.item(position.item(a) + step_f)
        part = cd[a] + mat[b][d_city]
        part -= mat_flat[cmn[a] + d_city]
        hits += int(np.count_nonzero(part < rows[a][b]))
    return hits


def test_vector_kernel(inst1000):
    """Vector-vs-row: end-to-end operators and the scan primitive.

    End-to-end, the hybrid vector tier must match the row path's move
    sequence exactly (engine_ops equality is asserted) and wins where
    scans evaluate whole candidate rows (Or-opt has no distance break, so
    wide-k misses cost the full row scalar).  First-improvement 2-opt
    descent is hit-dominated — improving candidates cluster at the head
    of the distance-sorted rows — so its end-to-end number is recorded
    but the acceptance bar lives on the scan primitive: one full-width
    batch gain evaluation against the same loop the reference runs,
    which is the work a wide miss scan performs.
    """
    inst = inst1000
    k = 64
    starts = _kicked_starts(inst)
    provider = get_candidate_set("knn", k=k)
    provider.row_lists(inst)
    view = DistView(inst)

    from repro.localsearch.kernels import CandidateKernel

    kc = CandidateKernel(inst, provider, view)  # build outside timing
    entry = {
        "k": k,
        "workload": f"{len(starts)} quick-Boruvka tours + 25 kicks each",
    }

    print_banner(
        "Vector kernel vs row path",
        f"n={inst.n}, knn k={k}, best of {_REPEATS} passes",
    )
    for op_name in ("two_opt", "or_opt"):
        t_row, s_row = _timed_run(
            op_name, starts, provider, view=view, kernel="row"
        )
        t_vec, s_vec = _timed_run(
            op_name, starts, provider, view=view, kernel="vector"
        )
        # Bit-identical move sequences -> identical work accounting.
        assert _engine_ops(s_row) == _engine_ops(s_vec)
        assert s_row.gain == s_vec.gain
        speedup = t_row / t_vec
        entry[op_name] = {
            "row_ops_per_sec": round(_engine_ops(s_row) / t_row, 1),
            "vector_ops_per_sec": round(_engine_ops(s_vec) / t_vec, 1),
            "speedup": round(speedup, 2),
        }
        emit(f"  {op_name:9s} row {_engine_ops(s_row) / t_row:12,.0f} ops/s"
             f"   vector {_engine_ops(s_vec) / t_vec:12,.0f} ops/s"
             f"   speedup {speedup:.2f}x")
    assert entry["or_opt"]["speedup"] >= 1.5, (
        f"or_opt: vector kernel only {entry['or_opt']['speedup']:.2f}x"
    )
    # The hybrid routes hit-dominated scans to the reference loop, so
    # end-to-end 2-opt must never fall meaningfully behind the row path.
    assert entry["two_opt"]["speedup"] >= 0.7, (
        f"two_opt: hybrid fell behind row path "
        f"({entry['two_opt']['speedup']:.2f}x)"
    )

    rows = view.rows
    nbr_rows = provider.row_lists(inst)
    mat = view.matrix
    scan_tours = starts[:4]
    n_scans = len(scan_tours) * inst.n
    best_row = best_vec = None
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        hits_row = sum(
            _scan_counts_row(t, nbr_rows, rows) for t in scan_tours
        )
        el = time.perf_counter() - t0
        best_row = el if best_row is None else min(best_row, el)
        t0 = time.perf_counter()
        hits_vec = sum(
            _scan_counts_vector(t, kc, mat, rows) for t in scan_tours
        )
        el = time.perf_counter() - t0
        best_vec = el if best_vec is None else min(best_vec, el)
        assert hits_row == hits_vec
    scan_speedup = best_row / best_vec
    entry["two_opt_scan"] = {
        "scans": n_scans,
        "row_scans_per_sec": round(n_scans / best_row, 1),
        "vector_scans_per_sec": round(n_scans / best_vec, 1),
        "speedup": round(scan_speedup, 2),
    }
    emit(f"  two_opt full-width scan primitive: row "
         f"{n_scans / best_row:10,.0f} scans/s   vector "
         f"{n_scans / best_vec:10,.0f} scans/s   "
         f"speedup {scan_speedup:.2f}x")
    assert scan_speedup >= 1.5, (
        f"two_opt scan primitive: vector only {scan_speedup:.2f}x"
    )

    report = json.loads(_BENCH_JSON.read_text()) if _BENCH_JSON.exists() else {}
    report["vector_vs_row"] = entry
    _BENCH_JSON.write_text(json.dumps(report, indent=1) + "\n")
    emit(f"merged vector_vs_row into {_BENCH_JSON.name}")


def test_batched_vs_serial_kicks(inst1000):
    """Wall clock: batched best-of-N kick stage vs the serial kick loop.

    Both sides perform the same number of kick -> LK chains (batches x
    width) from comparable incumbents; the batched side pays one warm-up
    batch first so pool spawn + per-worker engine construction are not
    timed (a real run amortizes them over thousands of batches).
    """
    inst = inst1000
    width, batches = 4, 6

    serial = ChainedLK(inst, rng=9)
    best = serial.initial_tour(WorkMeter())
    meter = WorkMeter()
    t0 = time.perf_counter()
    for _ in range(batches * width):
        cand = serial.step(best, meter)
        if cand.length <= best.length:
            best = cand
    serial_elapsed = time.perf_counter() - t0

    batched = ChainedLK(inst, rng=9, batch_width=width)
    bbest = batched.initial_tour(WorkMeter())
    bmeter = WorkMeter()
    batched.step_batch(bbest, bmeter)  # warm-up: spawn pool, build engines
    t0 = time.perf_counter()
    for _ in range(batches):
        cand = batched.step_batch(bbest, bmeter)
        if cand.length <= bbest.length:
            bbest = cand
    batched_elapsed = time.perf_counter() - t0
    runner = batched._batch_runner
    pool_used = runner._executor is not None and runner.pool_failures == 0
    batched.close()

    speedup = serial_elapsed / batched_elapsed
    cores = os.cpu_count() or 1
    entry = {
        "width": width,
        "batches": batches,
        "cores": cores,
        "pool_used": pool_used,
        "serial_sec": round(serial_elapsed, 4),
        "batched_sec": round(batched_elapsed, 4),
        "speedup": round(speedup, 2),
    }
    report = json.loads(_BENCH_JSON.read_text()) if _BENCH_JSON.exists() else {}
    report["batched_kicks"] = entry
    _BENCH_JSON.write_text(json.dumps(report, indent=1) + "\n")

    print_banner(
        "Batched best-of-N kicks vs serial loop",
        f"n={inst.n}, width={width}, {batches} batches, {cores} cores",
    )
    emit(f"  serial  {serial_elapsed:8.3f}s   batched {batched_elapsed:8.3f}s"
         f"   speedup {speedup:.2f}x (pool_used={pool_used})")
    emit(f"merged batched_kicks into {_BENCH_JSON.name}")
    # The parallel win needs real cores; a 1-core box measures pure pool
    # overhead, which is recorded above but proves nothing about scaling.
    if pool_used and cores >= 4:
        assert speedup >= 1.5, (
            f"batched kicks only {speedup:.2f}x faster with {cores} cores"
        )
