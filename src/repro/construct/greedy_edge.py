"""Greedy edge-matching tour construction.

Sorts candidate edges by weight and adds each edge whose endpoints both
have spare degree and which does not close a subtour.  Candidates come
from the k-NN lists; leftover cities (when the candidate graph cannot
complete the tour) are joined by a full scan over path endpoints.
"""

from __future__ import annotations

import numpy as np

from ..tsp.tour import Tour
from .quick_boruvka import _UnionFind, _tour_from_adjacency

__all__ = ["greedy_edge"]


def greedy_edge(instance, neighbor_k: int = 12) -> Tour:
    """Greedy matching on the k-NN candidate edge set."""
    n = instance.n
    neighbors = instance.neighbor_lists(min(neighbor_k, n - 1))

    # Build the unique candidate edge list with weights, vectorized.
    src = np.repeat(np.arange(n, dtype=np.int64), neighbors.shape[1])
    dst = neighbors.ravel().astype(np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo * n + hi
    _, first = np.unique(key, return_index=True)
    lo, hi = lo[first], hi[first]
    w = np.empty(len(lo), dtype=np.int64)
    # Group by lo for vectorized distance rows.
    sort_by_lo = np.argsort(lo, kind="stable")
    lo, hi = lo[sort_by_lo], hi[sort_by_lo]
    starts = np.searchsorted(lo, np.arange(n))
    ends = np.searchsorted(lo, np.arange(n) + 1)
    for i in range(n):
        s, e = starts[i], ends[i]
        if s < e:
            w[s:e] = instance.dist_many(i, hi[s:e])

    deg = np.zeros(n, dtype=np.int8)
    adj: list[list[int]] = [[] for _ in range(n)]
    uf = _UnionFind(n)
    edges_added = 0

    for idx in np.lexsort((hi, lo, w)):
        if edges_added == n - 1:
            break
        a, b = int(lo[idx]), int(hi[idx])
        if deg[a] >= 2 or deg[b] >= 2 or uf.find(a) == uf.find(b):
            continue
        adj[a].append(b)
        adj[b].append(a)
        deg[a] += 1
        deg[b] += 1
        uf.union(a, b)
        edges_added += 1

    # Join remaining path fragments end-to-end, cheapest first.
    while edges_added < n - 1:
        ends_ = np.flatnonzero(deg < 2)
        best = None
        for a in ends_:
            cand = ends_[(ends_ != a)]
            cand = cand[[uf.find(int(a)) != uf.find(int(c)) for c in cand]]
            if cand.size == 0:
                continue
            d = instance.dist_many(int(a), cand)
            j = int(np.argmin(d))
            if best is None or d[j] < best[0]:
                best = (int(d[j]), int(a), int(cand[j]))
        if best is None:  # pragma: no cover - defensive
            raise RuntimeError("greedy_edge could not complete the tour")
        _, a, b = best
        adj[a].append(b)
        adj[b].append(a)
        deg[a] += 1
        deg[b] += 1
        uf.union(a, b)
        edges_added += 1

    # Close the Hamiltonian path into a cycle.
    a, b = (int(x) for x in np.flatnonzero(deg < 2))
    adj[a].append(b)
    adj[b].append(a)
    return _tour_from_adjacency(instance, adj)
