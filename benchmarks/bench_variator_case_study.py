"""Paper §4.2.1: variator strength and restarts case study.

    "The following two example runs were selected out of ten simulation
    runs with instance fi10639 with 8 nodes and the Random-Walk kicking
    strategy.  For run A only a weak perturbation was enough ... Run B
    showed that strong perturbations are necessary in some cases."

Replays several runs on the fi-class analogue and narrates each like the
paper: when NumPerturbations escalated, whether an improvement arrived
and reset it, and whether restarts fired.  Shape to reproduce: runs
differ in their escalation pattern — some never pass strength 1-2, some
escalate further before a better tour arrives.
"""


from _common import N_RUNS, emit, print_banner, run_dist, seeds
from repro.analysis import format_table
from repro.core.events import EventKind

INSTANCE = "fi450"  # paper: fi10639


#: The paper's c_v=64 / c_r=256 assume ~10^3 EA iterations per node; the
#: scaled budgets here see ~10-20, so the thresholds scale down with them
#: (DESIGN.md budget mapping) and the case study gets a doubled budget so
#: the escalation dynamics have room to play out.
SCALED_CV = 2
SCALED_CR = 8


def _experiment():
    from _common import dist_budget_per_node

    stories = []
    budget = 2.0 * dist_budget_per_node(INSTANCE)
    for k, s in enumerate(seeds(9300, max(N_RUNS, 4), )):
        res = run_dist(INSTANCE, "random_walk", s, budget=budget,
                       c_v=SCALED_CV, c_r=SCALED_CR)
        max_strength = 1
        escalations = 0
        restarts = 0
        improvements = 0
        received = 0
        for log in res.event_logs.values():
            for e in log:
                if e.kind is EventKind.PERTURBATION_STRENGTH:
                    escalations += 1
                    max_strength = max(max_strength, int(e.value))
                elif e.kind is EventKind.RESTART:
                    restarts += 1
                elif e.kind is EventKind.LOCAL_IMPROVEMENT:
                    improvements += 1
                elif e.kind is EventKind.RECEIVED_IMPROVEMENT:
                    received += 1
        stories.append({
            "run": f"run {chr(65 + k)}",
            "best": res.best_length,
            "max_strength": max_strength,
            "escalations": escalations,
            "restarts": restarts,
            "local_improvements": improvements,
            "received_improvements": received,
        })
    return stories


def test_variator_case_study(once):
    stories = once(_experiment)
    print_banner(
        f"Section 4.2.1: variator strength / restart case study on "
        f"{INSTANCE} (8 nodes, Random-walk kick)",
    )
    emit(format_table(
        ["run", "best", "max NumPerturbations", "escalations", "restarts",
         "local improv.", "received improv."],
        [tuple(s.values()) for s in stories],
    ))
    emit(f"\n(c_v={SCALED_CV}, c_r={SCALED_CR}: the paper's 64/256 "
          "scaled to the shorter virtual budgets)")
    emit("paper narrative: run A stayed at weak perturbation; run B "
          "escalated to strength 4 before a better tour arrived.")

    # Shape: the perturbation machinery is actually exercised (some run
    # escalates beyond strength 1) and runs differ in their patterns.
    assert any(s["max_strength"] >= 2 for s in stories)
    assert len({(s["max_strength"], s["restarts"]) for s in stories}) > 1
    assert sum(s["received_improvements"] for s in stories) > 0
