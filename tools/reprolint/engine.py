"""reprolint core: file walking, suppression handling, rule dispatch.

A rule is an object with an ``id``, a one-line ``rationale`` and a
``check(tree, path, config) -> iterable[Violation]`` method (see
:mod:`tools.reprolint.rules`).  The engine parses each file once, runs
every rule whose configured scope matches the file, and filters the
resulting violations through the suppression comments:

* ``# reprolint: disable=RPL001`` (or ``disable=RPL001,RPL005``) on the
  offending line suppresses those rules for that line only;
* ``# reprolint: disable-file=RPL001`` within the first 10 lines
  suppresses the rule for the whole file;
* ``disable=all`` / ``disable-file=all`` suppress every rule.

Suppressions are deliberately line-anchored (no block form): every
exemption stays visible next to the code it excuses.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .config import Config, iter_python_files, load_config

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .rules import Rule

__all__ = ["Violation", "lint_file", "lint_paths", "parse_suppressions"]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)
_FILE_SCOPE_LINES = 10


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def parse_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str]]:
    """Extract (per-line, whole-file) suppression sets from ``source``.

    Returned rule IDs are upper-cased; the sentinel ``"ALL"`` suppresses
    every rule.  Uses a plain line scan rather than the tokenizer so
    suppressions still apply to files the AST parser rejects elsewhere.
    """
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        kind, spec = m.group(1), m.group(2)
        ids = {part.strip().upper() for part in spec.split(",") if part.strip()}
        if kind == "disable-file":
            if lineno <= _FILE_SCOPE_LINES:
                whole_file |= ids
        else:
            per_line.setdefault(lineno, set()).update(ids)
    return per_line, whole_file


def _suppressed(
    violation: Violation,
    per_line: dict[int, set[str]],
    whole_file: set[str],
) -> bool:
    if "ALL" in whole_file or violation.rule_id in whole_file:
        return True
    line_ids = per_line.get(violation.line, ())
    return "ALL" in line_ids or violation.rule_id in line_ids


def lint_file(
    path: Path,
    config: Config | None = None,
    rules: Sequence["Rule"] | None = None,
    root: Path | None = None,
) -> list[Violation]:
    """Lint one file; returns unsuppressed violations sorted by location."""
    from .rules import ALL_RULES

    config = config or load_config(root)
    rules = rules if rules is not None else ALL_RULES
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        posix = rel.as_posix()
    except ValueError:
        posix = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule_id="RPL000",
                path=posix,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    per_line, whole_file = parse_suppressions(source)
    out: list[Violation] = []
    for rule in rules:
        if not config.scope_for(rule.id).matches(posix):
            continue
        for violation in rule.check(tree, posix, config):
            if not _suppressed(violation, per_line, whole_file):
                out.append(violation)
    return sorted(out, key=lambda v: (v.line, v.col, v.rule_id))


def lint_paths(
    paths: Iterable[Path],
    config: Config | None = None,
    rules: Sequence["Rule"] | None = None,
    root: Path | None = None,
) -> list[Violation]:
    """Lint files/directories; returns all unsuppressed violations."""
    config = config or load_config(root)
    out: list[Violation] = []
    for path in iter_python_files([Path(p) for p in paths], config.exclude):
        out.extend(lint_file(path, config=config, rules=rules, root=root))
    return out
