"""Tests for the analysis layer."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_chart,
    average_traces,
    excess_percent,
    fmt_pct,
    fmt_time,
    format_series,
    format_table,
    mean_excess_percent,
    measure_machine_factor,
    merge_min,
    normalize_times,
    sample,
    speedup_table,
    success_count,
    time_to_quality_stats,
    time_to_target,
    value_at,
)


class TestQuality:
    def test_excess_percent(self):
        assert excess_percent(101.0, 100.0) == pytest.approx(1.0)
        assert excess_percent(100.0, 100.0) == pytest.approx(0.0)

    def test_excess_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            excess_percent(10, 0)

    def test_mean_excess(self):
        assert mean_excess_percent([102, 104], 100) == pytest.approx(3.0)

    def test_mean_excess_empty_raises(self):
        with pytest.raises(ValueError):
            mean_excess_percent([], 100)

    def test_success_count(self):
        assert success_count([10, 11, 10, 12], 10) == 2


class TestTimeseries:
    TRACE = [(1.0, 100), (3.0, 90), (7.0, 80)]

    def test_value_at(self):
        assert value_at(self.TRACE, 0.5) is None
        assert value_at(self.TRACE, 1.0) == 100
        assert value_at(self.TRACE, 5.0) == 90
        assert value_at(self.TRACE, 100.0) == 80

    def test_sample(self):
        s = sample(self.TRACE, [0.5, 2.0, 10.0])
        assert np.isnan(s[0])
        assert s[1] == 100
        assert s[2] == 80

    def test_average_traces_ignores_missing(self):
        t2 = [(2.0, 200)]
        avg = average_traces([self.TRACE, t2], [1.5, 2.5])
        assert avg[0] == 100       # only trace 1 exists at 1.5
        assert avg[1] == 150       # mean(100, 200)

    def test_time_to_target(self):
        assert time_to_target(self.TRACE, 85) == 7.0
        assert time_to_target(self.TRACE, 100) == 1.0
        assert time_to_target(self.TRACE, 10) is None

    def test_merge_min(self):
        merged = merge_min([[(1.0, 100), (5.0, 70)], [(2.0, 80), (6.0, 75)]])
        assert merged == [(1.0, 100), (2.0, 80), (5.0, 70)]


class TestSpeedup:
    def test_speedup_rows(self):
        clk = [[(10.0, 100), (80.0, 50)]]
        single = [[(5.0, 100), (40.0, 50)]]
        multi = [[(1.0, 100), (2.0, 50)]]
        rows = speedup_table(
            [("0.0%", 50)], clk, single, multi, n_nodes=8
        )
        row = rows[0]
        assert row.clk_vsec == 80.0
        assert row.single_vsec == 40.0
        assert row.multi_vsec == 2.0
        assert row.factor_vs_clk == pytest.approx(80.0 / 16.0)
        assert row.factor_vs_single == pytest.approx(40.0 / 16.0)

    def test_unreached_levels_give_none(self):
        rows = speedup_table([("x", 10)], [[(1.0, 100)]], [[(1.0, 100)]],
                             [[(1.0, 100)]], n_nodes=4)
        assert rows[0].clk_vsec is None
        assert rows[0].factor_vs_clk is None

    def test_time_to_quality_stats(self):
        traces = [[(1.0, 50)], [(3.0, 50)], [(1.0, 99)]]
        assert time_to_quality_stats(traces, 50) == pytest.approx(2.0)
        assert time_to_quality_stats(traces, 1) is None


class TestNormalization:
    def test_factor_positive_and_applies(self):
        f = measure_machine_factor(repeats=1)
        assert f.factor > 0
        assert f.apply(2.0) == pytest.approx(2.0 * f.factor)
        out = normalize_times([1.0, 2.0], f)
        assert out[1] == pytest.approx(2 * out[0])


class TestReporting:
    def test_fmt_pct(self):
        assert fmt_pct(None) == "-"
        assert fmt_pct(0.0) == "OPT"
        assert fmt_pct(0.047) == "0.047%"

    def test_fmt_time(self):
        assert fmt_time(None) == "-"
        assert fmt_time(3.14159) == "3.1"

    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series([1, 2], {"a": [10.0, 20.0], "b": [None, 5.0]})
        assert "a" in out and "b" in out and "-" in out

    def test_ascii_chart_renders(self):
        out = ascii_chart([0, 1, 2], {"s": [3.0, 2.0, 1.0]}, width=20, height=5)
        assert "*" in out
        assert "s" in out

    def test_ascii_chart_empty(self):
        out = ascii_chart([0.0], {"s": [float("nan")]})
        assert out == "(no data)"
