"""The divide-and-optimize pipeline: partition → solve regions → repair.

:func:`divide_and_optimize` composes the three stages of
:mod:`repro.divide` into the one-call large-instance entry point that
``repro divide`` and :func:`repro.core.driver.solve(divide=...)` expose.
The run is fully deterministic for a fixed seed — the partition is a
pure function of the instance, per-region seeds are fixed up front, and
both scheduler backends execute identical per-region code — so two runs
with the same arguments produce bit-identical tours.

Observability (when the tracer is enabled): a ``divide`` root span with
``divide.partition`` / per-region ``divide.region`` / ``divide.merge``
children (the merge span nests ``divide.stitch`` and ``divide.repair``),
plus metrics — ``divide.regions`` and ``divide.boundary_edges`` gauges,
``divide.region_size`` and ``divide.boundary_degree`` histograms, and
``divide.stitch_gain`` / ``divide.repair_gain`` counters.  A trace of a
pla85900-style run shows exactly where the budget went, per region and
per phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import get_tracer
from ..tsp.tour import Tour
from ..utils.rng import ensure_rng
from ..utils.sanitize import check_tour, sanitize_enabled
from ..utils.work import WorkMeter
from .partition import Partition, PartitionConfig, partition_instance
from .repair import (
    DEFAULT_REPAIR_OPS,
    boundary_repair,
    naive_concatenation,
    stitch_tours,
)
from .scheduler import RegionScheduler

__all__ = ["DivideConfig", "DivideResult", "divide_and_optimize"]


@dataclass(frozen=True)
class DivideConfig:
    """Pipeline-shape knobs (the solver knobs ride on the call itself).

    ``repair_budget_vsec=None`` scales with the run: 5% of the total
    region budget, floored at 1 vsec.
    """

    region_size: int = 1200
    boundary_k: int = 8
    backend: str = "sim"
    repair_budget_vsec: Optional[float] = None
    repair_ops: tuple = DEFAULT_REPAIR_OPS
    max_workers: Optional[int] = None
    slice_steps: int = 16


@dataclass
class DivideResult:
    """Outcome of a divide-and-optimize run."""

    tour: Tour
    partition: Partition
    region_results: list
    #: Length of plain region concatenation (the merge baseline).
    naive_length: int
    #: Length after stitching, before the repair pass.
    stitched_length: int
    #: Total gain of the bounded cross-boundary local search.
    repair_gain: int
    #: Virtual seconds consumed by the repair pass.
    repair_vsec: float
    #: Virtual seconds consumed across all region solvers.
    regions_vsec: float
    config: DivideConfig = field(default_factory=DivideConfig)

    @property
    def length(self) -> int:
        return self.tour.length

    @property
    def best_tour(self) -> Tour:
        """Alias so result consumers written for ``solve`` keep working."""
        return self.tour

    @property
    def best_length(self) -> int:
        return self.tour.length

    @property
    def work_vsec(self) -> float:
        return self.regions_vsec + self.repair_vsec

    @property
    def n_regions(self) -> int:
        return self.partition.n_regions


def divide_and_optimize(
    instance,
    config: DivideConfig | None = None,
    *,
    budget_vsec_per_node: float = 1.0,
    n_nodes_per_region: int = 1,
    kick: str = "random_walk",
    lk_config=None,
    kernel: Optional[str] = None,
    rng=None,
    progress=None,
    **session_kwargs,
) -> DivideResult:
    """Partition ``instance``, solve each region, repair the seams.

    ``n_nodes_per_region=1`` runs plain CLK per region;  ``> 1`` runs
    the full distributed CLK (hypercube topology) inside every region.
    ``budget_vsec_per_node`` is each region node's virtual-CPU budget.
    Extra keyword arguments forward to each region's
    :class:`~repro.core.session.SolveSession`.
    """
    cfg = config or DivideConfig()
    tracer = get_tracer()
    rng = ensure_rng(rng)
    with tracer.span(
        "divide", instance=getattr(instance, "name", "?"), n=instance.n
    ):
        with tracer.span("divide.partition", n=instance.n):
            partition = partition_instance(
                instance,
                PartitionConfig(
                    region_size=cfg.region_size, boundary_k=cfg.boundary_k
                ),
            )
        metrics = tracer.metrics
        metrics.set_gauge("divide.regions", partition.n_regions)
        metrics.set_gauge(
            "divide.boundary_edges", partition.boundary_edges.shape[0]
        )
        for region in partition.regions:
            metrics.observe("divide.region_size", region.size)
        for deg in partition.boundary_degree():
            if deg:
                metrics.observe("divide.boundary_degree", float(deg))

        scheduler = RegionScheduler(
            partition,
            budget_vsec_per_node=budget_vsec_per_node,
            n_nodes=n_nodes_per_region,
            backend=cfg.backend,
            max_workers=cfg.max_workers,
            slice_steps=cfg.slice_steps,
            rng=rng,
            kick=kick,
            lk_config=lk_config,
            kernel=kernel,
            **session_kwargs,
        )
        region_results = scheduler.run(progress)
        regions_vsec = float(sum(r.work_vsec for r in region_results))

        repair_budget = cfg.repair_budget_vsec
        if repair_budget is None:
            repair_budget = max(
                1.0,
                0.05 * budget_vsec_per_node * n_nodes_per_region
                * partition.n_regions,
            )
        meter = WorkMeter.with_vsec_budget(repair_budget)
        with tracer.span("divide.merge", vt=meter):
            with tracer.span("divide.stitch"):
                naive_length = naive_concatenation(
                    partition, region_results
                ).length
                tour = stitch_tours(partition, region_results)
                stitched_length = tour.length
            with tracer.span("divide.repair", vt=meter):
                repair_gain = boundary_repair(
                    tour, partition, meter=meter, ops=cfg.repair_ops,
                    kernel=kernel,
                )
        metrics.inc(
            "divide.stitch_gain", float(naive_length - stitched_length)
        )
        metrics.inc("divide.repair_gain", float(repair_gain))
        if sanitize_enabled():
            check_tour(tour, context="divide.merge")
        assert tour.length == stitched_length - repair_gain
    return DivideResult(
        tour=tour,
        partition=partition,
        region_results=region_results,
        naive_length=int(naive_length),
        stitched_length=int(stitched_length),
        repair_gain=int(repair_gain),
        repair_vsec=float(meter.vsec),
        regions_vsec=regions_vsec,
        config=cfg,
    )
