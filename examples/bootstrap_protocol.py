"""Walk through the paper's P2P bootstrap protocol (§2.2).

Eight nodes join sequentially; the hub hands each a hypercube position
and the neighbours it already knows about.  Early joiners therefore get
sparse lists, which the second half of the handshake (each node contacts
its listed neighbours; contacted nodes learn the contacter) completes
into the full hypercube.

Run:  python examples/bootstrap_protocol.py
"""

from repro.distributed.hub import BootstrapNode, Hub
from repro.distributed.topology import hypercube

N_NODES = 8


def main() -> None:
    hub = Hub(dimension=3)
    nodes = [BootstrapNode(i) for i in range(N_NODES)]

    print("phase 1: registration (hub returns already-known neighbours)")
    for node in nodes:
        known = hub.register(node)
        print(f"  node {node.node_id} -> position {node.position}, "
              f"hub knows neighbours {known}")

    print("\nneighbour lists BEFORE the contact round (note the gaps):")
    for pos, n in enumerate(nodes):
        missing = set(hypercube(N_NODES)[pos]) - n.neighbors
        print(f"  node {pos}: {sorted(n.neighbors)}"
              + (f"   missing {sorted(missing)}" if missing else ""))

    print("\nphase 2: each node contacts its neighbours "
          "(contacted nodes learn the contacter)")
    hub.run_contact_round()

    final = hub.final_topology()
    print("\nneighbour lists AFTER the contact round:")
    for pos, nbrs in final.items():
        print(f"  node {pos}: {list(nbrs)}")

    assert final == hypercube(N_NODES)
    print("\nresult matches the 3-dimensional hypercube: "
          "every edge differs in exactly one bit.")


if __name__ == "__main__":
    main()
