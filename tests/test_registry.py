"""Tests for the testbed registry."""

import pytest

from repro.tsp import registry


class TestTestbed:
    def test_all_entries_materialize(self):
        for entry in registry.testbed():
            inst = registry.get_instance(entry.name)
            assert inst.n == entry.n
            assert entry.paper_name in inst.comment

    def test_lookup_by_paper_name(self):
        a = registry.get_instance("fl3795")
        b = registry.get_instance("fl300")
        assert a is b

    def test_instances_cached(self):
        assert registry.get_instance("E100") is registry.get_instance("E100")

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown testbed"):
            registry.get_instance("atlantis99")

    def test_size_class_filter(self):
        small = registry.testbed("small")
        large = registry.testbed("large")
        assert small and large
        assert len(small) + len(large) == len(registry.testbed())
        assert all(e.size_class == "small" for e in small)

    def test_unique_names(self):
        names = [e.name for e in registry.testbed()]
        papers = [e.paper_name for e in registry.testbed()]
        assert len(set(names)) == len(names)
        assert len(set(papers)) == len(papers)

    def test_deterministic_regeneration(self):
        entry = registry.testbed()[0]
        a = entry.make()
        b = entry.make()
        import numpy as np

        np.testing.assert_array_equal(a.coords, b.coords)


class TestBestKnownCache:
    def test_best_known_returns_int_or_none(self):
        for entry in registry.testbed():
            bk = registry.best_known(entry.name)
            assert bk is None or (isinstance(bk, int) and bk > 0)

    def test_hk_bound_below_best_known(self):
        # Whenever both are cached, HK bound must lower-bound best-known.
        for entry in registry.testbed():
            bk = registry.best_known(entry.name)
            hk = registry.hk_bound(entry.name)
            if bk is not None and hk is not None:
                assert hk <= bk * 1.000001, entry.name

    def test_save_merges_keeping_better(self, tmp_path, monkeypatch):
        monkeypatch.setattr(registry, "data_path", lambda: tmp_path)
        registry._best_known_cache = None
        registry.save_best_known({"X": {"length": 100, "source": "a"}})
        registry.save_best_known({"X": {"length": 120}})  # worse: ignored
        assert registry.best_known("X") == 100
        registry.save_best_known({"X": {"length": 90}})  # better: kept
        assert registry.best_known("X") == 90
        registry.save_best_known({"X": {"hk_bound": 80.0}})
        assert registry.hk_bound("X") == 80.0
        registry.save_best_known({"X": {"hk_bound": 70.0}})  # worse bound
        assert registry.hk_bound("X") == 80.0
        # Reset module cache for other tests.
        registry._best_known_cache = None
