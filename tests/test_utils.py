"""Tests for RNG plumbing and the work meter."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.work import OPS_PER_VSEC, WorkMeter


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_deterministic(self):
        a = ensure_rng(5).integers(1000)
        b = ensure_rng(5).integers(1000)
        assert a == b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(ss), np.random.Generator)


class TestSpawnRngs:
    def test_children_independent_and_deterministic(self):
        kids_a = spawn_rngs(3, 4)
        kids_b = spawn_rngs(3, 4)
        vals_a = [g.integers(10**9) for g in kids_a]
        vals_b = [g.integers(10**9) for g in kids_b]
        assert vals_a == vals_b
        assert len(set(vals_a)) == 4  # distinct streams

    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7


class TestWorkMeter:
    def test_tick_and_vsec(self):
        m = WorkMeter()
        m.tick(int(OPS_PER_VSEC))
        assert m.vsec == pytest.approx(1.0)

    def test_budget_exhaustion(self):
        m = WorkMeter(budget_ops=10)
        assert not m.exhausted()
        m.tick(10)
        assert m.exhausted()
        assert m.remaining_ops() == 0

    def test_unbudgeted_never_exhausts(self):
        m = WorkMeter()
        m.tick(10**9)
        assert not m.exhausted()
        assert m.remaining_ops() == float("inf")

    def test_vsec_budget_constructor(self):
        m = WorkMeter.with_vsec_budget(2.0)
        assert m.budget_ops == pytest.approx(2.0 * OPS_PER_VSEC)

    def test_reset(self):
        m = WorkMeter(budget_ops=5)
        m.tick(5)
        m.reset()
        assert m.ops == 0 and not m.exhausted()
