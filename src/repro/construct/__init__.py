"""Tour construction heuristics."""

from .christofides import christofides
from .greedy_edge import greedy_edge
from .nearest_neighbor import nearest_neighbor
from .quick_boruvka import quick_boruvka
from .space_filling import space_filling

__all__ = [
    "quick_boruvka",
    "nearest_neighbor",
    "greedy_edge",
    "space_filling",
    "christofides",
]
