"""Inspect a saved run (see ``repro solve --save-run`` / `runio.save_run`).

    python scripts/show_run.py run.json INSTANCE

Prints the run summary, the anytime curve as an ASCII chart, and (for
geometric instances) the best tour rendered on a character grid.
INSTANCE resolves like the CLI's argument (path / testbed name /
generator spec) and must be the instance the run was produced on.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import ascii_chart, plot_tour, sample
from repro.analysis.runio import load_run
from repro.cli import resolve_instance
from repro.distributed.simulator import SimulationResult


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__)
        return 2
    run_path, spec = argv
    instance = resolve_instance(spec)
    run = load_run(run_path, instance)

    if isinstance(run, SimulationResult):
        trace = run.global_trace
        print(f"distributed run on {instance.name}: best {run.best_length} "
              f"(node {run.best_node} at {run.best_found_at:.2f} vsec)")
        for node_id in sorted(run.reasons):
            print(f"  node {node_id}: {run.clocks[node_id]:.2f} vsec, "
                  f"{run.reasons[node_id]}")
        tour = run.best_tour
    else:
        trace = run.trace
        print(f"CLK run on {instance.name}: {run.length} after "
              f"{run.kicks} kicks ({run.work_vsec:.2f} vsec)")
        tour = run.tour

    if len(trace) >= 2:
        t_end = trace[-1][0]
        times = np.linspace(trace[0][0], max(t_end, trace[0][0] + 1e-9), 24)
        print()
        print(ascii_chart(times, {"best": sample(trace, times)},
                          title="anytime curve (vsec vs length)"))
    if instance.coords is not None:
        print()
        print(plot_tour(tour))
    return 0


if __name__ == "__main__":
    sys.exit(main())
