"""The paper's contribution: the distributed CLK evolutionary algorithm."""

from .driver import ReplicateSummary, replicate, solve
from .events import Event, EventKind, EventLog
from .node import EANode, NodeConfig, SelectOutcome

__all__ = [
    "solve",
    "replicate",
    "ReplicateSummary",
    "EANode",
    "NodeConfig",
    "SelectOutcome",
    "Event",
    "EventKind",
    "EventLog",
]
