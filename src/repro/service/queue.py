"""Priority work queue with per-tenant concurrency and vsec budgets.

The queue orders :class:`~repro.service.jobs.JobRecord` entries by
``(tenant.priority + job.priority, seq)`` — lower first, FIFO within a
priority — but admission is gated per tenant: :meth:`WorkQueue.pop_ready`
skips jobs whose tenant is already at ``max_concurrency`` or has
exhausted its virtual-time budget, and returns the best *eligible* job.
Skipped jobs stay queued and become eligible again when the tenant
releases a slot.

Budgets are charged in **virtual seconds** (the simulator's clock, see
docs/VIRTUAL_TIME.md), not wall time, so a tenant's allowance buys the
same amount of optimization work regardless of host load.  The service
charges incrementally as a job's session advances
(:meth:`WorkQueue.charge`); a tenant that runs dry mid-job has the job
failed by the scheduler, and further queued jobs are rejected at pop
time with :meth:`WorkQueue.budget_exhausted` as the test.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Optional

from .jobs import JobRecord, TenantPolicy

__all__ = ["WorkQueue"]


class WorkQueue:
    """Tenant-aware priority queue (event-loop-thread only)."""

    def __init__(self, default_policy: Optional[TenantPolicy] = None):
        self.default_policy = default_policy or TenantPolicy()
        self._policies: Dict[str, TenantPolicy] = {}
        self._heap: list = []  # (priority, seq, JobRecord)
        self._seq = itertools.count()
        self._running: Dict[str, int] = {}
        self._charged: Dict[str, float] = {}

    # -- tenant accounting -------------------------------------------------

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        self._policies[tenant] = policy

    def policy(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self.default_policy)

    def running(self, tenant: str) -> int:
        return self._running.get(tenant, 0)

    def charged(self, tenant: str) -> float:
        return self._charged.get(tenant, 0.0)

    def remaining_budget(self, tenant: str) -> Optional[float]:
        """Unused vsec allowance, or None when unlimited."""
        budget = self.policy(tenant).vsec_budget
        if budget is None:
            return None
        return budget - self.charged(tenant)

    def budget_exhausted(self, tenant: str) -> bool:
        remaining = self.remaining_budget(tenant)
        return remaining is not None and remaining <= 0

    def charge(self, tenant: str, vsec: float) -> None:
        """Debit ``vsec`` of work against the tenant's allowance."""
        if vsec:
            self._charged[tenant] = self.charged(tenant) + float(vsec)

    # -- queue operations --------------------------------------------------

    def push(self, job: JobRecord) -> None:
        job.seq = next(self._seq)
        priority = self.policy(job.spec.tenant).priority + job.spec.priority
        heapq.heappush(self._heap, (priority, job.seq, job))

    def __len__(self) -> int:
        return len(self._heap)

    def depth(self) -> int:
        return len(self._heap)

    def pop_ready(self) -> Optional[JobRecord]:
        """Best-priority job whose tenant has a free slot, or None.

        Tenants at their concurrency cap are skipped (their jobs are
        re-queued unchanged); budget-exhausted tenants' jobs are *also*
        returned — the scheduler must check :meth:`budget_exhausted` and
        fail them, otherwise they would sit queued forever.
        """
        skipped = []
        found = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            job = entry[2]
            tenant = job.spec.tenant
            if (not self.budget_exhausted(tenant)
                    and self.running(tenant)
                    >= self.policy(tenant).max_concurrency):
                skipped.append(entry)
                continue
            found = job
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        if found is not None:
            self._running[found.spec.tenant] = (
                self.running(found.spec.tenant) + 1)
        return found

    def release(self, job: JobRecord) -> None:
        """Return the tenant slot taken by :meth:`pop_ready`."""
        tenant = job.spec.tenant
        count = self.running(tenant)
        if count <= 0:
            raise RuntimeError(
                f"release without matching pop_ready for tenant {tenant!r}")
        self._running[tenant] = count - 1

    def remove(self, job_id: str) -> Optional[JobRecord]:
        """Drop a queued job (cancel-before-run); None if not queued."""
        for i, (_, _, job) in enumerate(self._heap):
            if job.job_id == job_id:
                entry = self._heap.pop(i)
                heapq.heapify(self._heap)
                return entry[2]
        return None
