"""Comparator algorithms from the paper's related-work table.

The ABCC-CLK baseline itself is :func:`repro.localsearch.chained_lk`
(the same engine the distributed algorithm embeds, exactly as in the
paper, where both sides run Concorde's linkern).
"""

from .alpha import alpha_candidate_lists, alpha_matrix
from .lkh_style import LKHStyleResult, lkh_style
from .multilevel import MultilevelResult, coarsen_once, multilevel_clk
from .tour_merging import TourMergingResult, tour_merging, union_candidate_lists

__all__ = [
    "alpha_matrix",
    "alpha_candidate_lists",
    "lkh_style",
    "LKHStyleResult",
    "multilevel_clk",
    "MultilevelResult",
    "coarsen_once",
    "tour_merging",
    "TourMergingResult",
    "union_candidate_lists",
]
