"""The RPL rule set: one AST checker per repo invariant.

========  ====================================================================
ID        Invariant guarded
========  ====================================================================
RPL001    All randomness flows through injected ``np.random.Generator``
          objects; no global RNG state, no unseeded ``default_rng()``.
RPL002    Code that runs under virtual time never reads the wall clock.
RPL003    Operator hot loops access distances through ``DistView`` rows,
          never raw ``instance.dist`` / matrix indexing.
RPL004    Types crossing the multiprocessing boundary are frozen, slotted
          dataclasses with picklable, immutable field types.
RPL005    Blocking queue/pipe reads in ``distributed/`` always carry a
          timeout (the hang class PR 1 eliminated).
RPL006    No bare or silent ``except`` handlers.
========  ====================================================================

Each rule's full rationale — the bug it prevents and the PR that
established the invariant — is catalogued in ``docs/CHECKS.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .config import Config
from .engine import Violation

__all__ = ["Rule", "ALL_RULES", "rule_ids"]


class Rule:
    """Base class: subclasses set ``id``/``title``/``rationale`` and
    implement :meth:`check`."""

    id = "RPL000"
    title = "abstract rule"
    rationale = ""

    def check(
        self, tree: ast.Module, path: str, config: Config
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local alias -> full dotted path, from the module's imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    # Conventional numpy alias even without the import in this file.
    aliases.setdefault("np", "numpy")
    return aliases


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted path through import aliases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------


class NoGlobalRngRule(Rule):
    """RPL001 — randomness must come from an injected Generator."""

    id = "RPL001"
    title = "no global RNG state"
    rationale = (
        "Reproducibility of DistCLK runs (paper §4) depends on every "
        "stochastic choice drawing from an injected np.random.Generator; "
        "global RNG state couples unrelated components and an unseeded "
        "default_rng() makes a run unrepeatable."
    )

    #: numpy.random module-level functions that mutate the legacy global
    #: RandomState (or read it): any use is hidden global state.
    LEGACY = frozenset(
        {
            "seed", "rand", "randn", "randint", "random", "random_sample",
            "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
            "normal", "standard_normal", "binomial", "poisson", "exponential",
            "beta", "gamma", "bytes", "random_integers", "get_state",
            "set_state", "vonmises", "laplace", "lognormal", "geometric",
        }
    )

    def check(self, tree, path, config):
        aliases = _import_map(tree)
        stdlib_random_aliases = {
            alias
            for alias, target in aliases.items()
            if target == "random" or target.startswith("random.")
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "random" or a.name.startswith("random."):
                        yield self.violation(
                            path, node,
                            "import of the stdlib 'random' module (global "
                            "RNG state); use repro.utils.rng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.violation(
                        path, node,
                        "import from the stdlib 'random' module (global "
                        "RNG state); use repro.utils.rng instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func, aliases)
                if dotted is None:
                    continue
                head, _, fn = dotted.rpartition(".")
                if dotted.startswith("numpy.random.") and fn in self.LEGACY:
                    yield self.violation(
                        path, node,
                        f"np.random.{fn}() uses the legacy global "
                        "RandomState; pass an np.random.Generator instead",
                    )
                elif (
                    dotted in ("numpy.random.default_rng", "default_rng")
                    or dotted.endswith(".default_rng")
                ) and not node.args and not node.keywords:
                    yield self.violation(
                        path, node,
                        "default_rng() without a seed argument is "
                        "unrepeatable; thread a seed or Generator through",
                    )
                elif head in stdlib_random_aliases:
                    yield self.violation(
                        path, node,
                        f"stdlib random.{fn}() uses global RNG state; "
                        "use an injected np.random.Generator",
                    )


class NoWallClockRule(Rule):
    """RPL002 — virtual-time code must not read the wall clock."""

    id = "RPL002"
    title = "no wall-clock reads under virtual time"
    rationale = (
        "The simulator's determinism and budget accounting (PR 1) rest on "
        "all timing flowing from WorkMeter operation counts; one "
        "time.time() in the engine makes runs machine-dependent."
    )

    BANNED = frozenset(
        {
            "time.time", "time.time_ns", "time.monotonic",
            "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
            "time.process_time", "time.process_time_ns", "time.sleep",
            "datetime.datetime.now", "datetime.datetime.utcnow",
            "datetime.datetime.today", "datetime.date.today",
        }
    )

    def check(self, tree, path, config):
        aliases = _import_map(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time", "datetime"
            ):
                for a in node.names:
                    if f"{node.module}.{a.name}" in self.BANNED or (
                        node.module == "datetime" and a.name == "datetime"
                    ):
                        yield self.violation(
                            path, node,
                            f"import of wall-clock symbol "
                            f"'{node.module}.{a.name}' in virtual-time "
                            "code; use WorkMeter vsec accounting",
                        )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func, aliases)
                if dotted in self.BANNED:
                    yield self.violation(
                        path, node,
                        f"wall-clock call {dotted}() in virtual-time code; "
                        "time must come from WorkMeter / node clocks",
                    )


class NoRawDistanceRule(Rule):
    """RPL003 — hot loops go through DistView, not instance.dist."""

    id = "RPL003"
    title = "no DistView bypass in operator hot loops"
    rationale = (
        "The engine layer (PR 2) routes hot-loop distance access through "
        "row-cached DistView and distance-sorted candidate rows; raw "
        "instance.dist calls bypass the cache (~3x slower) and invite "
        "scans over unsorted rows, silently corrupting early-break "
        "pruning (cf. Heins et al. 2024 on candidate-list sensitivity)."
    )

    METHODS = frozenset({"dist", "dist_many", "distance_matrix"})
    INSTANCE_PARAMS = frozenset({"instance", "inst"})

    def check(self, tree, path, config):
        matrix_ok = config.matrix_ok_for(path)
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(fn, path, matrix_ok)

    def _check_function(self, fn, path, matrix_ok):
        instance_names = {
            arg.arg
            for arg in list(fn.args.args) + list(fn.args.kwonlyargs)
            if arg.arg in self.INSTANCE_PARAMS
        }
        # One pre-pass for names bound from `<expr>.instance`.
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == "instance":
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            instance_names.add(tgt.id)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attr = node.func.attr
                if attr not in self.METHODS:
                    continue
                recv = node.func.value
                if isinstance(recv, ast.Name) and recv.id in instance_names:
                    yield self.violation(
                        path, node,
                        f"raw {recv.id}.{attr}() in an operator hot-loop "
                        "module; route through DistView (view.dist / "
                        "view.row)",
                    )
                elif isinstance(recv, ast.Attribute) and recv.attr == "instance":
                    yield self.violation(
                        path, node,
                        f"raw <...>.instance.{attr}() in an operator "
                        "hot-loop module; route through DistView",
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == "matrix" and not matrix_ok:
                    yield self.violation(
                        path, node,
                        "direct distance-matrix indexing in an operator "
                        "hot-loop module; use DistView rows (or list the "
                        "module under [tool.reprolint] matrix-ok)",
                    )


class WireTypeRule(Rule):
    """RPL004 — mp-boundary dataclasses are frozen, slotted, picklable."""

    id = "RPL004"
    title = "wire types frozen/slotted with picklable fields"
    rationale = (
        "Types pickled into worker processes (or rebuilt from wire "
        "tuples) must be immutable value objects: a mutable or unpicklable "
        "field either crashes the spawn path or — worse — ships shared "
        "mutable state across the process boundary."
    )

    def check(self, tree, path, config):
        wire_classes = set(config.wire_classes_for(path))
        if not wire_classes:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in wire_classes:
                continue
            deco = self._dataclass_decorator(node)
            if deco is None:
                yield self.violation(
                    path, node,
                    f"wire type {node.name} must be a "
                    "@dataclass(frozen=True, slots=True)",
                )
                continue
            missing = [
                kw
                for kw in ("frozen", "slots")
                if not self._kw_is_true(deco, kw)
            ]
            if missing:
                yield self.violation(
                    path, node,
                    f"wire type {node.name} must set "
                    f"{', '.join(f'{m}=True' for m in missing)} on its "
                    "@dataclass decorator",
                )
            allowed = set(config.picklable_names)
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id.startswith("_")
                ):
                    continue
                bad = self._first_disallowed(stmt.annotation, allowed)
                if bad is not None:
                    name = (
                        stmt.target.id
                        if isinstance(stmt.target, ast.Name)
                        else "<field>"
                    )
                    yield self.violation(
                        path, stmt,
                        f"wire type {node.name}.{name} has non-picklable/"
                        f"mutable annotation component {bad!r}; allowed "
                        "leaves are immutable scalars, tuples, ndarray, "
                        "enums and nested wire types",
                    )

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef):
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "dataclass":
                return deco if isinstance(deco, ast.Call) else ast.Call(
                    func=target, args=[], keywords=[]
                )
        return None

    @staticmethod
    def _kw_is_true(deco: ast.Call, name: str) -> bool:
        for kw in deco.keywords:
            if kw.arg == name:
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                )
        return False

    def _first_disallowed(self, node: ast.AST, allowed: set) -> str | None:
        """Depth-first search for the first disallowed leaf name."""
        if isinstance(node, ast.Constant):
            if node.value is None or node.value is Ellipsis:
                return None
            if isinstance(node.value, str):  # string annotation: parse it
                try:
                    inner = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return node.value
                return self._first_disallowed(inner, allowed)
            return repr(node.value)
        if isinstance(node, ast.Name):
            return None if node.id in allowed else node.id
        if isinstance(node, ast.Attribute):
            return None if node.attr in allowed else node.attr
        if isinstance(node, ast.Subscript):
            bad = self._first_disallowed(node.value, allowed)
            if bad is not None:
                return bad
            return self._first_disallowed(node.slice, allowed)
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                bad = self._first_disallowed(elt, allowed)
                if bad is not None:
                    return bad
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._first_disallowed(
                node.left, allowed
            ) or self._first_disallowed(node.right, allowed)
        return ast.dump(node)


class QueueTimeoutRule(Rule):
    """RPL005 — blocking queue/pipe reads must carry a timeout."""

    id = "RPL005"
    title = "blocking queue reads need a timeout"
    rationale = (
        "A bare queue.get()/recv() blocks forever when the producer died "
        "— the silent-hang class PR 1 eliminated; every blocking read in "
        "the transport layer must bound its wait.  The asyncio face of "
        "the same hang is `await q.get()` outside asyncio.wait_for: a "
        "coroutine parked on a queue whose producer task died waits "
        "forever, so awaited gets must be wrapped in a finite wait_for."
    )

    def check(self, tree, path, config):
        guarded = self._wait_for_guarded(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node in guarded:
                continue
            attr = node.func.attr
            if attr == "recv" and not node.args and not node.keywords:
                yield self.violation(
                    path, node,
                    "recv() without a timeout/poll guard blocks forever "
                    "on a dead peer; poll with a deadline first",
                )
            elif attr == "get":
                yield from self._check_get(node, path)

    @staticmethod
    def _wait_for_guarded(tree: ast.Module) -> set:
        """Calls appearing inside the awaitable argument of a
        ``wait_for(...)`` with a finite timeout — bounded by
        construction, so exempt from the timeout checks."""
        guarded: set = set()
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and (
                    (isinstance(node.func, ast.Attribute)
                     and node.func.attr == "wait_for")
                    or (isinstance(node.func, ast.Name)
                        and node.func.id == "wait_for")
                )
                and node.args
            ):
                continue
            timeout = None
            if len(node.args) > 1:
                timeout = node.args[1]
            for kw in node.keywords:
                if kw.arg == "timeout":
                    timeout = kw.value
            if timeout is None or (
                isinstance(timeout, ast.Constant) and timeout.value is None
            ):
                continue
            for sub in ast.walk(node.args[0]):
                if isinstance(sub, ast.Call):
                    guarded.add(sub)
        return guarded

    def _check_get(self, node: ast.Call, path: str):
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        timeout = kwargs.get("timeout")
        if timeout is not None:
            if isinstance(timeout, ast.Constant) and timeout.value is None:
                yield self.violation(
                    path, node,
                    "get(timeout=None) blocks forever; pass a finite "
                    "timeout",
                )
            return
        blocking_kw = kwargs.get("block")
        explicit_blocking = (
            isinstance(blocking_kw, ast.Constant)
            and blocking_kw.value is True
        ) or (
            len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is True
        )
        # `.get()` with no arguments is ambiguous between dict.get and
        # queue.get only in the former's degenerate zero-arg form, which
        # is a TypeError — so zero-arg get is always a blocking queue
        # read.  One non-True argument (dict.get(key[, default]) or
        # queue.get(block, timeout)) is left alone.
        if explicit_blocking or (not node.args and not node.keywords):
            yield self.violation(
                path, node,
                "blocking queue get() without a timeout hangs when the "
                "producer is gone; use get(timeout=...) or get_nowait()",
            )


class NoSilentExceptRule(Rule):
    """RPL006 — no bare or silent exception swallowing."""

    id = "RPL006"
    title = "no bare/silent except"
    rationale = (
        "`except Exception: pass` hides the first symptom of every other "
        "invariant violation; failures must surface, be logged, or be "
        "narrowed to the exact expected exception type."
    )

    BROAD = frozenset({"Exception", "BaseException"})

    def check(self, tree, path, config):
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    path, node,
                    "bare 'except:' also swallows KeyboardInterrupt/"
                    "SystemExit; name the exception type",
                )
            elif self._is_broad(node.type) and self._is_silent(node.body):
                yield self.violation(
                    path, node,
                    "silently swallowed broad exception; narrow the type "
                    "or handle/log the failure",
                )

    def _is_broad(self, type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Name):
            return type_node.id in self.BROAD
        if isinstance(type_node, ast.Attribute):
            return type_node.attr in self.BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return False

    @staticmethod
    def _is_silent(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or Ellipsis
            return False
        return True


ALL_RULES: tuple[Rule, ...] = (
    NoGlobalRngRule(),
    NoWallClockRule(),
    NoRawDistanceRule(),
    WireTypeRule(),
    QueueTimeoutRule(),
    NoSilentExceptRule(),
)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in ALL_RULES)
