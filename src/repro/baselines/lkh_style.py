"""LKH-style baseline: Lin-Kernighan over alpha-nearness candidates.

Reproduces the *profile* of Helsgaun's LKH that the paper compares
against (Table 2): a long preprocessing phase (Held-Karp ascent + alpha
candidate computation, all counted against the work budget) followed by
LK trials restricted to very small, high-quality candidate lists — slow
to start, but reaching excellent tours.  Helsgaun's sequential 5-opt step
is approximated by the variable-depth LK engine with deeper backtracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..construct.nearest_neighbor import nearest_neighbor
from ..localsearch.lin_kernighan import LinKernighan, LKConfig
from ..tsp.candidates import AlphaCandidates
from ..tsp.tour import Tour
from ..utils.rng import ensure_rng
from ..utils.work import WorkMeter

__all__ = ["LKHStyleResult", "lkh_style"]

#: Virtual cost charged for the ascent + alpha preprocessing, per city per
#: ascent iteration (the dense 1-tree work the meter cannot see).
_PREP_OPS_PER_CITY_ITER = 24


@dataclass
class LKHStyleResult:
    """Outcome of an LKH-style run."""

    tour: Tour
    trials: int
    work_vsec: float
    preprocessing_vsec: float
    trace: list = field(default_factory=list)

    @property
    def length(self) -> int:
        return self.tour.length


def lkh_style(
    instance,
    budget_vsec: float,
    candidate_k: int = 5,
    ascent_iterations: int = 60,
    max_trials: int | None = None,
    target_length: int | None = None,
    rng=None,
) -> LKHStyleResult:
    """Run the LKH-style baseline under a work budget.

    Each trial starts from a fresh nearest-neighbour tour (LKH's default
    initial tour) and LK-optimizes it over the alpha candidate lists; the
    best tour across trials is returned.
    """
    rng = ensure_rng(rng)
    meter = WorkMeter.with_vsec_budget(budget_vsec)

    # Preprocessing: charge the dense Held-Karp / alpha work to the meter.
    provider = AlphaCandidates(
        k=candidate_k, ascent_iterations=ascent_iterations
    )
    provider.lists(instance)  # build eagerly so the cost lands here
    meter.tick(_PREP_OPS_PER_CITY_ITER * instance.n * ascent_iterations)
    prep_vsec = meter.vsec

    config = LKConfig(neighbor_k=candidate_k, max_depth=50, breadth=(8, 4, 2))
    lk = LinKernighan(instance, config, candidates=provider)

    best: Tour | None = None
    trials = 0
    trace: list = []
    while best is None or not meter.exhausted():
        if max_trials is not None and trials >= max_trials:
            break
        tour = nearest_neighbor(instance, rng=rng)
        meter.tick(instance.n)
        lk.optimize(tour, meter)
        trials += 1
        if best is None or tour.length < best.length:
            best = tour.copy()
            trace.append((meter.vsec, best.length))
        if target_length is not None and best.length <= target_length:
            break
    return LKHStyleResult(
        tour=best,
        trials=trials,
        work_vsec=meter.vsec,
        preprocessing_vsec=prep_vsec,
        trace=trace,
    )
