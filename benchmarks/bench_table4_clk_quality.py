"""Paper Table 4: CLK average excess after an early and a late checkpoint.

    "Distance of the average tour length compared to known optimum
    (Held-Karp bound for fi10639, pla33810 and pla85900) for CLK-ABCC
    after 100 and 10^4 CPU seconds, respectively."

One CLK run per (instance, kick, seed) with the late budget; the early
column is the same trace sampled at 1% of the budget, exactly as the
paper reads one run at two times.  Shape to reproduce: quality improves
from the early to the late checkpoint everywhere, Geometric is the weak
strategy on small instances, and Random degrades on the fl-class.
"""

import numpy as np

from _common import (
    emit,
    FULL_TESTBED,
    KICKS,
    KICK_LABELS,
    N_RUNS,
    clk_budget,
    print_banner,
    reference,
    run_clk,
    seeds,
)
from repro.analysis import fmt_pct, format_table, mean_excess_percent, value_at


def _experiment():
    table = {}
    for name in FULL_TESTBED:
        ref, kind = reference(name)
        budget = clk_budget(name)
        early_t = budget / 5.0  # paper uses 100 s vs 10^4 s; factor 5 at this scale
        for kick in KICKS:
            early, late = [], []
            for s in seeds(4000 + hash((name, kick)) % 1000, N_RUNS):
                res = run_clk(name, kick, s, budget=budget)
                v = value_at(res.trace, early_t)
                early.append(v if v is not None else res.trace[0][1])
                late.append(res.length)
            table[(name, kick)] = (
                mean_excess_percent(early, ref),
                mean_excess_percent(late, ref),
                kind,
            )
    return table


def test_table4_clk_quality(once):
    table = once(_experiment)
    print_banner(
        "Table 4: ABCC-CLK average excess over reference at early/late "
        "checkpoints (paper: 100 s / 10^4 s)",
        "reference = best-known length ('optimum' role) or HK bound.",
    )
    headers = ["instance"]
    for kick in KICKS:
        headers += [f"{KICK_LABELS[kick]} early", f"{KICK_LABELS[kick]} late"]
    rows = []
    for name in FULL_TESTBED:
        row = [name]
        for kick in KICKS:
            e, l, _ = table[(name, kick)]
            row += [fmt_pct(e), fmt_pct(l)]
        rows.append(row)
    emit(format_table(headers, rows))

    # Shape checks.
    improvements = [
        table[(n, k)][0] - table[(n, k)][1] for n in FULL_TESTBED for k in KICKS
    ]
    frac_improved = np.mean([d > -1e-9 for d in improvements])
    emit(f"\nshape check: late <= early in {frac_improved:.0%} of cells")
    assert frac_improved >= 0.9

    # All late excesses stay small (CLK is a strong heuristic).
    lates = [table[(n, k)][1] for n in FULL_TESTBED for k in KICKS]
    assert np.median(lates) < 5.0
