"""Lin-Kernighan variable-depth local search.

The implementation follows the classic array-based formulation (Johnson &
McGeoch): an LK move of depth *k* is realized as a sequence of 2-opt
*flips*, each of which keeps the tour Hamiltonian.  From a base city
``t1`` with tour neighbour ``u``:

1. conceptually break the closing edge ``(t1, u)`` — gain ``G = d(t1, u)``;
2. pick ``v`` among ``u``'s candidate neighbours with ``G - d(u, v) > 0``;
3. let ``w`` be the tour neighbour of ``v`` on the ``u`` side; the 2-opt
   flip removing ``{t1,u}, {v,w}`` and adding ``{u,v}, {w,t1}`` re-closes
   the tour.  ``w`` becomes the new ``u`` and the search deepens.

The cumulative tour delta is tracked per flip; at the end the chain is
unwound to the best prefix (possibly all the way).  Candidates are scanned
best-first with the standard lookahead score ``G - d(u,v) + d(v,w)``, with
configurable breadth at the first levels (linkern-style backtracking) and
greedy descent below.

The machinery — row-cached distances, the don't-look queue, operation
telemetry — comes from the shared engine layer
(:mod:`repro.localsearch.engine`); candidate lists come from a pluggable
provider (:mod:`repro.tsp.candidates`) selected by ``LKConfig.candidate_set``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..tsp import candidates as _cands
from ..tsp.tour import Tour
from ..utils.sanitize import check_tour, sanitize_enabled
from ..utils.work import WorkMeter
from .engine import (
    KERNELS,
    DistView,
    DontLookQueue,
    OpStats,
    register_operator,
    resolve_kernel,
)

__all__ = ["LKConfig", "LinKernighan", "lin_kernighan"]


@dataclass(frozen=True, slots=True)
class LKConfig:
    """Tuning knobs for the LK engine (defaults mirror linkern's spirit)."""

    #: Candidate-list size (k-NN width; quadrant uses k // 4 per quadrant).
    neighbor_k: int = 8
    #: Maximum chain depth (number of flips in one LK move).
    max_depth: int = 50
    #: Candidate breadth per level; levels beyond the tuple are greedy (1).
    breadth: tuple = (5, 3, 1)
    #: Use quadrant neighbour lists instead of plain k-NN when geometric.
    #: Legacy knob; equivalent to ``candidate_set="quadrant"``.
    use_quadrant_neighbors: bool = False
    #: Candidate-set provider name (see
    #: :func:`repro.tsp.candidates.candidate_set_names`).
    candidate_set: str = "knn"
    #: Scan-kernel tier (``"scalar"``/``"row"``/``"vector"``); ``None``
    #: defers to the ``REPRO_KERNEL`` environment default.  All tiers
    #: select bit-identical move sequences (see
    #: :mod:`repro.localsearch.kernels`).
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.neighbor_k < 1:
            raise ValueError(f"neighbor_k must be >= 1, got {self.neighbor_k}")
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if not self.breadth:
            raise ValueError("breadth must name at least one level")
        if any(int(b) < 1 for b in self.breadth):
            raise ValueError(f"breadth levels must be >= 1, got {self.breadth}")
        if self.candidate_set not in _cands.CANDIDATE_SETS:
            raise ValueError(
                f"unknown candidate set {self.candidate_set!r}; "
                f"known: {_cands.candidate_set_names()}"
            )
        if self.kernel is not None and self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; known: {KERNELS}"
            )

    def breadth_at(self, level: int) -> int:
        if level < len(self.breadth):
            return max(1, int(self.breadth[level]))
        return 1

    def make_candidates(self) -> "_cands.CandidateSet":
        """Instantiate the configured candidate provider."""
        name = self.candidate_set
        if self.use_quadrant_neighbors and name == "knn":
            name = "quadrant"
        return _cands.get_candidate_set(name, k=self.neighbor_k)


class LinKernighan:
    """Reusable LK optimizer bound to one instance.

    Construct once per instance (neighbour lists are built eagerly), then
    call :meth:`optimize` on any tour of that instance.  The object is
    stateless between calls except for scratch buffers; :attr:`stats`
    accumulates :class:`~repro.localsearch.engine.OpStats` telemetry over
    the object's lifetime (window with ``stats.copy()`` / subtraction).

    ``candidates`` overrides the config's provider: a
    :class:`~repro.tsp.candidates.CandidateSet`, a registry name, or a
    raw ``(n, k)`` array (assumed distance-sorted per row).
    """

    def __init__(self, instance, config: LKConfig | None = None,
                 candidates=None, view: DistView | None = None,
                 kernel: str | None = None):
        self.instance = instance
        self.config = config or LKConfig()
        if candidates is None:
            candidates = self.config.make_candidates()
        self.candidates = _cands.as_candidate_set(candidates)
        self._neighbors = self.candidates.lists(instance)
        self._neighbor_rows = self.candidates.row_lists(instance)
        self._dlq = DontLookQueue(instance.n)
        self.stats = OpStats()
        # Hot-loop distance access: plain nested lists beat numpy scalar
        # indexing by ~3x; the view falls back to the instance closure
        # when the dense matrix would not fit.  Rows are cached on the
        # instance, so the nodes of a distributed run share one copy.
        self.view = view if view is not None else DistView(instance)
        self._dist_rows = self.view.rows
        # Kernel tier for the candidate sweep: explicit arg wins over the
        # config knob, which wins over the REPRO_KERNEL env default.
        self.kernel = resolve_kernel(
            kernel if kernel is not None else self.config.kernel
        )
        self._scan_rows = None if self.kernel == "scalar" else self.view.rows
        self._kc = None
        self._sweep = None
        if self.kernel == "vector":
            from . import kernels as _kernels

            self._kc = _kernels.CandidateKernel(
                instance, self.candidates, self.view
            )
            self._sweep = _kernels.lk_sweep

    # -- candidate-list access -----------------------------------------------

    @property
    def neighbors(self) -> np.ndarray:
        """Candidate array, ``(n, k)``, each row distance-sorted."""
        return self._neighbors

    @neighbors.setter
    def neighbors(self, array) -> None:
        # Back-compat hook (baselines historically swapped the array in
        # place); routes through ExplicitCandidates so the hot-loop row
        # lists stay in sync with the array.
        provider = _cands.as_candidate_set(array)
        self.candidates = provider
        self._neighbors = provider.lists(self.instance)
        self._neighbor_rows = provider.row_lists(self.instance)
        if self._kc is not None:
            from . import kernels as _kernels

            self._kc = _kernels.CandidateKernel(
                self.instance, provider, self.view
            )

    # -- public API ---------------------------------------------------------

    def optimize(
        self,
        tour: Tour,
        meter: WorkMeter | None = None,
        dirty: Optional[Iterable[int]] = None,
        fixed: Optional[set] = None,
    ) -> int:
        """Optimize ``tour`` in place; returns total improvement (>= 0).

        ``dirty`` seeds the don't-look queue; when omitted every city is
        active (full optimization).  Passing only the cities touched by a
        kick makes re-optimization after a perturbation nearly free.
        ``fixed`` is a set of directed city pairs (both orientations) the
        search must not break — Bachem & Wottawa's *partial reduction*,
        used by the backbone extension.  Interruptible at move boundaries
        via ``meter``.
        """
        if tour.instance is not self.instance:
            raise ValueError("tour belongs to a different instance")
        meter = meter if meter is not None else WorkMeter()
        stats = self.stats
        stats.calls += 1

        queue = self._dlq
        queue.clear()
        if dirty is None:
            queue.fill(tour.order)
        else:
            queue.seed(dirty)

        wakeups0 = queue.wakeups
        total = 0
        while queue and not meter.exhausted():
            t1 = queue.pop()
            gain, touched = self._improve_city(tour, t1, meter, fixed)
            if gain > 0:
                total += gain
                stats.moves += 1
                for c in touched:
                    queue.push(c)
        stats.queue_wakeups += queue.wakeups - wakeups0
        stats.gain += total
        if sanitize_enabled():
            check_tour(tour, "lin_kernighan")
        return total

    # -- internals -----------------------------------------------------------

    def _dist(self, i: int, j: int) -> int:
        return self.view.dist(i, j)

    def _apply_flip(self, tour: Tour, t1: int, u: int, v: int, w: int,
                    meter: WorkMeter) -> int:
        """2-opt flip removing ``{t1,u}, {v,w}``, adding ``{t1,w}, {u,v}``.

        Returns the signed length delta.  Orientation-safe: works whether
        ``u`` is the successor or predecessor of ``t1`` in the array.
        """
        d = self.view.dist
        delta = d(t1, w) + d(u, v) - d(t1, u) - d(v, w)
        if tour.next(t1) == u:
            # forward: t1 -> u ... w -> v; reverse u..w
            assert tour.next(w) == v, "w must precede v on the u side"
            moved = tour.reverse_segment(tour.position[u], tour.position[w])
        else:
            # backward: v -> w ... u -> t1; reverse w..u
            assert tour.prev(t1) == u and tour.next(v) == w, "invalid flip"
            moved = tour.reverse_segment(tour.position[w], tour.position[u])
        tour.length += delta
        self.stats.segment_swaps += moved
        meter.tick(moved + 1)
        return delta

    def _improve_city(self, tour: Tour, t1: int, meter: WorkMeter,
                      fixed: Optional[set] = None):
        """Try to find an improving LK move anchored at ``t1``.

        Returns ``(gain, touched_cities)``; gain is 0 when no improvement
        was kept (the tour is then exactly as before).
        """
        for u0 in (tour.next(t1), tour.prev(t1)):
            if fixed is not None and (t1, u0) in fixed:
                continue
            gain, touched = self._search_chain(tour, t1, u0, meter, fixed)
            if gain > 0:
                return gain, touched
            if meter.exhausted():
                break
        return 0, ()

    def _candidates(self, tour: Tour, t1: int, u: int, g_open: float,
                    removed: set, added: set, breadth: int,
                    meter: WorkMeter, fixed: Optional[set] = None):
        """Valid (v, w) continuations from endpoint ``u``, best-first.

        Yields at most ``breadth`` pairs ordered by the lookahead score
        ``g_open - d(u, v) + d(v, w)``.
        """
        if self._kc is not None:
            out, scanned = self._sweep(
                self._kc, tour, t1, u, g_open, removed, added, breadth,
                fixed,
            )
            meter.tick(scanned)
            self.stats.candidate_scans += scanned
            return out
        rows = self._scan_rows
        du = rows[u] if rows is not None else None
        dist = None if du is not None else self.view.dist
        forward = tour.next(t1) == u
        order = tour.order
        position = tour.position
        n = tour.n
        out = []
        scanned = 0
        for v in self._neighbor_rows[u]:
            scanned += 1
            duv = du[v] if du is not None else dist(u, v)
            if duv >= g_open:
                break  # sorted by distance: no further candidate has gain
            if v == t1 or v == u:
                continue
            if (u, v) in removed:
                continue
            if forward:
                w = int(order[position[v] - 1])
            else:
                p = position[v] + 1
                w = int(order[p if p < n else 0])
            if w == t1 or w == u:
                continue
            if (v, w) in added or (v, w) in removed:
                continue
            if fixed is not None and (v, w) in fixed:
                continue
            dvw = rows[v][w] if rows is not None else dist(v, w)
            out.append((g_open - duv + dvw, duv, dvw, v, w))
        meter.tick(scanned)
        self.stats.candidate_scans += scanned
        out.sort(reverse=True)
        return out[:breadth]

    def _search_chain(self, tour: Tour, t1: int, u0: int, meter: WorkMeter,
                      fixed: Optional[set] = None):
        """Grow one LK chain from (t1, u0); keep the best prefix if improving.

        Backtracking: at levels with breadth > 1 the alternatives are
        explored depth-first; the first chain that yields a strict
        improvement is kept (first-improvement, as in linkern).
        """
        cfg = self.config
        stats = self.stats
        flips: list[tuple] = []  # (t1, u, v, w) per applied flip
        touched: set[int] = {t1, u0}

        best_delta = 0  # strictly negative = improvement
        best_len = 0

        # Edge sets hold both orientations so membership is one lookup.
        removed: set = {(t1, u0), (u0, t1)}
        added: set = set()

        def undo_to(k: int) -> None:
            while len(flips) > k:
                ft1, fu, fv, fw = flips.pop()
                # Inverse flip: remove {t1,w},{u,v}; add back {t1,u},{v,w}.
                self._apply_flip(tour, ft1, fw, fv, fu, meter)
                stats.flips_undone += 1
                removed.discard((fv, fw))
                removed.discard((fw, fv))
                added.discard((fu, fv))
                added.discard((fv, fu))

        def dfs(u: int, g_open: float, delta: int, level: int) -> bool:
            """Returns True when an improving chain has been accepted."""
            nonlocal best_delta, best_len
            if level >= cfg.max_depth or meter.exhausted():
                return False
            cands = self._candidates(
                tour, t1, u, g_open, removed, added, cfg.breadth_at(level),
                meter, fixed,
            )
            for _score, duv, dvw, v, w in cands:
                d = self._apply_flip(tour, t1, u, v, w, meter)
                stats.flips_applied += 1
                flips.append((t1, u, v, w))
                removed.add((v, w))
                removed.add((w, v))
                added.add((u, v))
                added.add((v, u))
                touched.update((u, v, w))
                new_delta = delta + d
                if new_delta < best_delta:
                    best_delta = new_delta
                    best_len = len(flips)
                    # First-improvement: extend greedily from here, then stop.
                    dfs(w, g_open - duv + dvw, new_delta, level + 1)
                    return True
                if dfs(w, g_open - duv + dvw, new_delta, level + 1):
                    return True
                undo_to(len(flips) - 1)
            return False

        dfs(u0, float(self._dist(t1, u0)), 0, 0)
        if best_delta < 0:
            undo_to(best_len)
            return -best_delta, tuple(touched)
        undo_to(0)
        return 0, ()


def lin_kernighan(
    tour: Tour,
    config: LKConfig | None = None,
    meter: WorkMeter | None = None,
    dirty: Optional[Iterable[int]] = None,
    fixed: Optional[set] = None,
    candidates=None,
    stats: OpStats | None = None,
    view: DistView | None = None,
    kernel: str | None = None,
) -> int:
    """One-shot convenience wrapper around :class:`LinKernighan`.

    Prefer constructing :class:`LinKernighan` once when optimizing many
    tours of the same instance (neighbour lists are reused).  ``fixed``
    protects directed edge pairs exactly as in
    :meth:`LinKernighan.optimize`; ``stats``, when given, receives the
    call's :class:`~repro.localsearch.engine.OpStats`; ``view`` /
    ``kernel`` select the distance access and scan tier as in
    :func:`repro.localsearch.two_opt.two_opt`.
    """
    engine = LinKernighan(
        tour.instance, config, candidates=candidates, view=view,
        kernel=kernel,
    )
    gain = engine.optimize(tour, meter, dirty, fixed=fixed)
    if stats is not None:
        stats.merge(engine.stats)
    return gain


@register_operator("lk")
def _lk_operator(tour: Tour, *, candidates=None, meter=None, stats=None,
                 config: LKConfig | None = None, **kwargs) -> int:
    """Registry adapter: LK under the uniform operator interface."""
    return lin_kernighan(
        tour, config, meter=meter, candidates=candidates, stats=stats,
        **kwargs,
    )
