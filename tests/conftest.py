"""Shared fixtures: small deterministic instances and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tsp import generators
from repro.tsp.instance import TSPInstance


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_instance():
    """9 cities: exact optimum computable by brute force."""
    return generators.uniform(9, rng=42, name="tiny9")


@pytest.fixture(scope="session")
def small_instance():
    """60 uniform cities: big enough for LK to have real work."""
    return generators.uniform(60, rng=7, name="small60")


@pytest.fixture(scope="session")
def clustered_instance():
    return generators.clustered(50, rng=11, n_clusters=5, name="clust50")


@pytest.fixture(scope="session")
def explicit_instance():
    """Small EXPLICIT-matrix instance (non-geometric code paths)."""
    return generators.random_matrix(12, rng=3, name="mat12")


@pytest.fixture(scope="session")
def square_instance():
    """4 cities on a unit-ish square: optimum known by hand."""
    coords = np.array(
        [[0.0, 0.0], [0.0, 100.0], [100.0, 100.0], [100.0, 0.0]]
    )
    return TSPInstance(coords=coords, name="square4")
