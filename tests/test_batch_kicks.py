"""Batched best-of-N kick stage: equivalence, determinism, fault tolerance.

The contract under test (see docs/ALGORITHMS.md "Batched kicks"):

* width 1 *is* the serial CLK loop — bit-identical tours, kick counts,
  and virtual-time accounting under fixed seeds;
* the process pool and the inline backend are interchangeable — identical
  results and identical engine telemetry for identical seeds (this is the
  worker-state regression test: any fork-shared cache or global RNG leak
  in the pool would break it);
* a pool that dies mid-batch degrades gracefully: the batch is re-run
  inline with identical results and the run continues.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.localsearch import BatchKickRunner, ChainedLK, chained_lk
from repro.localsearch.batch import run_chain
from repro.tsp.instance import TSPInstance
from repro.utils.work import WorkMeter


def _run(inst, **kw):
    return chained_lk(inst, max_kicks=12, rng=99, **kw)


class TestWidthOneIsSerial:
    def test_bit_identical_tour_and_accounting(self, small_instance):
        serial = _run(small_instance)
        batched = _run(small_instance, batch_width=1)
        assert batched.length == serial.length
        assert np.array_equal(batched.tour.order, serial.tour.order)
        assert batched.kicks == serial.kicks
        assert batched.work_vsec == serial.work_vsec
        assert batched.trace == serial.trace
        assert batched.op_stats == serial.op_stats

    def test_width_validation(self, small_instance):
        with pytest.raises(ValueError, match="batch_width"):
            ChainedLK(small_instance, batch_width=0)
        with pytest.raises(ValueError, match="backend"):
            BatchKickRunner(small_instance, "random_walk", None, 2,
                            backend="threads")

    def test_backend_validated_eagerly(self, small_instance):
        # The runner is built lazily on the first batched step; the solver
        # must still reject a typo'd backend at construction, even at the
        # default width where no batched step would ever run.
        with pytest.raises(ValueError, match="backend"):
            ChainedLK(small_instance, batch_backend="threads")


class TestBatchedDeterminism:
    def test_identical_seeded_runs_identical(self, small_instance):
        a = _run(small_instance, batch_width=3, batch_backend="inline")
        b = _run(small_instance, batch_width=3, batch_backend="inline")
        assert a.length == b.length
        assert np.array_equal(a.tour.order, b.tour.order)
        assert a.work_vsec == b.work_vsec
        assert a.op_stats == b.op_stats

    def test_identical_seeded_pool_runs_identical(self, small_instance):
        a = _run(small_instance, batch_width=2, batch_backend="process")
        b = _run(small_instance, batch_width=2, batch_backend="process")
        assert a.length == b.length
        assert np.array_equal(a.tour.order, b.tour.order)
        assert a.op_stats == b.op_stats

    def test_pool_matches_inline(self, small_instance):
        pool = _run(small_instance, batch_width=2, batch_backend="process")
        inline = _run(small_instance, batch_width=2, batch_backend="inline")
        assert pool.length == inline.length
        assert np.array_equal(pool.tour.order, inline.tour.order)
        assert pool.work_vsec == inline.work_vsec
        assert pool.op_stats == inline.op_stats


class TestStepBatchSemantics:
    def test_never_worse_than_start_and_best_of_members(self, small_instance):
        solver = ChainedLK(small_instance, rng=5, batch_width=4,
                           batch_backend="inline")
        meter = WorkMeter()
        best = solver.initial_tour(meter)
        # Re-run the same batch by hand to observe the members.
        probe = ChainedLK(small_instance, rng=5, batch_width=4,
                          batch_backend="inline")
        probe_meter = WorkMeter()
        probe_best = probe.initial_tour(probe_meter)
        root = int(probe.rng.integers(2 ** 63 - 1))
        seeds = np.random.SeedSequence(root).spawn(4)
        members = [
            run_chain(probe, probe_best.copy(), 1,
                      np.random.default_rng(s), WorkMeter())
            for s in seeds
        ]
        chosen = solver.step_batch(best, meter)
        solver.close()
        assert chosen.length <= best.length
        assert chosen.length == min(m.length for m in members)

    def test_meter_charged_sum_of_chains(self, small_instance):
        solver = ChainedLK(small_instance, rng=5, batch_width=3,
                           batch_backend="inline")
        meter = WorkMeter()
        best = solver.initial_tour(meter)
        before = meter.ops
        runner_results = {}
        orig = BatchKickRunner.run_batch

        def spy(self, *a, **kw):
            results = orig(self, *a, **kw)
            runner_results["ops"] = sum(r.ops for r in results)
            return results

        BatchKickRunner.run_batch = spy
        try:
            solver.step_batch(best, meter)
        finally:
            BatchKickRunner.run_batch = orig
        assert meter.ops - before == runner_results["ops"] > 0

    def test_kick_count_increments_by_width(self, small_instance):
        res = _run(small_instance, batch_width=3, batch_backend="inline")
        assert res.kicks % 3 == 0


class TestPoolFaultTolerance:
    def test_crash_mid_batch_recovers_with_identical_results(
            self, small_instance):
        crashed = ChainedLK(small_instance, rng=17, batch_width=2,
                            batch_backend="process")
        clean = ChainedLK(small_instance, rng=17, batch_width=2,
                          batch_backend="inline")
        mc, mi = WorkMeter(), WorkMeter()
        tc = crashed.step_batch(crashed.initial_tour(mc), mc)  # spawns pool
        ti = clean.step_batch(clean.initial_tour(mi), mi)
        runner = crashed._batch_runner
        assert runner.pool_failures == 0
        runner.inject_crash_chains = {0}
        tc = crashed.step_batch(tc, mc)
        ti = clean.step_batch(ti, mi)
        assert runner.pool_failures == 1
        assert tc.length == ti.length
        assert np.array_equal(tc.order, ti.order)
        assert mc.ops == mi.ops
        assert crashed.stats == clean.stats
        # The next batch respawns a pool and keeps matching.
        tc = crashed.step_batch(tc, mc)
        ti = clean.step_batch(ti, mi)
        assert runner.pool_failures == 1
        assert tc.length == ti.length and mc.ops == mi.ops
        crashed.close()
        clean.close()

    def test_repeated_breaks_disable_pool(self, small_instance):
        solver = ChainedLK(small_instance, rng=17, batch_width=2,
                           batch_backend="process")
        meter = WorkMeter()
        best = solver.initial_tour(meter)
        best = solver.step_batch(best, meter)
        runner = solver._batch_runner
        for _ in range(runner.MAX_POOL_FAILURES):
            runner.inject_crash_chains = {0}
            best = solver.step_batch(best, meter)
        assert runner.pool_failures == runner.MAX_POOL_FAILURES
        assert not runner._pool_allowed()
        # Further batches run inline, silently and correctly.
        out = solver.step_batch(best, meter)
        assert out.length <= best.length
        assert runner._executor is None
        solver.close()

    def test_daemonic_caller_falls_back_inline(self, small_instance,
                                               monkeypatch):
        class FakeProc:
            daemon = True

        monkeypatch.setattr(mp, "current_process", lambda: FakeProc())
        runner = BatchKickRunner(small_instance, "random_walk", None, 4)
        assert runner._ensure_executor() is None
        solver = ChainedLK(small_instance, rng=3, batch_width=4)
        meter = WorkMeter()
        best = solver.initial_tour(meter)
        out = solver.step_batch(best, meter)
        assert out.length <= best.length
        assert solver._batch_runner._executor is None
        solver.close()


class TestInstancePayload:
    def test_geometric_roundtrip_excludes_caches(self, small_instance):
        small_instance.neighbor_lists(8)  # populate a cache to not inherit
        payload = small_instance.to_payload()
        assert set(payload) == {"coords", "edge_weight_type", "name"}
        rebuilt = TSPInstance.from_payload(payload)
        assert rebuilt.n == small_instance.n
        assert rebuilt._matrix_cache is None or rebuilt is not small_instance
        assert not rebuilt._neighbor_cache
        assert np.array_equal(rebuilt.neighbor_lists(8),
                              small_instance.neighbor_lists(8))

    def test_explicit_roundtrip(self, explicit_instance):
        payload = explicit_instance.to_payload()
        assert set(payload) == {"matrix", "edge_weight_type", "name"}
        rebuilt = TSPInstance.from_payload(payload)
        assert rebuilt.tour_length(np.arange(rebuilt.n)) == \
            explicit_instance.tour_length(np.arange(explicit_instance.n))


class TestNodeIntegration:
    def test_simulator_batched_runs_deterministic(self, small_instance):
        from repro.core import solve

        kw = dict(budget_vsec_per_node=0.25, n_nodes=2, topology="ring",
                  kick_batch_width=2, kick_batch_backend="inline", rng=4)
        a = solve(small_instance, **kw)
        b = solve(small_instance, **kw)
        assert a.best_length == b.best_length
        assert np.array_equal(a.best_tour.order, b.best_tour.order)

    def test_simulator_width1_unchanged_by_plumbing(self, small_instance):
        from repro.core import solve

        base = solve(small_instance, budget_vsec_per_node=0.25, n_nodes=2,
                     topology="ring", rng=4)
        explicit = solve(small_instance, budget_vsec_per_node=0.25,
                         n_nodes=2, topology="ring", kick_batch_width=1,
                         kick_batch_backend="inline", rng=4)
        assert base.best_length == explicit.best_length
        assert np.array_equal(base.best_tour.order, explicit.best_tour.order)
