"""Command-line interface.

    python -m repro solve fl300 --nodes 8 --budget 4 --out best.tour
    python -m repro clk my_instance.tsp --budget 20
    python -m repro bound fl300
    python -m repro exact uniform:14:7
    python -m repro info pcb250
    python -m repro testbed
    python -m repro solve fl300 --trace run.trace.jsonl
    python -m repro trace summarize run.trace.jsonl
    python -m repro trace compare before.jsonl after.jsonl
    python -m repro serve --port 7117 --backend sim
    python -m repro submit uniform:500:7 --tenant t1 --stream
    python -m repro status job-0001
    python -m repro result job-0001 --json

INSTANCE arguments resolve, in order, as: a path to a TSPLIB ``.tsp``
file; a testbed registry name (ours or the paper's); or a generator spec
``class:n[:seed]`` with class in {uniform, clustered, drilling,
grid_pcb, country, pla_rows}.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path

from . import __version__
from .tsp import generators, registry, tsplib

__all__ = ["main", "resolve_instance"]

_GENERATORS = {
    "uniform": generators.uniform,
    "clustered": generators.clustered,
    "drilling": generators.drilling,
    "grid_pcb": generators.grid_pcb,
    "country": generators.country,
    "pla_rows": generators.pla_rows,
}


def resolve_instance(spec: str):
    """Resolve an INSTANCE argument (see module docstring)."""
    path = Path(spec)
    if path.suffix.lower() in (".tsp", ".txt") or path.exists():
        return tsplib.load(path)
    try:
        return registry.get_instance(spec)
    except KeyError:
        pass
    parts = spec.split(":")
    if parts[0] in _GENERATORS and len(parts) in (2, 3):
        n = int(parts[1])
        seed = int(parts[2]) if len(parts) == 3 else 0
        return _GENERATORS[parts[0]](n, rng=seed)
    raise SystemExit(
        f"error: cannot resolve instance {spec!r} "
        "(not a file, testbed name, or generator spec 'class:n[:seed]')"
    )


@contextmanager
def _trace_to(path):
    """Run the body under a fresh enabled tracer; export JSONL on exit.

    ``path`` falsy → no-op (the ambient tracer, normally disabled, stays
    in effect), so commands can wrap their solver call unconditionally.
    """
    if not path:
        yield
        return
    from .analysis.runio import save_trace
    from .obs import Tracer, use_tracer

    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        yield
    save_trace(tracer, path)
    # stderr so --json stdout stays machine-parseable under --trace.
    print(f"trace written to {path}", file=sys.stderr)


def _cmd_solve(args) -> int:
    import json

    from .core import solve

    inst = resolve_instance(args.instance)
    target = args.target
    if target is None and args.use_best_known:
        target = registry.best_known(inst.name)
    with _trace_to(args.trace):
        result = solve(
            inst,
            budget_vsec_per_node=args.budget,
            n_nodes=args.nodes,
            kick=args.kick,
            topology=args.topology if args.nodes > 1 else {0: ()},
            c_v=args.cv,
            c_r=args.cr,
            target_length=target,
            backbone_support=args.backbone,
            kick_batch_width=args.batch_width,
            kick_batch_backend=args.batch_backend,
            kernel=args.kernel,
            rng=args.seed,
        )
    if args.json:
        print(json.dumps({
            "instance": inst.name,
            "n": inst.n,
            "best_length": int(result.best_length),
            "best_node": int(result.best_node),
            "best_found_at_vsec": float(result.best_found_at),
            "nodes": {
                str(k): {"clock_vsec": float(result.clocks[k]),
                         "stopped": result.reasons[k]}
                for k in sorted(result.reasons)
            },
            "messages": result.network_stats.messages,
            "broadcasts": result.network_stats.broadcasts,
            "tour": [int(c) for c in result.best_tour.order],
        }, indent=1))
    else:
        print(f"instance {inst.name} (n={inst.n})")
        print(f"best tour: {result.best_length} "
              f"(node {result.best_node} at {result.best_found_at:.2f} vsec)")
        for node_id in sorted(result.reasons):
            print(f"  node {node_id}: {result.clocks[node_id]:.2f} vsec, "
                  f"stopped: {result.reasons[node_id]}")
        print(f"messages: {result.network_stats.messages} "
              f"({result.network_stats.broadcasts} broadcasts)")
    if args.out:
        tsplib.dump_tour(result.best_tour, args.out, name=inst.name)
        if not args.json:
            print(f"tour written to {args.out}")
    if args.save_run:
        from .analysis.runio import save_run

        save_run(result, args.save_run, instance_name=inst.name)
        if not args.json:
            print(f"run saved to {args.save_run}")
    return 0


def _cmd_clk(args) -> int:
    import json

    from .localsearch import LKConfig, chained_lk

    inst = resolve_instance(args.instance)
    lk_config = LKConfig(kernel=args.kernel) if args.kernel else None
    with _trace_to(args.trace):
        result = chained_lk(
            inst, budget_vsec=args.budget, kick=args.kick,
            target_length=args.target, rng=args.seed,
            batch_width=args.batch_width,
            batch_backend=args.batch_backend,
            lk_config=lk_config,
        )
    if args.json:
        print(json.dumps({
            "instance": inst.name,
            "n": inst.n,
            "length": int(result.length),
            "kicks": result.kicks,
            "improvements": result.improvements,
            "work_vsec": float(result.work_vsec),
            "hit_target": result.hit_target,
            "tour": [int(c) for c in result.tour.order],
        }, indent=1))
    else:
        print(f"instance {inst.name} (n={inst.n})")
        print(f"tour: {result.length} after {result.kicks} kicks "
              f"({result.improvements} improvements, "
              f"{result.work_vsec:.2f} vsec)")
    if args.out:
        tsplib.dump_tour(result.tour, args.out, name=inst.name)
        if not args.json:
            print(f"tour written to {args.out}")
    return 0


def _cmd_divide(args) -> int:
    import json

    from .core import solve
    from .divide import DivideConfig

    inst = resolve_instance(args.instance)
    config = DivideConfig(
        region_size=args.region_size,
        boundary_k=args.boundary_k,
        backend=args.backend,
        repair_budget_vsec=args.repair_budget,
        max_workers=args.workers,
    )
    with _trace_to(args.trace):
        result = solve(
            inst,
            budget_vsec_per_node=args.budget,
            n_nodes=args.nodes,
            kick=args.kick,
            kernel=args.kernel,
            rng=args.seed,
            divide=config,
        )
    part = result.partition
    sizes = part.region_sizes
    if args.json:
        print(json.dumps({
            "instance": inst.name,
            "n": inst.n,
            "regions": int(part.n_regions),
            "region_size": {
                "min": int(sizes.min()), "max": int(sizes.max()),
                "target": args.region_size,
            },
            "boundary_edges": int(part.boundary_edges.shape[0]),
            "naive_length": int(result.naive_length),
            "stitched_length": int(result.stitched_length),
            "best_length": int(result.length),
            "repair_gain": int(result.repair_gain),
            "regions_vsec": float(result.regions_vsec),
            "repair_vsec": float(result.repair_vsec),
            "backend": args.backend,
            "tour": [int(c) for c in result.tour.order],
        }, indent=1))
    else:
        print(f"instance {inst.name} (n={inst.n})")
        print(f"partition: {part.n_regions} regions "
              f"(sizes {int(sizes.min())}..{int(sizes.max())}, "
              f"target {args.region_size}), "
              f"{part.boundary_edges.shape[0]} boundary edges")
        print(f"regions solved: {result.regions_vsec:.2f} vsec total "
              f"({args.backend} backend, {args.nodes} node(s)/region)")
        print(f"merge: naive {result.naive_length} -> "
              f"stitched {result.stitched_length} -> "
              f"repaired {result.length} "
              f"(repair gain {result.repair_gain}, "
              f"{result.repair_vsec:.2f} vsec)")
        print(f"best tour: {result.length}")
    if args.out:
        tsplib.dump_tour(result.tour, args.out, name=inst.name)
        if not args.json:
            print(f"tour written to {args.out}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import ServiceServer, SolverService, TenantPolicy

    async def run() -> None:
        policy = TenantPolicy(max_concurrency=args.tenant_concurrency,
                              vsec_budget=args.tenant_budget)
        svc = SolverService(backend=args.backend,
                            max_running=args.max_running,
                            default_policy=policy)
        server = ServiceServer(svc, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {server.host}:{server.port} "
              f"(backend={args.backend}, max_running={args.max_running}); "
              "Ctrl-C to stop", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()
            if args.save_jobs:
                from .analysis.runio import save_jobs

                save_jobs(svc.jobs.values(), args.save_jobs)
                print(f"job records saved to {args.save_jobs}")

    with _trace_to(args.trace):
        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("interrupted; server stopped")
    return 0


def _client(args):
    from .service import ServiceClient

    return ServiceClient(host=args.host, port=args.port,
                         timeout=args.timeout)


def _cmd_submit(args) -> int:
    import asyncio
    import json

    client = _client(args)

    async def run() -> dict:
        params = {}
        if args.topology:
            params["topology"] = args.topology
        if args.kick:
            params["kick"] = args.kick
        job_id = await client.submit(
            {"spec": args.instance},
            tenant=args.tenant,
            priority=args.priority,
            seed=args.seed,
            budget_vsec_per_node=args.budget,
            n_nodes=args.nodes,
            params=params,
        )
        if args.stream:
            async for doc in client.stream(job_id):
                if not args.json:
                    print(f"  {doc['vsec']:.3f} vsec: {doc['length']} "
                          f"(node {doc['node']})")
        if args.wait or args.stream:
            return await client.result(job_id, timeout=args.timeout)
        return await client.status(job_id)

    doc = asyncio.run(run())
    if args.json:
        print(json.dumps(doc, indent=1))
    elif "tour" in doc:
        print(f"job {doc['job_id']} {doc['status']}: "
              f"length {doc['tour']['length']}")
    else:
        print(f"job {doc['job_id']} {doc['status']}")
    return 0


def _cmd_status(args) -> int:
    import asyncio
    import json

    client = _client(args)
    if args.job_id:
        doc = asyncio.run(client.status(args.job_id))
    else:
        doc = asyncio.run(client.stats())
    print(json.dumps(doc, indent=1))
    return 0


def _cmd_result(args) -> int:
    import asyncio
    import json

    client = _client(args)
    doc = asyncio.run(client.result(args.job_id, timeout=args.timeout))
    if args.json:
        print(json.dumps(doc, indent=1))
    else:
        print(f"job {doc['job_id']} {doc['status']}: "
              f"length {doc['tour']['length']} "
              f"({doc['improvements']} improvements, "
              f"{doc['charged_vsec']:.2f} vsec charged)")
    return 0


def _cmd_bound(args) -> int:
    from .bounds import held_karp_bound

    inst = resolve_instance(args.instance)
    res = held_karp_bound(inst, max_iterations=args.iterations)
    print(f"instance {inst.name} (n={inst.n})")
    print(f"Held-Karp lower bound: {res.bound:.1f} "
          f"({res.iterations} ascent iterations)")
    bk = registry.best_known(inst.name)
    if bk is not None:
        print(f"best known: {bk} (gap {100 * (bk / res.bound - 1):.2f}%)")
    return 0


def _cmd_exact(args) -> int:
    from .bounds import branch_and_bound, held_karp_exact

    inst = resolve_instance(args.instance)
    print(f"instance {inst.name} (n={inst.n})")
    if inst.n <= 16:
        length, order = held_karp_exact(inst)
        print(f"optimum (Held-Karp DP): {length}")
    else:
        res = branch_and_bound(inst, max_nodes=args.max_nodes)
        status = "proven optimal" if res.proven_optimal else (
            f"incumbent (search capped at {args.max_nodes} nodes)")
        print(f"{status}: {res.length} "
              f"({res.nodes_explored} B&B nodes)")
    return 0


def _cmd_info(args) -> int:
    from .tsp.stats import instance_stats

    inst = resolve_instance(args.instance)
    print(f"instance {inst.name}")
    print(instance_stats(inst).format())
    bk = registry.best_known(inst.name)
    hk = registry.hk_bound(inst.name)
    if bk is not None:
        print(f"best known        : {bk}")
    if hk is not None:
        print(f"HK bound (cached) : {hk:.1f}")
    return 0


def _cmd_trace(args) -> int:
    from .analysis.runio import load_trace

    if args.trace_command == "summarize":
        from .obs import summarize_trace

        print(summarize_trace(load_trace(args.path)))
    else:
        from .analysis.obs_report import compare_trace_files

        print(compare_trace_files(args.a, args.b))
    return 0


def _cmd_testbed(_args) -> int:
    print(f"{'name':<10} {'paper':<10} {'n':>5}  {'class':<6} "
          f"{'best known':>10}  {'HK bound':>10}")
    for e in registry.testbed():
        bk = registry.best_known(e.name)
        hk = registry.hk_bound(e.name)
        print(f"{e.name:<10} {e.paper_name:<10} {e.n:>5}  "
              f"{e.size_class:<6} "
              f"{bk if bk is not None else '-':>10}  "
              f"{f'{hk:.1f}' if hk is not None else '-':>10}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Chained Lin-Kernighan for the TSP "
                    "(Fischer & Merz, IPDPS 2005 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="distributed CLK (the paper's algorithm)")
    p.add_argument("instance")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--budget", type=float, default=4.0,
                   help="virtual seconds per node")
    p.add_argument("--kick", default="random_walk",
                   choices=["random", "geometric", "close", "random_walk"])
    p.add_argument("--topology", default="hypercube",
                   choices=["hypercube", "ring", "grid", "complete"])
    p.add_argument("--cv", type=int, default=64, help="c_v threshold")
    p.add_argument("--cr", type=int, default=256, help="c_r threshold")
    p.add_argument("--backbone", type=float, default=0.0,
                   help="backbone support fraction (0 disables)")
    p.add_argument("--batch-width", type=int, default=1,
                   help="best-of-N batched kicks per node (1 = serial)")
    p.add_argument("--batch-backend", default="process",
                   choices=("process", "inline"),
                   help="how batched kick chains execute")
    p.add_argument("--kernel", default=None,
                   choices=("scalar", "row", "vector"),
                   help="engine scan-kernel tier (default: row, or "
                        "REPRO_KERNEL); all tiers are bit-identical")
    p.add_argument("--target", type=int, default=None)
    p.add_argument("--use-best-known", action="store_true",
                   help="use the registry best-known as the target")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write .tour file")
    p.add_argument("--save-run", default=None, help="save run JSON")
    p.add_argument("--trace", default=None,
                   help="record an observability trace (JSONL) to this path")
    p.add_argument("--json", action="store_true",
                   help="print the result as JSON (machine-readable)")
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("clk", help="sequential Chained LK (ABCC baseline)")
    p.add_argument("instance")
    p.add_argument("--budget", type=float, default=10.0)
    p.add_argument("--batch-width", type=int, default=1,
                   help="best-of-N batched kicks (1 = serial loop)")
    p.add_argument("--batch-backend", default="process",
                   choices=("process", "inline"),
                   help="how batched kick chains execute")
    p.add_argument("--kick", default="random_walk",
                   choices=["random", "geometric", "close", "random_walk"])
    p.add_argument("--kernel", default=None,
                   choices=("scalar", "row", "vector"),
                   help="engine scan-kernel tier (default: row, or "
                        "REPRO_KERNEL); all tiers are bit-identical")
    p.add_argument("--target", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None)
    p.add_argument("--trace", default=None,
                   help="record an observability trace (JSONL) to this path")
    p.add_argument("--json", action="store_true",
                   help="print the result as JSON (machine-readable)")
    p.set_defaults(func=_cmd_clk)

    p = sub.add_parser(
        "divide",
        help="divide-and-optimize for large instances "
             "(partition / solve regions / repair seams)",
    )
    p.add_argument("instance")
    p.add_argument("--region-size", type=int, default=1200,
                   help="target cities per region (max leaf size)")
    p.add_argument("--boundary-k", type=int, default=8,
                   help="nearest-neighbour depth of the boundary graph")
    p.add_argument("--nodes", type=int, default=1,
                   help="CLK nodes per region (>1 runs DistCLK per region)")
    p.add_argument("--budget", type=float, default=1.0,
                   help="virtual seconds per region node")
    p.add_argument("--backend", default="process",
                   choices=("sim", "process"),
                   help="run regions in-process (sim) or over a spawn "
                        "pool (process); results are bit-identical")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool width (default: cpu count)")
    p.add_argument("--repair-budget", type=float, default=None,
                   help="vsec budget of the boundary-repair pass "
                        "(default: 5%% of the total region budget)")
    p.add_argument("--kick", default="random_walk",
                   choices=["random", "geometric", "close", "random_walk"])
    p.add_argument("--kernel", default=None,
                   choices=("scalar", "row", "vector"),
                   help="engine scan-kernel tier (default: row, or "
                        "REPRO_KERNEL); all tiers are bit-identical")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write .tour file")
    p.add_argument("--trace", default=None,
                   help="record an observability trace (JSONL) to this path")
    p.add_argument("--json", action="store_true",
                   help="print the result as JSON (machine-readable)")
    p.set_defaults(func=_cmd_divide)

    p = sub.add_parser("trace", help="inspect observability traces (JSONL)")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ps = tsub.add_parser(
        "summarize", help="time-in-phase, span tree, and histograms"
    )
    ps.add_argument("path")
    ps.set_defaults(func=_cmd_trace)
    pc = tsub.add_parser(
        "compare", help="diff two traces (phases, spans, counters)"
    )
    pc.add_argument("a")
    pc.add_argument("b")
    pc.set_defaults(func=_cmd_trace)

    def add_client_args(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7117)
        p.add_argument("--timeout", type=float, default=300.0,
                       help="client-side timeout per request (seconds)")

    p = sub.add_parser(
        "serve", help="run the solver as a job service (JSON-lines TCP)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7117,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--backend", default="sim", choices=("sim", "process"),
                   help="job executor: cooperative in-process simulator "
                        "or one supervised worker process per job")
    p.add_argument("--max-running", type=int, default=4,
                   help="global cap on concurrently running jobs")
    p.add_argument("--tenant-concurrency", type=int, default=2,
                   help="default per-tenant concurrent-job limit")
    p.add_argument("--tenant-budget", type=float, default=None,
                   help="default per-tenant virtual-second budget "
                        "(unlimited when omitted)")
    p.add_argument("--save-jobs", default=None,
                   help="write job records (JSON) on shutdown")
    p.add_argument("--trace", default=None,
                   help="record an observability trace (JSONL) to this path")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit a job to a running service")
    p.add_argument("instance")
    add_client_args(p)
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", type=float, default=4.0,
                   help="virtual seconds per node")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--kick", default=None,
                   choices=["random", "geometric", "close", "random_walk"])
    p.add_argument("--topology", default=None,
                   choices=["hypercube", "ring", "grid", "complete"])
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes and print the result")
    p.add_argument("--stream", action="store_true",
                   help="stream incumbents while waiting (implies --wait)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "status", help="job status (or service stats without a job id)")
    p.add_argument("job_id", nargs="?", default=None)
    add_client_args(p)
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("result", help="wait for a job and print its result")
    p.add_argument("job_id")
    add_client_args(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_result)

    p = sub.add_parser("bound", help="Held-Karp lower bound")
    p.add_argument("instance")
    p.add_argument("--iterations", type=int, default=200)
    p.set_defaults(func=_cmd_bound)

    p = sub.add_parser("exact", help="exact solve (DP or branch-and-bound)")
    p.add_argument("instance")
    p.add_argument("--max-nodes", type=int, default=100_000)
    p.set_defaults(func=_cmd_exact)

    p = sub.add_parser("info", help="instance statistics")
    p.add_argument("instance")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("testbed", help="list the paper-analogue testbed")
    p.set_defaults(func=_cmd_testbed)

    return parser


def main(argv=None) -> int:
    """CLI entry point (also exposed as ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
