"""Tests for the discrete-event simulator and the solve() driver."""

import pytest

from repro.bounds import held_karp_exact
from repro.core import solve, replicate
from repro.distributed.network import LatencyModel
from repro.distributed.simulator import Simulator, run_simulation
from repro.tsp import generators


@pytest.fixture(scope="module")
def inst():
    return generators.uniform(50, rng=21)


class TestSimulatorBasics:
    def test_runs_to_budget(self, inst):
        res = solve(inst, budget_vsec_per_node=0.4, n_nodes=4, rng=0)
        assert res.best_tour.is_valid()
        assert res.best_length == res.best_tour.recompute_length()
        assert set(res.reasons) == {0, 1, 2, 3}
        assert all(c >= 0.4 or r != "budget"
                   for c, r in zip(res.clocks.values(), res.reasons.values()))

    def test_deterministic(self, inst):
        a = solve(inst, budget_vsec_per_node=0.3, n_nodes=4, rng=7)
        b = solve(inst, budget_vsec_per_node=0.3, n_nodes=4, rng=7)
        assert a.best_length == b.best_length
        assert a.global_trace == b.global_trace
        assert a.network_stats.broadcasts == b.network_stats.broadcasts

    def test_different_seeds_differ(self, inst):
        a = solve(inst, budget_vsec_per_node=0.3, n_nodes=4, rng=1)
        b = solve(inst, budget_vsec_per_node=0.3, n_nodes=4, rng=2)
        assert (a.best_length != b.best_length) or (a.global_trace != b.global_trace)

    def test_global_trace_monotone(self, inst):
        res = solve(inst, budget_vsec_per_node=0.5, n_nodes=4, rng=3)
        lengths = [l for _, l in res.global_trace]
        times = [t for t, _ in res.global_trace]
        assert lengths == sorted(lengths, reverse=True)
        assert times == sorted(times)
        assert lengths[-1] == res.best_length

    def test_invalid_budget(self, inst):
        with pytest.raises(ValueError, match="positive"):
            run_simulation(inst, 0.0, n_nodes=2)

    def test_bad_topology_ids(self, inst):
        with pytest.raises(ValueError, match="ids"):
            Simulator(inst, n_nodes=2, topology={5: (6,), 6: (5,)})


class TestTermination:
    def test_optimum_stops_whole_network(self):
        tiny = generators.uniform(12, rng=5)
        opt, _ = held_karp_exact(tiny)
        res = solve(
            tiny, budget_vsec_per_node=50.0, n_nodes=4,
            target_length=opt, rng=0,
        )
        assert res.hit_target()
        assert res.best_length == opt
        # Every node stopped well before the huge budget.
        assert all(c < 50.0 for c in res.clocks.values())
        reasons = set(res.reasons.values())
        assert reasons <= {"optimum", "notified", "budget"}
        assert "optimum" in reasons

    def test_optimum_notifications_are_flooded(self):
        tiny = generators.uniform(12, rng=5)
        opt, _ = held_karp_exact(tiny)
        res = solve(tiny, budget_vsec_per_node=50.0, n_nodes=4,
                    target_length=opt, rng=0)
        # Every terminating node floods an OPTIMUM_FOUND to its neighbours.
        assert res.network_stats.notification_messages > 0

    def test_notification_terminates_laggards(self):
        # Force a situation where a node cannot find the target itself:
        # drive the node API directly through a 2-node simulator with a
        # target only reachable via the received optimal tour.
        tiny = generators.uniform(12, rng=5)
        opt, _ = held_karp_exact(tiny)
        # Node 1 gets a crippled LK (k=2 candidates): it will rarely reach
        # the optimum on its own within the budget.
        from repro.localsearch import LKConfig

        res = solve(
            tiny, budget_vsec_per_node=3.0, n_nodes=4,
            target_length=opt,
            lk_config=LKConfig(neighbor_k=3, breadth=(2, 1), max_depth=6),
            rng=3,
        )
        # Whatever each node's path, the network as a whole must stop
        # consistently: anyone who stopped for the target holds it.
        for node_id, reason in res.reasons.items():
            if reason == "optimum":
                log = res.event_logs[node_id]
                assert min(l for _, l in log.improvements()) <= opt


class TestCooperation:
    def test_messages_flow(self, inst):
        res = solve(inst, budget_vsec_per_node=0.6, n_nodes=4, rng=11)
        assert res.network_stats.broadcasts >= 4  # at least the initials
        assert res.network_stats.messages > 0

    def test_received_improvements_happen(self):
        # On a clustered instance with modest budget, some node should
        # adopt a received tour at least once across seeds.
        inst = generators.clustered(60, rng=2)
        from repro.core.events import EventKind

        seen = 0
        for seed in range(3):
            res = solve(inst, budget_vsec_per_node=0.8, n_nodes=4, rng=seed)
            for log in res.event_logs.values():
                seen += len(log.of_kind(EventKind.RECEIVED_IMPROVEMENT))
        assert seen > 0

    def test_single_node_topology(self, inst):
        res = solve(inst, budget_vsec_per_node=0.5, n_nodes=1,
                    topology={0: ()}, rng=4)
        assert res.network_stats.messages == 0
        assert res.best_tour.is_valid()

    def test_high_latency_still_correct(self, inst):
        res = solve(
            inst, budget_vsec_per_node=0.4, n_nodes=4,
            latency=LatencyModel(fixed_vsec=10.0, bytes_per_vsec=1e12),
            rng=5,
        )
        # Latency above the budget: messages can never arrive.
        from repro.core.events import EventKind

        received = sum(
            len(log.of_kind(EventKind.RECEIVED_IMPROVEMENT))
            for log in res.event_logs.values()
        )
        assert received == 0
        assert res.best_tour.is_valid()


class TestReplicate:
    def test_replicate_aggregates(self):
        tiny = generators.uniform(30, rng=9)
        summary = replicate(tiny, budget_vsec_per_node=0.2, n_runs=3,
                            n_nodes=2, rng=1)
        assert summary.n_runs == 3
        assert len(summary.lengths) == 3
        assert summary.best_length <= summary.mean_length
        assert summary.mean_excess(summary.best_length) >= 0.0

    def test_replicate_success_counting(self):
        tiny = generators.uniform(12, rng=5)
        opt, _ = held_karp_exact(tiny)
        summary = replicate(
            tiny, budget_vsec_per_node=20.0, n_runs=3, n_nodes=2,
            target_length=opt, rng=0,
        )
        assert summary.successes == 3
        assert summary.mean_time_to_quality(opt) is not None
