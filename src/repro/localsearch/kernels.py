"""Vectorized candidate-gain kernels: the engine's ``"vector"`` tier.

The scan loops of 2-opt / Or-opt (and the LK depth-1 candidate sweep)
spend nearly all their time evaluating per-candidate gain expressions.
This module evaluates a city's whole candidate window in one NumPy batch
over contiguous padded candidate matrices (``CandidateSet.matrix``) and
vectorized distance gathers (``DistView.gather`` / ``gather_pairs``),
instead of one Python iteration per candidate.

Bit-identical contract
----------------------
The vector tier is an *implementation* of the reference operators, not a
variant: for any tour, candidate provider, and work budget it must

* select the same move sequence (first-improvement order),
* produce the same :class:`~repro.localsearch.engine.OpStats` counters,
* charge the :class:`~repro.utils.work.WorkMeter` identically at every
  exhaustion checkpoint,

so virtual-time accounting and every committed tour length are unchanged
(``tests/test_kernels.py`` proves this property over randomized seeds,
providers, and uneven row widths).  The tie-breaks that make this hold:

* **Window rule** — candidate rows are distance-sorted (ties by city
  index), so the reference early break ``d(u, v) >= bound -> stop``
  delimits a *prefix* of the row.  The kernels recover that prefix with
  ``bisect_left`` on the precomputed candidate-distance row; candidates
  at or beyond the break distance are never evaluated, exactly like the
  reference.
* **First improving index** — within a window the kernels take the
  lowest candidate index whose gain is strictly negative, which is the
  candidate the reference loop would have accepted first.  2-opt scans
  the forward direction before the backward one; Or-opt prefers the
  forward segment orientation at the hit index; LK keeps the reference's
  full tuple sort ``(score, d(u,v), d(v,w), v, w)`` built from the same
  Python ints/floats, so ordering (including ties) is unchanged.
* **Scan accounting** — a scan that stops at the break distance charges
  ``window + 1`` candidate scans (the reference looks at the breaking
  candidate), one that accepts a move at index ``j`` charges ``j + 1``,
  and a full scan charges the row width; meter ticks follow the same
  rule, plus the reference's per-move charges.
* **Scalar prefix / small-window hybrid** — per-scan NumPy dispatch
  costs a few microseconds, and profiling first-improvement 2-opt
  descent shows it is *hit-dominated* in every regime (kicked,
  polished, restarted; uniform, clustered, drilling, PCB): improving
  moves cluster at the head of the distance-sorted row, and wide
  windows occur mostly on bad tours whose hits are shallow anyway.  So
  2-opt runs the reference row loop outright on windows below
  :data:`SMALL_WINDOW` (gated by one precomputed per-city threshold
  distance), scans the first :data:`PREFIX` candidates of wide windows
  scalar, and vectorizes only the miss-heavy tail; Or-opt (full-row
  scans, no distance break) vectorizes rows at least :data:`OR_MIN_WIDTH`
  wide, and the LK sweep windows at least :data:`LK_MIN_WINDOW`.  These
  are pure wall-clock decisions: every branch implements the same
  selection rule, and the parity tests pin all four constants to 0 to
  force every scan through the vector math.

All gain arithmetic is int64 (gathers return int64; candidate-distance
matrices are built int64), so coordinates near INT32_MAX cannot overflow
the vectorized path even though candidate *indices* stay int32.

RPL003 note: this module is inside the reprolint RPL003 scope (operator
hot loops must not bypass ``DistView``) with a documented allowance for
direct distance-matrix *array* indexing — batch gathers over
``view.matrix`` are this tier's whole purpose; scalar
``instance.dist()`` bypasses remain banned here like in every operator.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from ..utils.sanitize import check_tour, sanitize_enabled
from .engine import DontLookQueue
from .or_opt import _do_relocate

__all__ = [
    "SMALL_WINDOW",
    "PREFIX",
    "OR_MIN_WIDTH",
    "LK_MIN_WINDOW",
    "CandidateKernel",
    "two_opt_vector",
    "or_opt_vector",
    "lk_sweep",
]

#: 2-opt scans with windows strictly below this run the reference row
#: loop outright (NumPy dispatch overhead beats the win on tiny windows,
#: and first-improvement hits cluster at the head of the distance-sorted
#: row).  The parity tests set it to 0 to force every scan through the
#: vector math.
SMALL_WINDOW = 32

#: Wide 2-opt scans still check this many leading candidates in the
#: reference row loop before batching the tail: a hit there costs well
#: under one NumPy dispatch.
PREFIX = 16

#: Or-opt vectorizes rows at least this wide (its scans have no distance
#: break, so a miss costs the full row scalar — batching pays off at
#: narrower widths than 2-opt's windowed scans).
OR_MIN_WIDTH = 12

#: The LK depth-1 sweep vectorizes gain windows at least this wide (the
#: sweep always evaluates its whole window — no first-improvement exit —
#: so the threshold is about dispatch overhead only).
LK_MIN_WINDOW = 12

#: Sentinel for padded candidate-distance slots (never inside a window:
#: windows are bounded by each row's valid length).
_PAD_DIST = np.int64(2) ** 62


def _candidate_distances(instance, provider, view):
    """``(cd, cd_lists, valid)`` for one (instance, provider) pair, cached.

    ``cd`` is the ``(n, kmax)`` int64 candidate-distance matrix aligned
    with ``provider.matrix(instance)``; ``cd_lists`` its per-row Python
    lists trimmed to each row's valid length (the ``bisect`` form); and
    ``valid`` the per-row valid counts.  Values are bit-identical to
    what the reference loops read from the row caches / closure, because
    both come from the same rounding pipeline.
    """
    key = ("cand-dist",) + provider.cache_key()
    cached = instance._neighbor_cache.get(key)
    if cached is None:
        cmat, mask = provider.matrix(instance)
        n, kmax = cmat.shape
        if kmax == 0:
            cd = np.zeros((n, 0), dtype=np.int64)
        elif view.matrix is not None:
            cd = view.matrix[np.arange(n)[:, None], cmat].astype(
                np.int64, copy=True
            )
        else:
            cd = np.empty((n, kmax), dtype=np.int64)
            for i in range(n):
                cd[i] = view.gather(i, cmat[i])
        cd[~mask] = _PAD_DIST
        cd.setflags(write=False)
        valid = mask.sum(axis=1).tolist()
        cd_lists = [cd[i, : valid[i]].tolist() for i in range(n)]
        cached = (cd, cd_lists, valid)
        instance._neighbor_cache[key] = cached
    return cached


def _small_window_thresholds(instance, provider, small, cd_lists, valid):
    """Per-city distance threshold for the small-window gate, cached.

    ``d_ab <= thr[i]`` iff city ``i``'s scan window (candidates with
    ``d < d_ab``) has fewer than ``small`` entries — rows shorter than
    ``small`` always pass (threshold +inf), and ``small == 0`` never
    passes (threshold -1).  Plain Python ints so the hot-path compare is
    a single int comparison.
    """
    key = ("cand-thr", small) + provider.cache_key()
    thr = instance._neighbor_cache.get(key)
    if thr is None:
        if small:
            huge = int(_PAD_DIST)
            thr = [
                cd_lists[i][small - 1] if valid[i] >= small else huge
                for i in range(instance.n)
            ]
        else:
            thr = [-1] * instance.n
        instance._neighbor_cache[key] = thr
    return thr


class CandidateKernel:
    """Contiguous candidate arrays bound to one (instance, provider, view).

    Bundles everything a vectorized sweep needs so per-scan code touches
    no caches: the padded int32 candidate matrix, the aligned int64
    candidate-distance matrix (array + bisectable row lists + valid
    counts), the plain row lists for the scalar-prefix hybrid, and the
    distance view for gathers.  When the view carries a dense matrix,
    ``mat_flat`` / ``cmn`` additionally precompute the flattened-matrix
    gather (``mat_flat[cmn[i, j] + col]`` is ``d(cand, col)``): one 1-D
    fancy index instead of a 2-D one, which roughly halves the per-scan
    NumPy dispatch cost.
    """

    __slots__ = (
        "cmat", "cd", "cd_lists", "valid", "rows_lists", "view",
        "mat_flat", "cmn",
    )

    def __init__(self, instance, provider, view):
        self.cmat, _mask = provider.matrix(instance)
        self.cd, self.cd_lists, self.valid = _candidate_distances(
            instance, provider, view
        )
        self.rows_lists = provider.row_lists(instance)
        self.view = view
        mat = view.matrix
        if mat is not None:
            key = ("cand-flat",) + provider.cache_key()
            cached = instance._neighbor_cache.get(key)
            if cached is None:
                cached = self.cmat.astype(np.intp) * instance.n
                cached.setflags(write=False)
                instance._neighbor_cache[key] = cached
            self.mat_flat = mat.reshape(-1)
            self.cmn = cached
        else:
            self.mat_flat = None
            self.cmn = None


def two_opt_vector(tour, provider, view, meter, stats) -> int:
    """Vectorized 2-opt: same contract as ``two_opt``'s reference loops.

    Per popped city and direction, the candidate window (prefix with
    ``d(a, c) < d(a, b)``) is located by bisect, the first ``PREFIX``
    candidates run through the reference row loop, and the rest of the
    window's gain ``d(a,c) + d(b,d) - d(a,b) - d(c,d)`` is evaluated in
    one int64 batch; the first strictly-improving index is applied
    exactly as the reference would.  Candidate tour positions are shared
    between the forward and backward scans of one round (they only
    change when a move lands, which restarts the round anyway).
    """
    inst = tour.instance
    n = tour.n
    kc = CandidateKernel(inst, provider, view)
    cmat, cd_arr = kc.cmat, kc.cd
    cd_lists, valid = kc.cd_lists, kc.valid
    nbr_rows = kc.rows_lists
    rows = view.rows
    mat = view.matrix
    mat_flat, cmn = kc.mat_flat, kc.cmn
    dist = view.dist
    small = SMALL_WINDOW if rows is not None else 0
    prefix = PREFIX if rows is not None else 0
    step_f = 1 - n  # order[cpos + step_f] == successor: cpos + 1 - n is
    # in [1 - n, 0], so numpy's negative indexing supplies the wraparound.

    # Per-city small-window threshold: a scan with ``d_ab <= thr[a]`` has
    # a window strictly below SMALL_WINDOW (or a row shorter than it), so
    # the gate on the hot path is one int compare.  thr = -1 disables the
    # small branch (distances are non-negative).
    thr = _small_window_thresholds(inst, provider, small, cd_lists, valid)

    queue = DontLookQueue(n)
    queue.fill(range(n))
    total = 0
    scanned = 0
    moves = 0
    swaps = 0

    # reverse_segment mutates order/position in place, so the locals stay
    # aliases of the live arrays across moves.
    order, position = tour.order, tour.position
    pos_item, order_item = position.item, order.item
    push = queue.push

    while queue and not meter.exhausted():
        a = queue.pop()
        nbr_a = nbr_rows[a]
        da = rows[a] if rows is not None else None
        thr_a = thr[a]
        nv = -1  # sentinel: wide-path row state bound on first wide scan
        cpos_full = None  # candidate positions; valid until the next move
        improved_here = True
        while improved_here and not meter.exhausted():
            improved_here = False
            for b, forward in (
                (tour.next(a), True), (tour.prev(a), False)
            ):
                d_ab = da[b] if da is not None else dist(a, b)
                if d_ab <= thr_a:
                    # Window below SMALL_WINDOW (one list compare proves
                    # it — no bisect): run the reference row loop
                    # outright; its distance break recovers the window.
                    db = rows[b]
                    cnt = 0
                    for c in nbr_a:
                        cnt += 1
                        d_ac = da[c]
                        if d_ac >= d_ab:
                            break
                        if c == b:
                            continue
                        if forward:
                            p = pos_item(c) + 1
                            d_city = order_item(p if p < n else 0)
                        else:
                            d_city = order_item(pos_item(c) - 1)
                        if d_city == a:
                            continue
                        delta = (
                            d_ac + db[d_city] - d_ab - rows[c][d_city]
                        )
                        if delta < 0:
                            if forward:
                                moved = tour.reverse_segment(
                                    position[b], position[c]
                                )
                            else:
                                moved = tour.reverse_segment(
                                    position[a], position[d_city]
                                )
                            meter.tick(moved if moved else 1)
                            swaps += moved
                            moves += 1
                            tour.length += delta
                            total -= delta
                            for city in (a, b, c, d_city):
                                push(int(city))
                            improved_here = True
                            cpos_full = None
                            break
                    meter.tick(cnt)
                    scanned += cnt
                    if improved_here:
                        break
                    continue
                # Wide window: locate it exactly (when ``small`` gates,
                # it has at least ``small`` entries, so bisect starts
                # there).
                if nv < 0:
                    cd_a = cd_lists[a]
                    nv = valid[a]
                    cm_row = cmat[a]
                    cda_row = cd_arr[a]
                    cmn_row = cmn[a] if cmn is not None else None
                win = bisect_left(cd_a, d_ab, small)
                if win == 0:
                    # The reference looks at (and charges) the breaking
                    # candidate; nothing to evaluate.
                    cnt = 1 if nv else 0
                    meter.tick(cnt)
                    scanned += cnt
                    continue
                cnt = 0
                pref = win if win < small else prefix
                if pref > win:
                    pref = win
                if pref:
                    # Reference row loop over the window head (c == b
                    # cannot occur inside the window: d(a, b) bounds it).
                    db = rows[b]
                    for idx in range(pref):
                        c = nbr_a[idx]
                        if forward:
                            p = pos_item(c) + 1
                            d_city = order_item(p if p < n else 0)
                        else:
                            d_city = order_item(pos_item(c) - 1)
                        if d_city == a:
                            continue
                        delta = (
                            da[c] + db[d_city] - d_ab - rows[c][d_city]
                        )
                        if delta < 0:
                            if forward:
                                moved = tour.reverse_segment(
                                    position[b], position[c]
                                )
                            else:
                                moved = tour.reverse_segment(
                                    position[a], position[d_city]
                                )
                            meter.tick(moved if moved else 1)
                            swaps += moved
                            moves += 1
                            tour.length += delta
                            total -= delta
                            for city in (a, b, c, d_city):
                                push(int(city))
                            improved_here = True
                            cpos_full = None
                            cnt = idx + 1
                            break
                if not improved_here and win > pref:
                    if cpos_full is None:
                        cpos_full = position[cm_row]
                    cpos = cpos_full[pref:win]
                    if forward:
                        d_city = order[cpos + step_f]
                    else:
                        d_city = order[cpos - 1]
                    if mat is not None:
                        part = cda_row[pref:win] + mat[b][d_city]
                        part -= mat_flat[cmn_row[pref:win] + d_city]
                    else:
                        part = cda_row[pref:win] + view.gather(b, d_city)
                        part -= view.gather_pairs(
                            cm_row[pref:win], d_city
                        )
                    # A d_city == a entry has part exactly d_ab on a
                    # symmetric instance, so the strict < cannot pick it
                    # — no identity mask needed.
                    if part.min() < d_ab:
                        jt = int(np.nonzero(part < d_ab)[0][0])
                        j = pref + jt
                        c = int(cm_row[j])
                        d_j = int(d_city[jt])
                        delta = int(part[jt]) - d_ab
                        if forward:
                            moved = tour.reverse_segment(
                                position[b], position[c]
                            )
                        else:
                            moved = tour.reverse_segment(
                                position[a], position[d_j]
                            )
                        meter.tick(moved if moved else 1)
                        swaps += moved
                        moves += 1
                        tour.length += delta
                        total -= delta
                        for city in (a, b, c, d_j):
                            push(int(city))
                        improved_here = True
                        cpos_full = None
                        cnt = j + 1
                if not improved_here:
                    cnt = win + 1 if win < nv else nv
                meter.tick(cnt)
                scanned += cnt
                if improved_here:
                    break
    stats.calls += 1
    stats.candidate_scans += scanned
    stats.moves += moves
    stats.segment_swaps += swaps
    stats.queue_wakeups += queue.wakeups
    stats.gain += total
    if sanitize_enabled():
        check_tour(tour, "two_opt")
    return total


def or_opt_vector(tour, provider, view, meter, stats, max_seg: int = 3) -> int:
    """Vectorized Or-opt: same contract as ``or_opt``'s reference loops.

    Or-opt scans full candidate rows (no distance break), so the batch
    covers the whole valid row: both orientations' relocation gains are
    evaluated at once, the first index improving in either orientation
    wins, and the forward orientation is preferred at that index exactly
    like the reference.  The candidate positions / successors / base
    gathers and the exclusion mask are computed once per popped city and
    shared by all segment lengths (the tour only changes when a move
    lands, which ends the pop); the mask is extended incrementally as
    the segment grows.
    """
    inst = tour.instance
    n = tour.n
    if max_seg >= n - 2:
        raise ValueError("segment length too large for instance size")
    kc = CandidateKernel(inst, provider, view)
    cmat, cd_arr = kc.cmat, kc.cd
    valid = kc.valid
    nbr_rows = kc.rows_lists
    rows = view.rows
    mat = view.matrix
    mat_flat, cmn = kc.mat_flat, kc.cmn
    dist = view.dist
    min_w = OR_MIN_WIDTH if rows is not None else 0
    step_f = 1 - n  # successor via negative indexing, as in two_opt

    queue = DontLookQueue(n)
    queue.fill(range(n))
    push = queue.push
    total = 0
    scanned = 0
    moves = 0
    swaps = 0

    while queue and not meter.exhausted():
        s0 = queue.pop()
        # A successful move always breaks back to the pop loop, so the
        # tour (and these locals) are stable across segment lengths.
        order, position = tour.order, tour.position
        pos_item, order_item = position.item, order.item
        p0 = pos_item(s0)
        nv = valid[s0]
        before = order_item(p0 - 1 if p0 else n - 1)
        seg = [s0]
        moved = False
        use_vec = nv >= min_w and nv > 0
        if use_vec:
            # Per-pop cache: everything that depends only on s0 and the
            # (stable-within-pop) tour.
            carr = cmat[s0, :nv]
            cpos = position[carr]
            cn = order[cpos + step_f]
            if mat is not None:
                d_c_cn = mat_flat[cmn[s0, :nv] + cn]
                d_cn_s0 = mat[s0][cn]
            else:
                d_c_cn = view.gather_pairs(carr, cn)
                d_cn_s0 = view.gather(s0, cn)
            d_c_s0 = cd_arr[s0, :nv]
            # Exclusion mask (candidate rows never contain s0 itself):
            # the reference skips c == before, c in seg, cn in seg.
            ok = carr != before
            ok &= cn != s0
        for seg_len in range(1, max_seg + 1):
            if seg_len > 1:
                new_s = order_item((p0 + seg_len - 1) % n)
                seg.append(new_s)
                if use_vec:
                    ok &= carr != new_s
                    ok &= cn != new_s
            last = seg[-1]
            after = order_item((p0 + seg_len) % n)
            if before in seg or after in seg:
                continue
            if rows is not None:
                rb = rows[before]
                removed = rb[s0] + rows[last][after] - rb[after]
            else:
                removed = (
                    dist(before, s0) + dist(last, after)
                    - dist(before, after)
                )
            cnt = 0
            if not use_vec:
                # Reference row loop (full row, no distance break).
                row_s0 = nbr_rows[s0]
                for c in row_s0:
                    cnt += 1
                    if c in seg or c == before:
                        continue
                    p = pos_item(c) + 1
                    cnext = order_item(p if p < n else 0)
                    if cnext in seg:
                        continue
                    dc = rows[c]
                    d_cn = rows[cnext]
                    base = dc[cnext] + removed
                    delta = dc[s0] + d_cn[last] - base
                    if delta >= 0:
                        delta = dc[last] + d_cn[s0] - base
                        if delta >= 0:
                            continue
                        seg.reverse()
                    _do_relocate(tour, seg, c)
                    meter.tick(n // 4 + 1)
                    swaps += len(seg)
                    moves += 1
                    tour.length += delta
                    total -= delta
                    for city in (before, after, c, cnext, *seg):
                        push(int(city))
                    moved = True
                    break
            else:
                if seg_len == 1:
                    # A one-city segment reads the same both ways; the
                    # reference tries forward first and never reverses.
                    delta_f = d_c_s0 + d_cn_s0
                    delta_f -= d_c_cn
                    delta_f -= removed
                    delta_r = None
                    gate = delta_f.min() < 0
                else:
                    if mat is not None:
                        mat_last = mat[last]
                        d_cn_last = mat_last[cn]
                        d_c_last = mat_last[carr]
                    else:
                        d_cn_last = view.gather(last, cn)
                        d_c_last = view.gather(last, carr)
                    delta_f = d_c_s0 + d_cn_last
                    delta_f -= d_c_cn
                    delta_f -= removed
                    delta_r = d_c_last + d_cn_s0
                    delta_r -= d_c_cn
                    delta_r -= removed
                    gate = delta_f.min() < 0 or delta_r.min() < 0
                hits = None
                if gate:
                    # Unmasked entries can go negative (c or cn inside
                    # the segment); apply the exclusion mask only on
                    # this rare branch.
                    if delta_r is None:
                        imp = ok & (delta_f < 0)
                    else:
                        imp = ok & ((delta_f < 0) | (delta_r < 0))
                    hits = np.nonzero(imp)[0]
                if hits is not None and hits.size:
                    j = int(hits[0])
                    c = int(carr[j])
                    cnj = int(cn[j])
                    if delta_f[j] < 0:
                        delta = int(delta_f[j])
                    else:
                        delta = int(delta_r[j])
                        seg.reverse()
                    _do_relocate(tour, seg, c)
                    meter.tick(n // 4 + 1)
                    swaps += len(seg)
                    moves += 1
                    tour.length += delta
                    total -= delta
                    for city in (before, after, c, cnj, *seg):
                        push(int(city))
                    moved = True
                    cnt = j + 1
                else:
                    cnt = nv
            meter.tick(cnt)
            scanned += cnt
            if moved:
                break
    stats.calls += 1
    stats.candidate_scans += scanned
    stats.moves += moves
    stats.segment_swaps += swaps
    stats.queue_wakeups += queue.wakeups
    stats.gain += total
    if sanitize_enabled():
        check_tour(tour, "or_opt")
    return total


def lk_sweep(kc, tour, t1, u, g_open, removed, added, breadth, fixed=None):
    """Vectorized LK depth-1 candidate sweep; returns ``(out, scanned)``.

    Batch-computes the candidate window's tour neighbours ``w`` and
    ``d(v, w)`` gathers, then applies the reference's edge-validity
    filters scalar-side (set membership does not vectorize) and builds
    the exact reference tuples ``(g_open - d(u,v) + d(v,w), d(u,v),
    d(v,w), v, w)`` from Python ints, so the best-first sort — ties
    included — is unchanged.  The caller owns the meter/stats charges
    (``scanned`` follows the window rule).
    """
    cd_u = kc.cd_lists[u]
    nv = len(cd_u)
    win = bisect_left(cd_u, g_open)
    scanned = win + 1 if win < nv else nv
    if win == 0:
        return [], scanned
    forward = tour.next(t1) == u
    order = tour.order
    position = tour.position
    n = tour.n
    out = []
    if win < LK_MIN_WINDOW:
        # Reference scan over the window (duv < g_open throughout it).
        view = kc.view
        rows = view.rows
        row_u = kc.rows_lists[u]
        pos_item, order_item = position.item, order.item
        for idx in range(win):
            v = row_u[idx]
            if v == t1 or v == u:
                continue
            if (u, v) in removed:
                continue
            if forward:
                w = order_item(pos_item(v) - 1)
            else:
                p = pos_item(v) + 1
                w = order_item(p if p < n else 0)
            if w == t1 or w == u:
                continue
            if (v, w) in added or (v, w) in removed:
                continue
            if fixed is not None and (v, w) in fixed:
                continue
            duv = cd_u[idx]
            dvw = rows[v][w] if rows is not None else view.dist(v, w)
            out.append((g_open - duv + dvw, duv, dvw, v, w))
    else:
        carr = kc.cmat[u, :win]
        cpos = position[carr]
        if forward:
            w_arr = order[cpos - 1]
        else:
            w_arr = order[cpos + (1 - n)]
        if kc.mat_flat is not None:
            dvw_arr = kc.mat_flat[kc.cmn[u, :win] + w_arr]
        else:
            dvw_arr = kc.view.gather_pairs(carr, w_arr)
        vs = carr.tolist()
        ws = w_arr.tolist()
        dvws = dvw_arr.tolist()
        for idx in range(win):
            v = vs[idx]
            if v == t1 or v == u:
                continue
            if (u, v) in removed:
                continue
            w = ws[idx]
            if w == t1 or w == u:
                continue
            if (v, w) in added or (v, w) in removed:
                continue
            if fixed is not None and (v, w) in fixed:
                continue
            duv = cd_u[idx]
            out.append((g_open - duv + dvws[idx], duv, dvws[idx], v, w))
    out.sort(reverse=True)
    return out[:breadth], scanned
