"""Job model: specs, tenant policies, lifecycle records.

A :class:`JobSpec` is what a tenant submits (instance + solve
parameters + seed); a :class:`JobRecord` is the service's mutable view
of one job moving through ``QUEUED -> RUNNING -> {DONE, FAILED,
CANCELLED}``.  Records carry the incumbent stream (every network-wide
tour improvement, timestamped in virtual seconds) and, once terminal,
either a :class:`~repro.distributed.simulator.SimulationResult` or an
error string — never neither, so a job can always answer "what
happened".  :meth:`JobRecord.to_json` is the persistence form consumed
by :func:`repro.analysis.runio.save_jobs`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["JobStatus", "JobSpec", "TenantPolicy", "JobRecord"]


class JobStatus(enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED,
                        JobStatus.CANCELLED)


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission policy.

    ``max_concurrency`` bounds jobs running at once; ``vsec_budget`` is
    a cumulative virtual-CPU allowance across all of the tenant's jobs
    (None = unlimited) — exhausting it mid-job fails the job (see
    docs/SERVICE.md, "Tenant budgets").  ``priority`` biases the queue:
    it is added to each job's own priority, lower runs first.
    """

    max_concurrency: int = 2
    vsec_budget: Optional[float] = None
    priority: int = 0


@dataclass(frozen=True)
class JobSpec:
    """One solve request.

    ``params`` carries any extra :func:`repro.core.solve` keyword
    arguments (kick, topology, c_v, ...); ``seed`` becomes the run's
    ``rng``, which is the whole determinism contract — a job with seed
    ``S`` must return the tour ``solve(..., rng=S)`` returns.
    """

    instance_name: str
    tenant: str = "default"
    priority: int = 0
    seed: int = 0
    budget_vsec_per_node: float = 1.0
    n_nodes: int = 8
    params: tuple = ()

    @property
    def kwargs(self) -> dict:
        """``params`` as the solve-kwargs dict it encodes."""
        return dict(self.params)

    @property
    def declared_cost_vsec(self) -> float:
        """Nominal total virtual CPU of the job (budget × nodes)."""
        return self.budget_vsec_per_node * self.n_nodes


@dataclass
class JobRecord:
    """Mutable lifecycle record of one submitted job."""

    job_id: str
    spec: JobSpec
    digest: str
    status: JobStatus = JobStatus.QUEUED
    #: Monotonic submission counter (FIFO tiebreak inside a priority).
    seq: int = 0
    error: Optional[str] = None
    #: (vsec, length, node_id) per network-wide improvement.
    incumbents: list = field(default_factory=list)
    #: Populated when status is DONE (and on FAILED runs that produced a
    #: partial result, e.g. tenant-budget exhaustion).
    result: object = None
    #: Virtual CPU charged to the tenant for this job so far.
    charged_vsec: float = 0.0
    #: Wall-clock job latency (submit -> terminal), seconds.
    latency_s: Optional[float] = None
    #: Content-store hit at submit time (duplicate instance data).
    store_hit: bool = False
    #: Set by cancel(); the executor acts on it at the next slice.
    cancel_requested: bool = False

    @property
    def best_length(self) -> Optional[int]:
        if self.incumbents:
            return int(self.incumbents[-1][1])
        return None

    def snapshot(self) -> dict:
        """JSON-safe status view (no result payload)."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "instance": self.spec.instance_name,
            "digest": self.digest,
            "status": self.status.value,
            "priority": self.spec.priority,
            "seed": self.spec.seed,
            "budget_vsec_per_node": self.spec.budget_vsec_per_node,
            "n_nodes": self.spec.n_nodes,
            "best_length": self.best_length,
            "improvements": len(self.incumbents),
            "charged_vsec": round(self.charged_vsec, 6),
            "latency_s": self.latency_s,
            "store_hit": self.store_hit,
            "error": self.error,
        }

    def to_json(self) -> dict:
        """Persistence form: snapshot + incumbents + final tour."""
        doc = self.snapshot()
        doc["incumbents"] = [
            [float(v), int(l), int(n)] for v, l, n in self.incumbents
        ]
        doc["params"] = self.spec.kwargs
        if self.result is not None:
            doc["tour"] = {
                "order": [int(c) for c in self.result.best_tour.order],
                "length": int(self.result.best_tour.length),
            }
        return doc
