"""Nearest-neighbour candidate lists.

Local-search operators only consider moves among each city's ``k`` nearest
neighbours (standard LK practice; Concorde uses quadrant neighbours).  For
geometric instances the lists come from a KD-tree; otherwise from the
distance matrix.

The returned arrays are ``(n, k)`` int32; row ``i`` holds the neighbours of
city ``i`` sorted by increasing *TSPLIB* distance (which may order ties
differently than raw Euclidean distance; ties are broken by city index so
results are deterministic).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["knn_lists", "quadrant_lists"]


def _sort_by_instance_distance(instance, i: int, cand: np.ndarray) -> np.ndarray:
    d = instance.dist_many(i, cand)
    # lexsort: primary key distance, secondary key city index (determinism)
    order = np.lexsort((cand, d))
    return cand[order]


def knn_lists(instance, k: int) -> np.ndarray:
    """``(n, k)`` nearest neighbours per city under the instance metric."""
    n = instance.n
    k = min(k, n - 1)
    if k <= 0:
        raise ValueError("k must be positive")
    out = np.empty((n, k), dtype=np.int32)
    if instance.is_geometric:
        tree = cKDTree(instance.coords)
        # Query a few extra candidates: TSPLIB rounding can reorder
        # near-ties relative to raw Euclidean distance.
        extra = min(n, k + 1 + max(4, k // 2))
        _, idx = tree.query(instance.coords, k=extra)
        idx = np.atleast_2d(idx)
        for i in range(n):
            cand = idx[i][idx[i] != i][: extra - 1]
            out[i] = _sort_by_instance_distance(instance, i, cand)[:k]
    else:
        m = instance.distance_matrix()
        for i in range(n):
            d = m[i].astype(np.int64, copy=True)
            d[i] = np.iinfo(np.int64).max
            cand = np.lexsort((np.arange(n), d))[:k]
            out[i] = cand
    return out


def quadrant_lists(instance, per_quadrant: int = 3) -> np.ndarray:
    """Concorde-style quadrant neighbours.

    For each city, take up to ``per_quadrant`` nearest cities in each of the
    four coordinate quadrants around it, then pad with ordinary nearest
    neighbours up to ``4 * per_quadrant`` entries.  Quadrant neighbours give
    LK kicks and candidate moves better directional coverage on clustered
    instances than plain k-NN.
    """
    if not instance.is_geometric:
        # Fall back to plain k-NN for non-planar metrics.
        return knn_lists(instance, 4 * per_quadrant)
    n = instance.n
    total = min(4 * per_quadrant, n - 1)
    coords = instance.coords
    tree = cKDTree(coords)
    # Enough candidates that each quadrant usually fills up.
    pool_size = min(n, max(4 * per_quadrant * 4, 24) + 1)
    _, idx = tree.query(coords, k=pool_size)
    idx = np.atleast_2d(idx)
    out = np.empty((n, total), dtype=np.int32)
    for i in range(n):
        cand = idx[i][idx[i] != i]
        dx = coords[cand, 0] - coords[i, 0]
        dy = coords[cand, 1] - coords[i, 1]
        quad = (dx < 0).astype(np.int8) * 2 + (dy < 0).astype(np.int8)
        chosen: list[int] = []
        seen = set()
        for q in range(4):
            members = cand[quad == q][:per_quadrant]
            for c in members:
                if c not in seen:
                    seen.add(int(c))
                    chosen.append(int(c))
        # Pad from the global nearest list.
        for c in cand:
            if len(chosen) >= total:
                break
            if int(c) not in seen:
                seen.add(int(c))
                chosen.append(int(c))
        row = np.array(chosen[:total], dtype=np.int32)
        if len(row) < total:  # pragma: no cover - tiny instances only
            pad = np.setdiff1d(np.arange(n, dtype=np.int32), np.append(row, i))
            row = np.append(row, pad[: total - len(row)]).astype(np.int32)
        # Sort the complete row (padding included): _candidates' early
        # break relies on every row being distance-sorted end to end.
        out[i] = _sort_by_instance_distance(instance, i, row)
    return out
