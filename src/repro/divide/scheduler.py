"""Region scheduler: one resumable/cancellable solve session per region.

Each region of a :class:`~repro.divide.partition.Partition` is solved as
its own :class:`~repro.core.session.SolveSession` — the same object the
service layer drives — so a region run is steppable, cancellable, and
bit-identical to submitting the sub-instance as a standalone job with
the same seed.  Two backends advance the sessions:

* ``"sim"`` steps every region cooperatively in this process, in region
  order, slicing each session so :meth:`RegionScheduler.cancel` takes
  effect at a slice boundary (the current region drains to a partial
  tour, exactly like a cancelled service job).
* ``"process"`` fans regions out over a spawn-context process pool (the
  :class:`~repro.localsearch.batch.BatchKickRunner` idiom): workers
  rebuild the parent instance from its payload once per process, then
  solve one region per task.  Falls back to in-process execution inside
  daemonic workers or when the pool breaks — the fallback is
  bit-identical, only wall clock changes.

Per-region seeds are drawn from the scheduler's RNG with the
:func:`~repro.utils.rng.spawn_rngs` idiom (one ``int64`` draw per
region) *before* any backend work starts, so sim and process runs — and
any completion order inside the pool — produce identical tours.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.session import SolveSession
from ..obs import get_tracer
from ..utils.rng import ensure_rng
from .partition import Partition, Region

__all__ = ["DivideCancelled", "RegionResult", "RegionScheduler"]

#: Scheduler steps per cooperative slice in the sim backend — the
#: cancellation latency, in units of one EA iteration per region node.
DEFAULT_SLICE_STEPS = 16

BACKENDS = ("sim", "process")


class DivideCancelled(Exception):
    """Scheduler stopped early; ``partial`` holds finished regions."""

    def __init__(self, partial=None):
        super().__init__("divide run cancelled")
        self.partial = list(partial or [])


@dataclass(frozen=True, slots=True)
class RegionResult:
    """Outcome of one region's solve, already mapped to global ids."""

    region_id: int
    #: Tour over the region's cities in *global* ids (closed cycle).
    order: np.ndarray
    length: int
    work_vsec: float
    #: Stop reason of the region's best node (``"budget"``, ``"target"``,
    #: ``"cancelled"``...).
    reason: str


def _solve_region(parent, region: Region, seed: int, budget: float,
                  n_nodes: int, session_kwargs: dict,
                  cancelled: Optional[Callable[[], bool]] = None,
                  slice_steps: int = DEFAULT_SLICE_STEPS) -> RegionResult:
    """Solve one region to completion (or cancellation) and map back.

    Shared verbatim by every backend — parent process, pool worker and
    inline fallback — which is what makes them bit-identical.
    """
    sub = region.build_instance(parent)
    session = SolveSession(
        sub,
        budget,
        n_nodes=n_nodes,
        topology="hypercube" if n_nodes > 1 else {0: ()},
        rng=seed,
        **session_kwargs,
    )
    if cancelled is None:
        session.run_steps(None)
    else:
        while not session.run_steps(slice_steps):
            if cancelled():
                session.cancel()
    result = session.result()
    order = region.cities[np.asarray(result.best_tour.order, dtype=np.intp)]
    return RegionResult(
        region_id=region.region_id,
        order=order,
        length=int(result.best_length),
        work_vsec=float(sum(result.clocks.values())),
        reason=str(result.reasons[result.best_node]),
    )


# -- process-pool plumbing ---------------------------------------------------

#: Parent instance rebuilt once per worker process by :func:`_init_worker`
#: (spawn context: no state is inherited, each worker builds fresh caches).
_WORKER_PARENT = None


def _init_worker(payload: dict) -> None:
    global _WORKER_PARENT
    from ..tsp.instance import TSPInstance

    _WORKER_PARENT = TSPInstance.from_payload(payload)


def _region_task(spec: tuple) -> tuple:
    """Pool task: solve one region against the worker's parent instance."""
    region, seed, budget, n_nodes, session_kwargs = spec
    result = _solve_region(
        _WORKER_PARENT, region, seed, budget, n_nodes, session_kwargs
    )
    return (
        result.region_id,
        np.asarray(result.order, dtype=np.int64),
        result.length,
        result.work_vsec,
        result.reason,
    )


class RegionScheduler:
    """Drive every region of a partition to a :class:`RegionResult`.

    ``session_kwargs`` are forwarded to each region's
    :class:`~repro.core.session.SolveSession` (``kick``, ``lk_config``,
    ``kernel``, ``c_v``, ...); they must be picklable for the process
    backend.  ``progress`` (on :meth:`run`) is called after each region
    completes as ``progress(result, done_count, total)``; a truthy
    return requests cancellation, mirroring the simulator's hook.
    """

    def __init__(
        self,
        partition: Partition,
        *,
        budget_vsec_per_node: float,
        n_nodes: int = 1,
        backend: str = "sim",
        max_workers: Optional[int] = None,
        slice_steps: int = DEFAULT_SLICE_STEPS,
        rng=None,
        **session_kwargs,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; use {BACKENDS}")
        if budget_vsec_per_node <= 0:
            raise ValueError("budget must be positive")
        self.partition = partition
        self.budget_vsec_per_node = float(budget_vsec_per_node)
        self.n_nodes = int(n_nodes)
        self.backend = backend
        self.max_workers = max_workers
        self.slice_steps = int(slice_steps)
        self.session_kwargs = dict(session_kwargs)
        parent = ensure_rng(rng)
        # spawn_rngs idiom: one int64 draw per region, fixed up front so
        # seeds do not depend on backend or completion order.
        self.region_seeds = [
            int(s)
            for s in parent.integers(
                0, 2**63 - 1, size=partition.n_regions, dtype=np.int64
            )
        ]
        self._cancelled = False
        #: Pool fell back to inline execution (diagnostics/tests).
        self.used_fallback = False

    def cancel(self) -> None:
        """Request cooperative termination; the in-flight region drains
        to a partial tour and :meth:`run` raises :class:`DivideCancelled`."""
        self._cancelled = True

    # -- backends ------------------------------------------------------------

    def _pool_allowed(self) -> bool:
        # Daemonic processes (the mp backend's workers) may not fork
        # grandchildren; fall back to inline execution there.
        return not mp.current_process().daemon

    def run(self, progress=None) -> list:
        """Solve every region; returns results in region order."""
        if self.backend == "process" and self._pool_allowed():
            return self._run_process(progress)
        return self._run_sim(progress)

    def _finish(self, results: dict, result: RegionResult, progress,
                done: int) -> None:
        results[result.region_id] = result
        if progress is not None and progress(
            result, done, self.partition.n_regions
        ):
            self._cancelled = True

    def _run_sim(self, progress=None) -> list:
        if self.backend == "process":
            self.used_fallback = True
        tracer = get_tracer()
        parent = self.partition.instance
        results: dict[int, RegionResult] = {}
        for region in self.partition.regions:
            if self._cancelled:
                raise DivideCancelled(
                    [results[k] for k in sorted(results)]
                )
            session_vsec = {"v": 0.0}

            def observe(res=None, box=session_vsec):
                return box["v"]

            with tracer.span(
                "divide.region", vt=observe,
                region=region.region_id, n=region.size,
                backend="sim",
            ):
                result = _solve_region(
                    parent, region, self.region_seeds[region.region_id],
                    self.budget_vsec_per_node, self.n_nodes,
                    self.session_kwargs,
                    cancelled=lambda: self._cancelled,
                    slice_steps=self.slice_steps,
                )
                session_vsec["v"] = result.work_vsec
            self._finish(results, result, progress, len(results) + 1)
            if self._cancelled:
                raise DivideCancelled([results[k] for k in sorted(results)])
        return [results[k] for k in sorted(results)]

    def _run_process(self, progress=None) -> list:
        tracer = get_tracer()
        payload = self.partition.instance.to_payload()
        specs = [
            (
                region,
                self.region_seeds[region.region_id],
                self.budget_vsec_per_node,
                self.n_nodes,
                self.session_kwargs,
            )
            for region in self.partition.regions
        ]
        results: dict[int, RegionResult] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=mp.get_context("spawn"),
                initializer=_init_worker,
                initargs=(payload,),
            ) as pool:
                futures = {
                    pool.submit(_region_task, spec): spec[0].region_id
                    for spec in specs
                }
                for future in futures:
                    rid, order, length, vsec, reason = future.result()
                    result = RegionResult(
                        region_id=rid, order=order, length=length,
                        work_vsec=vsec, reason=reason,
                    )
                    # Post-hoc span: the worker ran under its own clock,
                    # so only the virtual duration is known here (wall
                    # belongs to the pool, not the region).
                    tracer.record_span(
                        "divide.region", 0.0, result.work_vsec,
                        region=rid, n=self.partition.regions[rid].size,
                        backend="process",
                    )
                    self._finish(results, result, progress, len(results) + 1)
                    if self._cancelled:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise DivideCancelled(
                            [results[k] for k in sorted(results)]
                        )
        except (BrokenProcessPool, OSError):
            # Pool died (resource limits, killed worker): redo inline.
            # Same seeds, same _solve_region — bit-identical results.
            self.used_fallback = True
            results.clear()
            return self._run_sim(progress)
        return [results[k] for k in sorted(results)]
