"""Testbed registry: the paper's instance set, scaled for a Python engine.

The paper evaluates on 14 instances from 1 000 to 85 900 cities.  A pure
Python LK is roughly two orders of magnitude slower than Concorde's C
``linkern``, so the registry defines a structurally matched testbed at
reduced size (see :mod:`repro.tsp.generators` for the class mapping) with
fixed seeds, making every experiment deterministic and laptop-runnable.

Best-known tour lengths for the testbed are computed once by long reference
runs (``scripts/compute_best_known.py``) and cached in
``src/repro/tsp/data/best_known.json`` together with Held-Karp lower
bounds; :func:`best_known` and :func:`hk_bound` read that cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from importlib import resources
from pathlib import Path
from typing import Callable, Optional

from . import generators as gen
from .instance import TSPInstance

__all__ = [
    "TestbedEntry",
    "TESTBED",
    "testbed",
    "get_instance",
    "best_known",
    "hk_bound",
    "data_path",
]


@dataclass(frozen=True)
class TestbedEntry:
    """One testbed instance: generator + seed + provenance."""

    name: str
    paper_name: str
    generator: Callable[..., TSPInstance]
    n: int
    seed: int
    kwargs: tuple = ()
    #: 'small' instances get the small-instance budgets in the paper's
    #: protocol (10^4 s for CLK); 'large' get 10x that.
    size_class: str = "small"

    def make(self) -> TSPInstance:
        inst = self.generator(self.n, rng=self.seed, name=self.name,
                              **dict(self.kwargs))
        inst.comment += f" [paper analogue: {self.paper_name}, seed={self.seed}]"
        return inst


#: The testbed.  Order follows Table 4 of the paper.
TESTBED: tuple[TestbedEntry, ...] = (
    TestbedEntry("C100", "C1k.1", gen.clustered, 100, 20050100),
    TestbedEntry("E100", "E1k.1", gen.uniform, 100, 20050101),
    TestbedEntry("fl150", "fl1577", gen.drilling, 150, 20050102),
    TestbedEntry("pr200", "pr2392", gen.grid_pcb, 200, 20050103),
    TestbedEntry("pcb250", "pcb3038", gen.grid_pcb, 250, 20050104,
                 (("pitch", 40.0),)),
    TestbedEntry("fl300", "fl3795", gen.drilling, 300, 20050105,
                 (("n_blocks", 12),)),
    TestbedEntry("fnl350", "fnl4461", gen.country, 350, 20050106),
    TestbedEntry("fi450", "fi10639", gen.country, 450, 20050107,
                 (("n_blobs", 40),), "large"),
    TestbedEntry("usa500", "usa13509", gen.country, 500, 20050108,
                 (("n_blobs", 60),), "large"),
    TestbedEntry("sw520", "sw24978", gen.country, 520, 20050109,
                 (("n_blobs", 80),), "large"),
    TestbedEntry("pla480", "pla33810", gen.pla_rows, 480, 20050110, (), "large"),
    TestbedEntry("pla620", "pla85900", gen.pla_rows, 620, 20050111, (), "large"),
)

_BY_NAME = {e.name: e for e in TESTBED}
_BY_PAPER = {e.paper_name: e for e in TESTBED}

_cache: dict[str, TSPInstance] = {}
_best_known_cache: Optional[dict] = None


def testbed(size_class: Optional[str] = None) -> list[TestbedEntry]:
    """All testbed entries, optionally filtered by size class."""
    if size_class is None:
        return list(TESTBED)
    return [e for e in TESTBED if e.size_class == size_class]


def get_instance(name: str) -> TSPInstance:
    """Materialize a testbed instance by our name or the paper's name.

    Instances are cached; the same object is returned on repeat calls so
    neighbour lists and distance matrices are shared.
    """
    entry = _BY_NAME.get(name) or _BY_PAPER.get(name)
    if entry is None:
        raise KeyError(
            f"unknown testbed instance {name!r}; known: "
            f"{sorted(_BY_NAME)} (or paper names {sorted(_BY_PAPER)})"
        )
    inst = _cache.get(entry.name)
    if inst is None:
        inst = entry.make()
        _cache[entry.name] = inst
    return inst


def data_path() -> Path:
    """Directory holding packaged data files (best-known cache)."""
    return Path(resources.files("repro.tsp") / "data")


def _load_best_known() -> dict:
    global _best_known_cache
    if _best_known_cache is None:
        path = data_path() / "best_known.json"
        if path.exists():
            _best_known_cache = json.loads(path.read_text())
        else:
            _best_known_cache = {}
    return _best_known_cache


def best_known(name: str) -> Optional[int]:
    """Best-known tour length for a testbed instance, or None if unknown.

    These play the role of the paper's 'known optima': targets for success
    counting and the denominator of quality percentages.  They come from
    long reference runs, not proofs of optimality.
    """
    rec = _load_best_known().get(name)
    return int(rec["length"]) if rec and "length" in rec else None


def hk_bound(name: str) -> Optional[float]:
    """Cached Held-Karp lower bound for a testbed instance, if computed."""
    rec = _load_best_known().get(name)
    return float(rec["hk_bound"]) if rec and "hk_bound" in rec else None


def save_best_known(records: dict) -> None:
    """Merge and persist best-known records (used by maintenance scripts)."""
    global _best_known_cache
    current = dict(_load_best_known())
    for name, rec in records.items():
        old = current.get(name, {})
        merged = dict(old)
        # Never replace a best-known length with a worse one.
        if "length" in rec and ("length" not in old or rec["length"] < old["length"]):
            merged["length"] = int(rec["length"])
            if "source" in rec:
                merged["source"] = rec["source"]
        if "hk_bound" in rec and ("hk_bound" not in old or rec["hk_bound"] > old["hk_bound"]):
            merged["hk_bound"] = float(rec["hk_bound"])
        current[name] = merged
    path = data_path() / "best_known.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    _best_known_cache = current
