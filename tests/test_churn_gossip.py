"""Tests for node churn and gossip dissemination (P2P extensions)."""

import pytest

from repro.core import solve
from repro.core.events import EventKind
from repro.distributed.churn import ChurnEvent, make_schedule, validate_schedule
from repro.tsp import generators


@pytest.fixture(scope="module")
def inst():
    return generators.clustered(60, rng=33)


class TestSchedule:
    def test_make_schedule_sorts(self):
        sched = make_schedule([(2.0, "leave", 1), (1.0, "join", 8)])
        assert sched[0].action == "join"
        assert sched[1].action == "leave"

    def test_invalid_action(self):
        with pytest.raises(ValueError, match="action"):
            ChurnEvent(1.0, "hibernate", 0)

    def test_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChurnEvent(-1.0, "leave", 0)

    def test_validate_join_id_range(self):
        sched = make_schedule([(1.0, "join", 2)])
        with pytest.raises(ValueError, match="outside"):
            validate_schedule(sched, n_initial=4, n_total=5)

    def test_validate_double_join(self):
        sched = make_schedule([(1.0, "join", 4), (2.0, "join", 4)])
        with pytest.raises(ValueError, match="twice"):
            validate_schedule(sched, n_initial=4, n_total=5)

    def test_validate_leave_unknown(self):
        sched = make_schedule([(1.0, "leave", 7)])
        with pytest.raises(ValueError, match="before it exists"):
            validate_schedule(sched, n_initial=4, n_total=4)

    def test_validate_all_leave(self):
        sched = make_schedule([(1.0, "leave", 0), (1.0, "leave", 1)])
        with pytest.raises(ValueError, match="alive"):
            validate_schedule(sched, n_initial=2, n_total=2)


class TestChurnRuns:
    def test_leaves_stop_nodes(self, inst):
        res = solve(
            inst, budget_vsec_per_node=1.0, n_nodes=4,
            churn=[(0.4, "leave", 2), (0.5, "leave", 3)], rng=0,
        )
        assert res.reasons[2] == "left"
        assert res.reasons[3] == "left"
        assert res.clocks[2] < 1.0
        assert res.best_tour.is_valid()

    def test_joiner_participates(self, inst):
        res = solve(
            inst, budget_vsec_per_node=1.2, n_nodes=4,
            churn=[(0.3, "join", 4)], rng=1,
        )
        # The joiner (id 4) started late and did some work.
        assert 4 in res.clocks
        assert res.clocks[4] > 0.3
        assert len(res.event_logs[4]) > 0
        assert res.best_tour.is_valid()

    def test_churned_run_still_competitive(self, inst):
        static = solve(inst, budget_vsec_per_node=1.0, n_nodes=4, rng=5)
        churned = solve(
            inst, budget_vsec_per_node=1.0, n_nodes=4,
            churn=[(0.4, "leave", 1), (0.5, "join", 4)], rng=5,
        )
        assert churned.best_length <= static.best_length * 1.05

    def test_churn_requires_hypercube(self, inst):
        with pytest.raises(ValueError, match="hypercube"):
            solve(inst, budget_vsec_per_node=0.5, n_nodes=4,
                  topology="ring", churn=[(0.3, "leave", 1)], rng=0)

    def test_deterministic_with_churn(self, inst):
        kwargs = dict(budget_vsec_per_node=0.8, n_nodes=4,
                      churn=[(0.3, "leave", 2)], rng=9)
        a = solve(inst, **kwargs)
        b = solve(inst, **kwargs)
        assert a.best_length == b.best_length
        assert a.global_trace == b.global_trace


class TestGossip:
    def test_gossip_run_valid(self, inst):
        res = solve(
            inst, budget_vsec_per_node=1.0, n_nodes=8,
            dissemination="gossip", gossip_fanout=2, rng=2,
        )
        assert res.best_tour.is_valid()
        assert res.network_stats.messages > 0

    def test_gossip_message_volume_matches_fanout(self, inst):
        bcast = solve(inst, budget_vsec_per_node=1.0, n_nodes=8, rng=3)
        gossip = solve(
            inst, budget_vsec_per_node=1.0, n_nodes=8,
            dissemination="gossip", gossip_fanout=1, rng=3,
        )
        # Hypercube broadcast sends 3 copies per improvement; fanout-1
        # gossip sends 1 (tour messages only; notifications flood).
        assert (
            gossip.network_stats.tour_messages
            < bcast.network_stats.tour_messages
        )

    def test_gossip_still_spreads_improvements(self):
        # Needs an instance hard enough that improvements keep flowing
        # after the initial phase (fl-class drilling plate).
        inst = generators.drilling(120, rng=2)
        res = solve(
            inst, budget_vsec_per_node=2.0, n_nodes=8,
            dissemination="gossip", gossip_fanout=3, rng=4,
        )
        received = sum(
            len(log.of_kind(EventKind.RECEIVED_IMPROVEMENT))
            for log in res.event_logs.values()
        )
        assert received > 0

    def test_unknown_dissemination_rejected(self, inst):
        with pytest.raises(ValueError, match="dissemination"):
            solve(inst, budget_vsec_per_node=0.2, n_nodes=2,
                  dissemination="carrier_pigeon", rng=0)
