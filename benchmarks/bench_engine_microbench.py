"""Engine microbenchmarks: the substrate costs everything else rests on.

Not a paper table — this measures the repository's own hot paths
(construction, one LK pass, one chained kick, a 1-tree) in wall-clock
time via pytest-benchmark's normal timing machinery, so regressions in
the engine show up even when the virtual-time results stay identical.

``test_engine_ops_per_sec`` additionally writes ``BENCH_engine.json``
at the repository root: wall-clock ops/sec per operator per candidate
set on an n=1000 geometric instance, plus the row-cached-vs-scalar
DistView comparison that justifies the engine's fast path (the
acceptance bar is a >= 1.5x speedup for 2-opt and Or-opt).
``test_batched_vs_serial_kicks`` merges a ``batched_kicks`` entry into
the same file: wall clock of the batched best-of-N kick stage (width 4,
process pool) against the serial loop doing the same number of kicks
(the >= 1.5x acceptance bar applies on machines with >= 4 cores; on
smaller boxes the measurement is recorded but not asserted).
"""

import json
import os
import time
from pathlib import Path

import pytest

from _common import emit, print_banner
from repro.bounds import minimum_one_tree
from repro.construct import quick_boruvka
from repro.localsearch import (
    ChainedLK,
    DistView,
    LinKernighan,
    OpStats,
    get_operator,
)
from repro.tsp import generators, get_candidate_set
from repro.utils.rng import ensure_rng
from repro.utils.work import WorkMeter


@pytest.fixture(scope="module")
def inst():
    instance = generators.uniform(300, rng=77)
    instance.materialize()
    instance.neighbor_lists(8)
    return instance


def test_quick_boruvka_300(benchmark, inst):
    tour = benchmark(lambda: quick_boruvka(inst))
    assert tour.is_valid()


def test_lk_full_pass_300(benchmark, inst):
    engine = LinKernighan(inst)

    def run():
        t = quick_boruvka(inst)
        engine.optimize(t)
        return t

    tour = benchmark(run)
    assert tour.is_valid()


def test_clk_kick_step_300(benchmark, inst):
    solver = ChainedLK(inst, rng=0)
    best = solver.initial_tour()

    def step():
        return solver.step(best, WorkMeter())

    cand = benchmark(step)
    assert cand.is_valid()


def test_one_tree_300(benchmark, inst):
    tree = benchmark(lambda: minimum_one_tree(inst))
    assert tree.degrees.sum() == 2 * inst.n


# -- engine ops/sec report (BENCH_engine.json) --------------------------------

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
_OPERATORS = ("two_opt", "or_opt", "lk")
_CAND_SETS = ("knn", "quadrant")
_REPEATS = 3


def _engine_ops(stats: OpStats) -> int:
    """Inner-loop work of one run: candidate scans + reversal swaps."""
    return stats.candidate_scans + stats.segment_swaps


def _kicked_starts(inst, n_tours=12, kicks=25, seed=20260805):
    """Deterministic workload: construction tours roughed up by kicks.

    This is the regime the engine actually runs in (re-optimization after
    chained-LK perturbations): many candidate scans, short reversals —
    unlike a fully random tour, whose first 2-opt moves reverse ~n/4
    cities each and so measure numpy slice speed, not the scan loop.
    """
    rng = ensure_rng(seed)
    base = quick_boruvka(inst, rng=rng)
    starts = []
    for _ in range(n_tours):
        t = base.copy()
        for _ in range(kicks):
            cuts = 1 + rng.choice(inst.n - 1, size=3, replace=False)
            t.double_bridge(cuts)
        starts.append(t)
    return starts


def _timed_run(op_name, starts, provider, view=None):
    """Best-of-_REPEATS (elapsed, stats) over one pass of all starts.

    Every repeat works on copies of the same tours, so the work done
    (and hence the stats) is identical across repeats and across views —
    only the wall-clock changes.
    """
    op = get_operator(op_name)
    best = None
    for _ in range(_REPEATS):
        tours = [t.copy() for t in starts]
        stats = OpStats()
        kwargs = {"candidates": provider, "stats": stats}
        if view is not None:
            kwargs["view"] = view
        t0 = time.perf_counter()
        for tour in tours:
            op(tour, **kwargs)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, stats)
    return best


@pytest.fixture(scope="module")
def inst1000():
    instance = generators.uniform(1000, rng=4242)
    instance.materialize()
    instance.matrix_row_lists()
    return instance


def test_engine_ops_per_sec(inst1000):
    """Ops/sec per operator per candidate set; row vs scalar DistView."""
    inst = inst1000
    starts = _kicked_starts(inst)
    providers = {name: get_candidate_set(name, k=8) for name in _CAND_SETS}
    for p in providers.values():
        p.row_lists(inst)  # build outside the timed region

    report = {
        "n": inst.n,
        "instance": "uniform(1000, rng=4242)",
        "workload": f"{len(starts)} quick-Boruvka tours + 25 kicks each",
        "ops_measure": "candidate_scans + segment_swaps",
        "ops_per_sec": {},
        "row_vs_scalar": {},
    }

    print_banner(
        "Engine microbench: ops/sec per operator per candidate set",
        f"n={inst.n}, best of {_REPEATS} passes over {len(starts)} "
        "kicked construction tours",
    )
    for op_name in _OPERATORS:
        report["ops_per_sec"][op_name] = {}
        for cname, provider in providers.items():
            elapsed, stats = _timed_run(op_name, starts, provider)
            rate = _engine_ops(stats) / elapsed
            report["ops_per_sec"][op_name][cname] = round(rate, 1)
            emit(f"  {op_name:9s} {cname:9s} {rate:12,.0f} ops/s "
                 f"(gain {stats.gain}, {stats.moves} moves)")

    emit("row-cached DistView vs scalar instance.dist:")
    scalar_view = DistView(inst, prefer_rows=False)
    assert scalar_view.rows is None
    for op_name in ("two_opt", "or_opt"):
        provider = providers["knn"]
        t_row, s_row = _timed_run(op_name, starts, provider)
        t_scalar, s_scalar = _timed_run(
            op_name, starts, provider, view=scalar_view
        )
        # Same tour, same candidates -> identical work either way.
        assert _engine_ops(s_row) == _engine_ops(s_scalar)
        speedup = t_scalar / t_row
        report["row_vs_scalar"][op_name] = {
            "row_ops_per_sec": round(_engine_ops(s_row) / t_row, 1),
            "scalar_ops_per_sec": round(_engine_ops(s_scalar) / t_scalar, 1),
            "speedup": round(speedup, 2),
        }
        emit(f"  {op_name:9s} row {_engine_ops(s_row) / t_row:12,.0f} ops/s"
             f"   scalar {_engine_ops(s_scalar) / t_scalar:12,.0f} ops/s"
             f"   speedup {speedup:.2f}x")
        assert speedup >= 1.5, (
            f"{op_name}: row-cached path only {speedup:.2f}x faster"
        )

    _BENCH_JSON.write_text(json.dumps(report, indent=1) + "\n")
    emit(f"wrote {_BENCH_JSON.name}")


def test_batched_vs_serial_kicks(inst1000):
    """Wall clock: batched best-of-N kick stage vs the serial kick loop.

    Both sides perform the same number of kick -> LK chains (batches x
    width) from comparable incumbents; the batched side pays one warm-up
    batch first so pool spawn + per-worker engine construction are not
    timed (a real run amortizes them over thousands of batches).
    """
    inst = inst1000
    width, batches = 4, 6

    serial = ChainedLK(inst, rng=9)
    best = serial.initial_tour(WorkMeter())
    meter = WorkMeter()
    t0 = time.perf_counter()
    for _ in range(batches * width):
        cand = serial.step(best, meter)
        if cand.length <= best.length:
            best = cand
    serial_elapsed = time.perf_counter() - t0

    batched = ChainedLK(inst, rng=9, batch_width=width)
    bbest = batched.initial_tour(WorkMeter())
    bmeter = WorkMeter()
    batched.step_batch(bbest, bmeter)  # warm-up: spawn pool, build engines
    t0 = time.perf_counter()
    for _ in range(batches):
        cand = batched.step_batch(bbest, bmeter)
        if cand.length <= bbest.length:
            bbest = cand
    batched_elapsed = time.perf_counter() - t0
    runner = batched._batch_runner
    pool_used = runner._executor is not None and runner.pool_failures == 0
    batched.close()

    speedup = serial_elapsed / batched_elapsed
    cores = os.cpu_count() or 1
    entry = {
        "width": width,
        "batches": batches,
        "cores": cores,
        "pool_used": pool_used,
        "serial_sec": round(serial_elapsed, 4),
        "batched_sec": round(batched_elapsed, 4),
        "speedup": round(speedup, 2),
    }
    report = json.loads(_BENCH_JSON.read_text()) if _BENCH_JSON.exists() else {}
    report["batched_kicks"] = entry
    _BENCH_JSON.write_text(json.dumps(report, indent=1) + "\n")

    print_banner(
        "Batched best-of-N kicks vs serial loop",
        f"n={inst.n}, width={width}, {batches} batches, {cores} cores",
    )
    emit(f"  serial  {serial_elapsed:8.3f}s   batched {batched_elapsed:8.3f}s"
         f"   speedup {speedup:.2f}x (pool_used={pool_used})")
    emit(f"merged batched_kicks into {_BENCH_JSON.name}")
    # The parallel win needs real cores; a 1-core box measures pure pool
    # overhead, which is recorded above but proves nothing about scaling.
    if pool_used and cores >= 4:
        assert speedup >= 1.5, (
            f"batched kicks only {speedup:.2f}x faster with {cores} cores"
        )
