"""Fixture-snippet tests for the reprolint rule set.

Each RPL rule gets at least one snippet it must fire on and one it must
stay silent on, written into a tmp tree at paths inside the rule's
default scope.  The suppression syntax and the CLI exit-code contract
are covered at the end.
"""

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import Config, lint_file, lint_paths  # noqa: E402
from tools.reprolint.config import load_config  # noqa: E402
from tools.reprolint.rules import ALL_RULES, rule_ids  # noqa: E402


def lint_snippet(tmp_path, relpath, source):
    """Write ``source`` at ``relpath`` under a tmp root and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(path, config=Config(), root=tmp_path)


def ids_of(violations):
    return [v.rule_id for v in violations]


class TestRPL001GlobalRng:
    def test_fires_on_stdlib_random(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import random
            v = random.random()
        """)
        assert ids_of(out) == ["RPL001", "RPL001"]  # import + call

    def test_fires_on_legacy_numpy_global(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import numpy as np
            np.random.seed(0)
            v = np.random.randint(10)
        """)
        assert ids_of(out) == ["RPL001", "RPL001"]

    def test_fires_on_unseeded_default_rng(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            from numpy.random import default_rng
            rng = default_rng()
        """)
        assert ids_of(out) == ["RPL001"]

    def test_silent_on_injected_generator(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import numpy as np

            def pick(rng: np.random.Generator, n: int) -> int:
                return int(rng.integers(n))

            seeded = np.random.default_rng(42)
        """)
        assert out == []

    def test_silent_inside_allowed_scope(self, tmp_path):
        # utils/rng.py is the one blessed home of RNG plumbing.
        out = lint_snippet(tmp_path, "src/repro/utils/rng.py", """\
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert out == []


class TestRPL002WallClock:
    def test_fires_on_time_time(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/x.py", """\
            import time
            t0 = time.time()
        """)
        assert ids_of(out) == ["RPL002"]

    def test_fires_on_datetime_now_and_from_import(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import datetime
            from time import perf_counter
            stamp = datetime.datetime.now()
        """)
        assert ids_of(out) == ["RPL002", "RPL002"]

    def test_silent_on_workmeter_accounting(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/x.py", """\
            def advance(meter, ops: int) -> None:
                meter.tick(ops)
        """)
        assert out == []

    def test_silent_outside_virtual_time_scope(self, tmp_path):
        # The mp backend legitimately paces on the wall clock.
        out = lint_snippet(tmp_path, "src/repro/distributed/mp_backend.py", """\
            import time
            t0 = time.monotonic()
        """)
        assert out == []

    def test_fires_in_divide_package(self, tmp_path):
        # The divide pipeline runs under virtual time (metered region
        # sessions + metered repair); wall-clock reads are banned there.
        out = lint_snippet(tmp_path, "src/repro/divide/pipeline.py", """\
            import time

            def merge_phase():
                return time.perf_counter()
        """)
        assert ids_of(out) == ["RPL002"]

    def test_silent_on_metered_divide_code(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/divide/pipeline.py", """\
            def repair_phase(meter, ops: int) -> float:
                meter.tick(ops)
                return meter.vsec
        """)
        assert out == []


class TestRPL003RawDistance:
    def test_fires_on_instance_dist_param(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/two_opt.py", """\
            def scan(tour, instance):
                return instance.dist(0, 1)
        """)
        assert ids_of(out) == ["RPL003"]

    def test_fires_on_tour_instance_chain(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/or_opt.py", """\
            def scan(tour):
                return tour.instance.dist(0, 1)
        """)
        assert ids_of(out) == ["RPL003"]

    def test_fires_on_assigned_instance_and_matrix_indexing(self, tmp_path):
        out = lint_snippet(
            tmp_path, "src/repro/localsearch/three_opt.py", """\
            def scan(tour):
                inst2 = tour.instance
                a = inst2.dist_many(0, [1, 2])
                b = inst2.matrix[0, 1]
                return a, b
        """)
        assert ids_of(out) == ["RPL003", "RPL003"]

    def test_silent_on_distview(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/two_opt.py", """\
            def scan(tour, view):
                rows = view.rows
                return rows[0][1] + view.dist(2, 3)
        """)
        assert out == []

    def test_silent_outside_hot_loop_modules(self, tmp_path):
        # Setup/analysis code may use instance.dist freely.
        out = lint_snippet(tmp_path, "src/repro/analysis/quality.py", """\
            def gap(instance, a, b):
                return instance.dist(a, b)
        """)
        assert out == []

    def test_fires_in_divide_repair(self, tmp_path):
        # The boundary-repair hot loop obeys the DistView discipline.
        out = lint_snippet(tmp_path, "src/repro/divide/repair.py", """\
            def stitch(partition, results):
                instance = partition.instance
                return instance.dist_many(0, [1, 2])
        """)
        assert ids_of(out) == ["RPL003"]

    def test_silent_on_distview_in_divide_repair(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/divide/repair.py", """\
            def stitch(partition, results, view):
                return view.gather(0, [1, 2]) + view.dist(2, 3)
        """)
        assert out == []

    def test_other_divide_modules_not_in_rpl003_scope(self, tmp_path):
        # Only repair.py hosts a distance hot loop; the partitioner may
        # query the instance directly (it builds the boundary graph).
        out = lint_snippet(tmp_path, "src/repro/divide/partition.py", """\
            def boundary(instance):
                return instance.dist_many(0, [1, 2])
        """)
        assert out == []

    def test_matrix_ok_waives_subscripts_in_kernels_only(self, tmp_path):
        # kernels.py is the sanctioned matrix-gather module: matrix
        # subscripts pass there, but instance.dist stays banned.
        src = """\
            import numpy as np

            def gather(instance, view, cmat):
                d = view.matrix[np.arange(3)[:, None], cmat]
                return d + instance.dist(0, 1)
        """
        out = lint_snippet(tmp_path, "src/repro/localsearch/kernels.py", src)
        assert ids_of(out) == ["RPL003"]  # only the instance.dist call
        # The same source in any other hot-loop module fires both halves.
        out = lint_snippet(tmp_path, "src/repro/localsearch/two_opt.py", src)
        assert ids_of(out) == ["RPL003", "RPL003"]

    def test_matrix_ok_pyproject_override(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            matrix-ok = ["src/repro/localsearch/three_opt.py"]
        """))
        cfg = load_config(tmp_path)
        assert cfg.matrix_ok_for("src/repro/localsearch/three_opt.py")
        assert not cfg.matrix_ok_for("src/repro/localsearch/kernels.py")


class TestRPL004WireTypes:
    def test_fires_on_missing_slots(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Message:
                sender: int
        """)
        assert ids_of(out) == ["RPL004"]

    def test_fires_on_plain_class(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            class Message:
                pass
        """)
        assert ids_of(out) == ["RPL004"]

    def test_fires_on_mutable_field_annotation(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Message:
                payload: dict
        """)
        assert ids_of(out) == ["RPL004"]
        assert "dict" in out[0].message

    def test_silent_on_conforming_wire_type(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            from dataclasses import dataclass
            from typing import Optional

            @dataclass(frozen=True, slots=True)
            class Message:
                sender: int
                length: Optional[int]
                order: "tuple[int, ...]"
        """)
        assert out == []

    def test_only_configured_classes_checked(self, tmp_path):
        # Non-wire helpers in the same file are out of scope.
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            class ScratchBuffer:
                data: dict
        """)
        assert out == []


class TestRPL005QueueTimeout:
    def test_fires_on_bare_get(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(q):
                return q.get()
        """)
        assert ids_of(out) == ["RPL005"]

    def test_fires_on_block_true_and_timeout_none(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(q):
                a = q.get(True)
                b = q.get(block=True)
                c = q.get(timeout=None)
                return a, b, c
        """)
        assert ids_of(out) == ["RPL005", "RPL005", "RPL005"]

    def test_fires_on_bare_recv(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(conn):
                return conn.recv()
        """)
        assert ids_of(out) == ["RPL005"]

    def test_silent_on_timeout_and_nowait_and_dict_get(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(q, table):
                a = q.get(timeout=0.5)
                b = q.get_nowait()
                c = table.get("key", 0)
                return a, b, c
        """)
        assert out == []

    def test_fires_on_awaited_get_in_service_package(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/loop.py", """\
            async def pump(q):
                return await q.get()
        """)
        assert ids_of(out) == ["RPL005"]

    def test_silent_on_wait_for_wrapped_get(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/loop.py", """\
            import asyncio

            async def pump(q):
                a = await asyncio.wait_for(q.get(), timeout=1.0)
                b = await asyncio.wait_for(q.get(), 1.0)
                return a, b
        """)
        assert out == []

    def test_fires_when_wait_for_timeout_is_none(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/loop.py", """\
            import asyncio

            async def pump(q):
                return await asyncio.wait_for(q.get(), timeout=None)
        """)
        assert ids_of(out) == ["RPL005"]

    def test_service_scope_out_of_reach_elsewhere(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/analysis/x.py", """\
            async def pump(q):
                return await q.get()
        """)
        assert out == []


class TestRPL006SilentExcept:
    def test_fires_on_bare_except(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            def f():
                try:
                    g()
                except:
                    pass
        """)
        assert ids_of(out) == ["RPL006"]

    def test_fires_on_silent_broad_except(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            def f():
                try:
                    g()
                except Exception:
                    pass
        """)
        assert ids_of(out) == ["RPL006"]

    def test_fires_on_broad_tuple(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            def f():
                for _ in range(3):
                    try:
                        g()
                    except (ValueError, Exception):
                        continue
        """)
        assert ids_of(out) == ["RPL006"]

    def test_silent_on_narrow_or_handled(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import logging

            def f():
                try:
                    g()
                except KeyError:
                    pass
                try:
                    g()
                except Exception:
                    logging.exception("g failed")
        """)
        assert out == []


class TestRPL007BlockingAsync:
    def test_fires_on_time_sleep_in_coroutine(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import time

            async def tick():
                time.sleep(0.1)
        """)
        assert ids_of(out) == ["RPL007"]

    def test_fires_on_sync_queue_get_signature(self, tmp_path):
        # timeout= marks the sync queue.Queue signature; RPL005 stays
        # silent (the read is bounded) — blocking the loop is RPL007's.
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            async def pump(q):
                return q.get(timeout=0.5)
        """)
        assert ids_of(out) == ["RPL007"]

    def test_fires_on_process_start_and_join(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            from multiprocessing import Process

            async def run(fn):
                proc = Process(target=fn)
                proc.start()
                proc.join(5.0)
        """)
        assert ids_of(out) == ["RPL007", "RPL007"]

    def test_silent_on_to_thread_and_sync_functions(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio
            from multiprocessing import Process

            async def run(fn):
                proc = Process(target=fn)
                await asyncio.to_thread(proc.start)
                await asyncio.sleep(0.1)
                await asyncio.to_thread(proc.join, 5.0)

            def sync_io(path):
                with open(path) as fh:
                    return fh.read()
        """)
        assert out == []

    def test_scope_is_service_only(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/analysis/x.py", """\
            import time

            async def tick():
                time.sleep(0.1)
        """)
        assert out == []


class TestRPL008AwaitRmw:
    def test_fires_on_read_await_write(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            class Svc:
                def __init__(self):
                    self.jobs = {}

                async def refresh(self, job_id):
                    rec = self.jobs[job_id]
                    await asyncio.sleep(0)
                    self.jobs[job_id] = rec
        """)
        assert ids_of(out) == ["RPL008"]

    def test_fires_on_loop_body_rmw_across_await(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            class Svc:
                def __init__(self):
                    self.pending = []

                async def drain(self):
                    while self.pending:
                        item = self.pending[0]
                        await asyncio.sleep(0)
                        self.pending.remove(item)
        """)
        assert ids_of(out) == ["RPL008"]

    def test_silent_under_lock(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            class Svc:
                def __init__(self):
                    self.jobs = {}
                    self._lock = asyncio.Lock()

                async def refresh(self, job_id):
                    async with self._lock:
                        rec = self.jobs[job_id]
                        await asyncio.sleep(0)
                        self.jobs[job_id] = rec
        """)
        assert out == []

    def test_silent_with_atomic_section_annotation(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            class Svc:
                def __init__(self):
                    self.jobs = {}

                async def refresh(self, job_id):
                    rec = self.jobs[job_id]  # reprolint: atomic-section
                    await asyncio.sleep(0)
                    self.jobs[job_id] = rec
        """)
        assert out == []

    def test_fires_through_cross_module_attribute_index(self, tmp_path):
        # self.queue._heap resolves through WorkQueue defined in ANOTHER
        # module — the project-wide index at work.
        (tmp_path / "src/repro/service").mkdir(parents=True)
        (tmp_path / "src/repro/service/queue.py").write_text(
            textwrap.dedent("""\
                class WorkQueue:
                    def __init__(self):
                        self._heap = []
            """))
        (tmp_path / "src/repro/service/svc.py").write_text(
            textwrap.dedent("""\
                import asyncio

                class Svc:
                    def __init__(self):
                        self.queue = WorkQueue()

                    async def pump(self):
                        item = self.queue._heap[0]
                        await asyncio.sleep(0)
                        self.queue._heap.remove(item)
            """))
        out = lint_paths([tmp_path / "src"], config=Config(), root=tmp_path)
        assert ids_of(out) == ["RPL008"]
        assert "self.queue._heap" in out[0].message


class TestRPL009TaskRetention:
    def test_fires_on_discarded_create_task(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            async def kick(coro):
                asyncio.create_task(coro)
                await asyncio.sleep(0)
        """)
        assert ids_of(out) == ["RPL009"]

    def test_fires_on_unused_task_local(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            async def kick(coro):
                task = asyncio.create_task(coro)
                await asyncio.sleep(0)
        """)
        assert ids_of(out) == ["RPL009"]

    def test_fires_on_cancel_without_await_of_task_attr(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            class Svc:
                def __init__(self):
                    self._scheduler = None

                async def start(self):
                    self._scheduler = asyncio.create_task(self.run())

                async def close(self):
                    self._scheduler.cancel()
        """)
        assert ids_of(out) == ["RPL009"]
        assert "cancel() without awaiting" in out[0].message

    def test_silent_on_stored_handle_and_cancel_then_await(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            class Svc:
                def __init__(self):
                    self._tasks = {}

                async def spawn(self, job_id, coro):
                    task = asyncio.create_task(coro)
                    self._tasks[job_id] = task

                async def stop(self, job_id):
                    task = self._tasks.pop(job_id)
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
        """)
        assert out == []

    def test_prefix_close_pattern_fires_both_rules(self, tmp_path):
        # The exact pre-fix SolverService.close() shape: swallowing the
        # CancelledError from wait_for (RPL011) and cancelling the task
        # without ever awaiting it (RPL009).
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            class Svc:
                def __init__(self):
                    self._tasks = {}

                async def close(self):
                    for task in list(self._tasks.values()):
                        try:
                            await asyncio.wait_for(task, timeout=30.0)
                        except (asyncio.TimeoutError,
                                asyncio.CancelledError):
                            task.cancel()
        """)
        assert sorted(ids_of(out)) == ["RPL009", "RPL011"]


class TestRPL010DeterminismTaint:
    def test_fires_on_wall_clock_into_wire_type(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import time
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Incumbent:
                vsec: float

            def snap():
                stamp = time.time()
                return Incumbent(vsec=stamp)
        """)
        assert ids_of(out) == ["RPL010"]

    def test_fires_on_set_order_into_persistence(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            def dump(run):
                seen = {run.node_a, run.node_b}
                order = list(seen)
                save_run(run, order)
        """)
        assert ids_of(out) == ["RPL010"]

    def test_fires_on_nondeterministic_result_assignment(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import time

            class JobRecord:
                def finish(self):
                    self.result = time.time()
        """)
        assert ids_of(out) == ["RPL010"]

    def test_silent_after_sorted_sanitizer(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            def dump(run):
                seen = {run.node_a, run.node_b}
                order = sorted(seen)
                save_run(run, order)
        """)
        assert out == []

    def test_silent_on_bookkeeping_uses(self, tmp_path):
        # Wall-clock reads are fine for metrics that never reach a wire
        # type, a result field or a persistence call.
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import time

            class JobRecord:
                def finish(self, log):
                    self.latency = time.time()
                    log.append(self.latency)
        """)
        assert out == []


class TestRPL011CancelSwallow:
    def test_fires_on_swallowed_cancelled_error(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            async def run(coro):
                try:
                    await coro()
                except asyncio.CancelledError:
                    pass
        """)
        assert ids_of(out) == ["RPL011"]

    def test_fires_on_contextlib_suppress(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio
            import contextlib

            async def run(task):
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        """)
        assert ids_of(out) == ["RPL011"]

    def test_silent_on_except_exception(self, tmp_path):
        # CancelledError derives from BaseException: except Exception
        # lets it propagate, which is exactly right.
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import logging

            async def run(coro):
                try:
                    return await coro()
                except Exception:
                    logging.exception("job failed")
                    return None
        """)
        assert out == []

    def test_silent_on_cleanup_then_reraise(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            async def run(coro, release):
                try:
                    await coro()
                except asyncio.CancelledError:
                    release()
                    raise
        """)
        assert out == []

    def test_silent_on_reap_pattern(self, tmp_path):
        # The one sanctioned swallow: awaiting a task you cancelled
        # yourself, directly or through wait_for.
        out = lint_snippet(tmp_path, "src/repro/service/x.py", """\
            import asyncio

            async def stop(task):
                task.cancel()
                try:
                    await asyncio.wait_for(task, timeout=5.0)
                except asyncio.CancelledError:
                    pass
        """)
        assert out == []


class TestDataflowTier:
    """Unit coverage for the analyses under RPL007–011: the await-epoch
    flow walk, the project-wide attribute index, and taint tracking."""

    @staticmethod
    def build_module(source, path="src/repro/service/m.py"):
        import ast

        from tools.reprolint.dataflow import ModuleInfo

        src = textwrap.dedent(source)
        return ModuleInfo.build(path, ast.parse(src), src)

    @staticmethod
    def find_function(module, name):
        from tools.reprolint.dataflow import iter_functions

        for fn, cls in iter_functions(module.tree):
            if fn.name == name:
                return fn, (cls.name if cls is not None else None)
        raise AssertionError(f"no function {name!r}")

    def test_await_epochs_and_lock_depth(self):
        from tools.reprolint.dataflow import FunctionFlow, ProjectIndex

        module = self.build_module("""\
            import asyncio

            class Svc:
                def __init__(self):
                    self.jobs = {}
                    self._lock = asyncio.Lock()

                async def touch(self):
                    before = self.jobs["k"]
                    await asyncio.sleep(0)
                    self.jobs["k"] = before
                    async with self._lock:
                        self.jobs["k"] = 2 * before
        """)
        index = ProjectIndex.build([module])
        fn, cls_name = self.find_function(module, "touch")
        flow = FunctionFlow(fn, module, index, cls_name)
        # sleep + __aenter__ + __aexit__ are each an await point.
        assert flow.await_count() == 3
        jobs = [e for e in flow.attribute_events() if e.name == "self.jobs"]
        assert [(e.kind, e.epoch, e.lock_depth) for e in jobs] == [
            ("read", 0, 0),   # before the first await
            ("write", 1, 0),  # one await crossed, no lock held
            ("write", 2, 1),  # inside the async-with, lock held
        ]

    def test_loop_awaits_tracking(self):
        from tools.reprolint.dataflow import FunctionFlow, ProjectIndex

        module = self.build_module("""\
            import asyncio

            async def spin(n):
                total = 0
                while total < n:
                    await asyncio.sleep(0)
                    total += 1
                for i in range(n):
                    total += i
        """)
        fn, cls_name = self.find_function(module, "spin")
        flow = FunctionFlow(fn, module, ProjectIndex.build([module]),
                            cls_name)
        assert flow.loop_awaits == {0: True, 1: False}

    def test_mutator_calls_count_as_writes(self):
        from tools.reprolint.dataflow import FunctionFlow, ProjectIndex

        module = self.build_module("""\
            class Svc:
                def __init__(self):
                    self.pending = []

                def push(self, item):
                    self.pending.append(item)
        """)
        fn, cls_name = self.find_function(module, "push")
        flow = FunctionFlow(fn, module, ProjectIndex.build([module]),
                            cls_name)
        evs = [e for e in flow.attribute_events()
               if e.name == "self.pending"]
        # One atomic write — the receiver's incidental read is
        # suppressed so RPL008 does not see a phantom RMW.
        assert [e.kind for e in evs] == ["write"]

    def test_project_index_classifies_attributes(self):
        from tools.reprolint.dataflow import ProjectIndex

        module = self.build_module("""\
            import asyncio
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Incumbent:
                vsec: float

            class WorkQueue:
                def __init__(self):
                    self._heap = []

            class Svc:
                def __init__(self):
                    self.jobs = {}
                    self.guard = asyncio.Lock()
                    self.queue = WorkQueue()
                    self.jobs = None

                async def start(self):
                    self._scheduler = asyncio.create_task(self.run())
        """)
        index = ProjectIndex.build([module])
        assert index.wire_type_names() == {"Incumbent"}
        # `self.jobs = None` later must not downgrade the container.
        assert index.shared_state("Svc", "self.jobs")
        assert not index.shared_state("Svc", "self.queue")
        # One level of indirection through the indexed class.
        assert index.shared_state("Svc", "self.queue._heap")
        assert index.is_lock("Svc", "self.guard")
        assert index.is_task_attr("Svc", "self._scheduler")

    def test_taint_env_sources_sanitizers_and_sets(self):
        import ast

        from tools.reprolint.dataflow import TaintEnv

        def expr(text):
            return ast.parse(text, mode="eval").body

        env = TaintEnv({})
        assert env.expr_tainted(expr("time.time()"))
        assert env.expr_tainted(expr("os.urandom(8)"))
        assert not env.expr_tainted(expr("rng.integers(10)"))
        env.assign([expr("x")], True)
        assert env.expr_tainted(expr("x + 1"))       # propagates
        assert not env.expr_tainted(expr("sorted(x)"))  # sanitized
        assert env.is_unordered(expr("{a, b}"))
        assert env.is_unordered(expr("set(items)"))
        assert not env.is_unordered(expr("sorted(items)"))
        env.assign([expr("x")], False)               # reassignment clears
        assert not env.expr_tainted(expr("x"))


class TestSuppression:
    def test_line_suppression(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import time
            t0 = time.time()  # reprolint: disable=RPL002
        """)
        assert out == []

    def test_line_suppression_is_per_rule(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import time
            t0 = time.time()  # reprolint: disable=RPL001
        """)
        assert ids_of(out) == ["RPL002"]

    def test_file_suppression(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            # reprolint: disable-file=RPL002
            import time
            t0 = time.time()
            t1 = time.monotonic()
        """)
        assert out == []

    def test_syntax_error_is_rpl000(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", "def f(:\n")
        assert ids_of(out) == ["RPL000"]


class TestEngineAndConfig:
    def test_every_rule_has_id_title_rationale(self):
        seen = set()
        for rule in ALL_RULES:
            assert rule.id.startswith("RPL") and len(rule.id) == 6
            assert rule.title and rule.rationale
            assert rule.id not in seen
            seen.add(rule.id)
        assert rule_ids() == tuple(sorted(rule_ids()))

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "src/repro/core").mkdir(parents=True)
        (tmp_path / "src/repro/core/a.py").write_text("import random\n")
        (tmp_path / "src/repro/core/b.py").write_text("X = 1\n")
        out = lint_paths([tmp_path / "src"], config=Config(), root=tmp_path)
        assert ids_of(out) == ["RPL001"]

    def test_pyproject_overrides_and_unknown_key_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            exclude = ["generated/"]
            [tool.reprolint.rules.RPL002]
            include = ["src/custom/"]
        """))
        cfg = load_config(tmp_path)
        assert "generated/" in cfg.exclude
        assert cfg.scope_for("RPL002").include == ("src/custom/",)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint]\nexclue = []\n"
        )
        with pytest.raises(ValueError, match="unknown key"):
            load_config(tmp_path)

    def test_repo_tree_is_clean(self):
        # The acceptance bar: the shipped tree lints clean.
        violations = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "scripts", REPO_ROOT / "examples"],
            root=REPO_ROOT,
        )
        assert violations == [], "\n".join(v.render() for v in violations)


class TestCLI:
    def test_exit_codes(self, tmp_path):
        from tools.reprolint.__main__ import main

        (tmp_path / "src").mkdir()
        (tmp_path / "src/clean.py").write_text("X = 1\n")
        assert main(["--root", str(tmp_path), str(tmp_path / "src")]) == 0
        (tmp_path / "src/dirty.py").write_text("import random\n")
        assert main(["--root", str(tmp_path), str(tmp_path / "src")]) == 1

    def test_list_rules(self, capsys):
        from tools.reprolint.__main__ import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in rule_ids():
            assert rid in out

    def test_format_json(self, tmp_path, capsys):
        import json

        from tools.reprolint.__main__ import main

        (tmp_path / "src").mkdir()
        (tmp_path / "src/dirty.py").write_text("import random\n")
        code = main(["--root", str(tmp_path), "--format", "json",
                     str(tmp_path / "src")])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        violation = doc["violations"][0]
        assert violation["rule"] == "RPL001"
        assert violation["path"].endswith("src/dirty.py")
        assert violation["line"] == 1
        assert violation["message"]

    def test_format_json_clean_tree(self, tmp_path, capsys):
        import json

        from tools.reprolint.__main__ import main

        (tmp_path / "src").mkdir()
        (tmp_path / "src/clean.py").write_text("X = 1\n")
        code = main(["--root", str(tmp_path), "--format", "json",
                     str(tmp_path / "src")])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == {"violations": [], "count": 0}

    def test_format_github(self, tmp_path, capsys):
        from tools.reprolint.__main__ import main

        (tmp_path / "src").mkdir()
        (tmp_path / "src/dirty.py").write_text("import random\n")
        code = main(["--root", str(tmp_path), "--format", "github",
                     str(tmp_path / "src")])
        assert code == 1
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("::error file=")
        assert "title=reprolint RPL001" in lines[0]
        assert ",line=1,col=1," in lines[0]  # col is 1-based on GitHub

    def test_github_escapes_workflow_command_payload(self):
        from tools.reprolint.__main__ import render_github
        from tools.reprolint.engine import Violation

        v = Violation(rule_id="RPL001", path="a.py", line=2, col=0,
                      message="50% bad\nsecond line")
        line = render_github(v)
        assert "\n" not in line
        assert "%25" in line and "%0A" in line
