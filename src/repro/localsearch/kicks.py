"""Double-bridge kicks: the four CLK perturbation strategies.

Applegate et al. propose four ways of picking the four cities at which the
double-bridge move (DBM) cuts the tour (paper §2.1):

* **Random** — all cities uniformly at random; strong, tour-degrading kick.
* **Geometric** — the other three cities come from the k nearest
  neighbours of a random first city; local kick.
* **Close** — sample a subset of size ``beta * n``, take the six cities of
  the subset nearest to the first city, pick the three others from them.
* **Random-walk** — three independent random walks of fixed length on the
  neighbour graph, started at the first city; endpoints are the cut
  cities.  (The paper's and linkern's default.)

Every strategy returns four *cities*; :func:`apply_double_bridge` converts
them to cut positions and rewires the tour in O(n) (cheap relative to the
LK pass that follows).  The cities touched by the kick are returned so the
caller can seed the LK engine's don't-look queue.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..tsp.tour import Tour
from ..utils.rng import ensure_rng

__all__ = [
    "KICK_STRATEGIES",
    "FALLBACK_TRIES",
    "random_kick",
    "geometric_kick",
    "close_kick",
    "random_walk_kick",
    "get_kick",
    "apply_double_bridge",
]


#: Draw attempts a structured kick makes before degrading to random_kick.
FALLBACK_TRIES = 16


def _distinct_positions(tour: Tour, cities: list[int], rng) -> np.ndarray | None:
    """Four distinct sorted cut positions from ``cities``, or ``None``.

    When the cities map to more than four distinct tour positions, four
    of them are *sampled* with ``rng`` — truncating the sorted list
    would deterministically favour the lowest positions and bias every
    structured kick toward the tour's origin.
    """
    pos = sorted({int(tour.position[c]) for c in cities})
    if len(pos) < 4:
        return None
    if len(pos) > 4:
        keep = rng.choice(len(pos), size=4, replace=False)
        keep.sort()
        pos = [pos[int(i)] for i in keep]
    return np.array(pos, dtype=np.intp)


def _fallback(tour: Tour, rng, stats) -> np.ndarray:
    """Record a structured kick degrading to random, then do so."""
    if stats is not None:
        stats.kick_fallbacks += 1
    return random_kick(tour, rng)


def random_kick(tour: Tour, rng, **_kw) -> np.ndarray:
    """Four uniformly random distinct cut positions."""
    rng = ensure_rng(rng)
    pos = rng.choice(tour.n, size=4, replace=False)
    pos.sort()
    return pos.astype(np.intp)


def geometric_kick(tour: Tour, rng, neighbor_k: int = 16, stats=None,
                   **_kw) -> np.ndarray:
    """Cut near a random city: other cuts among its k nearest neighbours.

    Falls back to :func:`random_kick` after :data:`FALLBACK_TRIES`
    failed draws (recorded in ``stats.kick_fallbacks`` when a stats sink
    is given).
    """
    rng = ensure_rng(rng)
    n = tour.n
    v = int(rng.integers(n))
    neigh = tour.instance.neighbor_lists(min(neighbor_k, n - 1))[v]
    for _ in range(FALLBACK_TRIES):
        others = rng.choice(neigh, size=min(3, len(neigh)), replace=False)
        pos = _distinct_positions(tour, [v, *map(int, others)], rng)
        if pos is not None:
            return pos
    return _fallback(tour, rng, stats)


def close_kick(tour: Tour, rng, beta: float = 0.1, stats=None,
               **_kw) -> np.ndarray:
    """Applegate's Close strategy: six nearest in a beta*n random subset.

    Falls back to :func:`random_kick` (recorded in
    ``stats.kick_fallbacks``) when the subset is too small or after
    :data:`FALLBACK_TRIES` failed draws.
    """
    rng = ensure_rng(rng)
    n = tour.n
    v = int(rng.integers(n))
    m = max(8, int(beta * n))
    subset = rng.choice(n, size=min(m, n), replace=False)
    subset = subset[subset != v]
    if len(subset) < 6:
        return _fallback(tour, rng, stats)
    d = tour.instance.dist_many(v, subset)
    nearest6 = subset[np.argsort(d, kind="stable")[:6]]
    for _ in range(FALLBACK_TRIES):
        others = rng.choice(nearest6, size=3, replace=False)
        pos = _distinct_positions(tour, [v, *map(int, others)], rng)
        if pos is not None:
            return pos
    return _fallback(tour, rng, stats)


def random_walk_kick(tour: Tour, rng, walk_length: int = 25,
                     neighbor_k: int = 8, stats=None, **_kw) -> np.ndarray:
    """Three random walks on the neighbour graph from a random city.

    Falls back to :func:`random_kick` after :data:`FALLBACK_TRIES`
    failed draws (recorded in ``stats.kick_fallbacks``).
    """
    rng = ensure_rng(rng)
    n = tour.n
    neigh = tour.instance.neighbor_lists(min(neighbor_k, n - 1))
    v = int(rng.integers(n))
    for _ in range(FALLBACK_TRIES):
        cities = [v]
        for _walk in range(3):
            cur = v
            for _step in range(walk_length):
                cur = int(neigh[cur][rng.integers(neigh.shape[1])])
            cities.append(cur)
        pos = _distinct_positions(tour, cities, rng)
        if pos is not None:
            return pos
    return _fallback(tour, rng, stats)


KICK_STRATEGIES: dict[str, Callable] = {
    "random": random_kick,
    "geometric": geometric_kick,
    "close": close_kick,
    "random_walk": random_walk_kick,
}


def get_kick(name: str) -> Callable:
    """Look up a kick strategy by name (raises KeyError with choices)."""
    try:
        return KICK_STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown kick strategy {name!r}; choices: {sorted(KICK_STRATEGIES)}"
        ) from None


def apply_double_bridge(tour: Tour, positions: np.ndarray) -> tuple:
    """Rewire the tour with a double bridge cutting *before* each position.

    ``positions`` are four distinct sorted tour positions q0 < q1 < q2 < q3.
    The four arcs A=[q0,q1) B=[q1,q2) C=[q2,q3) D=[q3,q0) are reconnected
    as **A D C B** — the true Martin-Otto-Felten double bridge, which
    deletes all four boundary edges and adds four new ones with no segment
    reversal.  Returns the cities incident to the changed edges (8 of
    them) for seeding don't-look bits.
    """
    q0, q1, q2, q3 = (int(p) for p in positions)
    n = tour.n
    if not (0 <= q0 < q1 < q2 < q3 < n):
        raise ValueError(f"cut positions must be sorted and distinct: {positions}")
    order = tour.order
    a = order[q0:q1]
    b = order[q1:q2]
    c = order[q2:q3]
    d = np.concatenate([order[q3:], order[:q0]])
    inst = tour.instance
    old = (
        inst.dist(a[-1], b[0])
        + inst.dist(b[-1], c[0])
        + inst.dist(c[-1], d[0])
        + inst.dist(d[-1], a[0])
    )
    new = (
        inst.dist(a[-1], d[0])
        + inst.dist(d[-1], c[0])
        + inst.dist(c[-1], b[0])
        + inst.dist(b[-1], a[0])
    )
    new_order = np.concatenate([a, d, c, b])
    tour.order = new_order
    tour.position[new_order] = np.arange(n, dtype=np.intp)
    tour.length += int(new - old)
    return (
        int(a[-1]), int(b[0]), int(b[-1]), int(c[0]),
        int(c[-1]), int(d[0]), int(d[-1]), int(a[0]),
    )
