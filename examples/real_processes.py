"""Run the distributed algorithm with real OS processes.

The discrete-event simulator is the reference (deterministic, virtual
time); this example shows the same EA-node logic running on the
multiprocessing backend with wall-clock budgets — the shape the paper's
Java/TCP deployment had.

Run:  python examples/real_processes.py
"""

from repro.core.node import NodeConfig
from repro.distributed.mp_backend import run_multiprocessing
from repro.tsp import generators


def main() -> None:
    instance = generators.clustered(150, rng=9)
    print(f"instance: {instance.name}, n={instance.n}")
    print("running 4 worker processes (ring topology) for ~4s wall-clock each...")

    result = run_multiprocessing(
        instance,
        budget_seconds=4.0,
        n_nodes=4,
        node_config=NodeConfig(inner_kicks=3),
        topology="ring",
        rng=0,
    )

    print(f"\nbest tour length: {result.best_length} "
          f"(node {result.best_node})")
    for node_id in sorted(result.node_lengths):
        print(f"  node {node_id}: length {result.node_lengths[node_id]}, "
              f"stopped: {result.reasons[node_id]}")
    print(f"elapsed: {result.elapsed_seconds:.1f}s wall-clock")

    tour = result.tour(instance)
    assert tour.is_valid()
    print("returned tour verified valid.")


if __name__ == "__main__":
    main()
