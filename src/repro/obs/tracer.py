"""Span-based tracer over two time domains: virtual seconds and wall clock.

A span measures one region of execution.  Every span records its
wall-clock duration (``time.perf_counter`` — sanctioned here and only
here among virtual-time callers, see RPL002 in docs/CHECKS.md); a span
additionally records *virtual* start/end timestamps when the caller
passes ``vt=`` a virtual-time source — a
:class:`~repro.utils.work.WorkMeter` (its ``.vsec`` property) or any
zero-argument callable returning virtual seconds (e.g.
``lambda: node.clock``).  That split is the whole point: virtual time
says where the *algorithm's budget* goes, wall time says where the
*Python interpreter's* time goes, and the two disagree exactly where a
hot loop needs attention.

Spans nest via a per-tracer stack; the exporter and the summarizer
reconstruct the tree from ``parent`` indices.

Disabled mode is the default and is engineered to be ~free: ``span()``
returns one shared no-op context manager (an *identity* fast path —
every disabled call site gets the same object, no allocation), and the
``metrics`` attribute is the shared no-op registry.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import ContextManager, Optional

from .metrics import NULL_METRICS, Metrics

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "obs_enabled",
    "set_obs",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


_env_enabled: Optional[bool] = None


def obs_enabled() -> bool:
    """True when ``REPRO_OBS`` is set to a truthy value (read once)."""
    global _env_enabled
    if _env_enabled is None:
        _env_enabled = os.environ.get("REPRO_OBS", "").strip().lower() not in (
            "", "0", "false", "off", "no",
        )
    return _env_enabled


def set_obs(enabled: Optional[bool]) -> None:
    """Override the env flag (``None`` resets to re-read the environment).

    Affects tracers constructed *afterwards* (including the global one
    after a :func:`set_tracer` reset); an existing tracer's ``enabled``
    is fixed at construction so hot paths never re-read state.
    """
    global _env_enabled
    _env_enabled = enabled


def _vnow(vt) -> float:
    """Read a virtual-time source: ``.vsec`` attribute or callable."""
    vsec = getattr(vt, "vsec", None)
    if vsec is not None:
        return float(vsec)
    return float(vt())


class Span:
    """One completed (or in-flight) traced region."""

    __slots__ = ("index", "name", "labels", "parent", "depth",
                 "wall", "v0", "v1")

    def __init__(self, index: int, name: str, labels: dict,
                 parent: Optional[int], depth: int):
        self.index = index
        self.name = name
        self.labels = labels
        self.parent = parent
        self.depth = depth
        self.wall = 0.0            # wall-clock duration, seconds
        self.v0: Optional[float] = None  # virtual start, vsec
        self.v1: Optional[float] = None  # virtual end, vsec

    @property
    def vdur(self) -> float:
        """Virtual duration (0.0 for wall-only spans)."""
        if self.v0 is None or self.v1 is None:
            return 0.0
        return self.v1 - self.v0

    def to_json(self) -> dict:
        return {
            "t": "span",
            "i": self.index,
            "name": self.name,
            "labels": self.labels,
            "parent": self.parent,
            "depth": self.depth,
            "wall": self.wall,
            "v0": self.v0,
            "v1": self.v1,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, wall={self.wall:.6f}, "
                f"vdur={self.vdur:.6f}, labels={self.labels})")


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens/closes one live span."""

    __slots__ = ("_tracer", "_span", "_vt", "_wall0")

    def __init__(self, tracer: "Tracer", name: str, vt, labels: dict):
        self._tracer = tracer
        self._vt = vt
        parent = tracer._stack[-1] if tracer._stack else None
        span = Span(
            index=len(tracer.spans),
            name=name,
            labels=labels,
            parent=parent,
            depth=len(tracer._stack),
        )
        tracer.spans.append(span)
        self._span = span
        self._wall0 = 0.0

    def __enter__(self) -> Span:
        span = self._span
        self._tracer._stack.append(span.index)
        if self._vt is not None:
            span.v0 = _vnow(self._vt)
        self._wall0 = time.perf_counter()
        return span

    def __exit__(self, *exc) -> bool:
        span = self._span
        span.wall = time.perf_counter() - self._wall0
        if self._vt is not None:
            span.v1 = _vnow(self._vt)
        stack = self._tracer._stack
        if stack and stack[-1] == span.index:
            stack.pop()
        else:  # pragma: no cover - defensive against misnested exits
            try:
                stack.remove(span.index)
            except ValueError:
                pass
        return False


class Tracer:
    """Span store + metrics registry for one run (or one process).

    ``enabled`` defaults to the ``REPRO_OBS`` environment flag and is
    fixed for the tracer's lifetime: instrumentation sites test one
    attribute, never the environment.
    """

    __slots__ = ("enabled", "spans", "metrics", "_stack")

    def __init__(self, enabled: Optional[bool] = None,
                 max_series: int = 256):
        self.enabled = obs_enabled() if enabled is None else bool(enabled)
        self.spans: list[Span] = []
        self.metrics = Metrics(max_series=max_series) if self.enabled \
            else NULL_METRICS
        self._stack: list[int] = []

    def span(self, name: str, vt=None, **labels) -> ContextManager:
        """Open a traced region (use as a context manager).

        ``vt`` is an optional virtual-time source (``.vsec`` attribute
        or zero-arg callable); without it the span is wall-only.  When
        the tracer is disabled this returns the shared
        :data:`NULL_SPAN` — the identity fast path.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, vt, labels)

    def record_span(self, name: str, v0: float, v1: float,
                    wall: float = 0.0, **labels) -> Optional[Span]:
        """Record a completed span post-hoc (timestamps known already)."""
        if not self.enabled:
            return None
        parent = self._stack[-1] if self._stack else None
        span = Span(len(self.spans), name, labels, parent,
                    depth=len(self._stack))
        span.v0 = float(v0)
        span.v1 = float(v1)
        span.wall = float(wall)
        self.spans.append(span)
        return span

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        if self.enabled:
            self.metrics.reset()


#: Process-global tracer; lazily constructed from the env flag.
_current: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The current global tracer (created on first use)."""
    global _current
    if _current is None:
        _current = Tracer()
    return _current


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` globally (``None`` resets to lazy env default)."""
    global _current
    _current = tracer


@contextmanager
def use_tracer(tracer: Tracer):
    """Temporarily install ``tracer`` as the global tracer.

    The CLI's ``--trace`` flag and the test suite use this to trace one
    run with a fresh enabled tracer regardless of ``REPRO_OBS``.
    """
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
