"""Extra coverage: DIMACS-style normalization and Table-2 machinery."""

import numpy as np
import pytest

from repro.analysis.normalization import (
    NormalizationFactor,
    measure_machine_factor,
    normalize_times,
)


class TestNormalizationFactor:
    def test_apply_is_linear(self):
        f = NormalizationFactor(factor=2.5, local_seconds=0.5,
                                reference_seconds=1.25)
        assert f.apply(4.0) == pytest.approx(10.0)
        out = normalize_times([1.0, 2.0, 4.0], f)
        assert np.allclose(out, [2.5, 5.0, 10.0])

    def test_measured_factor_consistency(self):
        # factor * local == reference by construction.
        f = measure_machine_factor(repeats=1)
        assert f.factor * f.local_seconds == pytest.approx(
            f.reference_seconds
        )

    def test_repeats_take_min(self):
        # More repeats can only lower (or keep) the measured local time,
        # hence raise (or keep) the factor; both must stay positive.
        f1 = measure_machine_factor(repeats=1)
        assert f1.local_seconds > 0
        assert f1.factor > 0
