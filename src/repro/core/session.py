"""Resumable, cancellable solve sessions.

:func:`repro.core.driver.solve` is the one-call batch API: it builds a
simulator and blocks until the run is over.  The service layer
(:mod:`repro.service`) needs the same run as a *session object* it can
drive a few scheduler steps at a time, interleave with other jobs on an
event loop, cancel mid-flight, and observe while it runs.  That is what
:class:`SolveSession` provides — the driver's body, split out and made
cooperative:

* :meth:`run_steps` advances the discrete-event loop by a bounded number
  of steps and returns whether the run finished — the cooperative seam
  an asyncio scheduler yields between;
* :meth:`cancel` requests termination; the next slice finalizes with
  per-node reason ``"cancelled"``;
* ``on_incumbent`` is called as ``(vsec, length, node_id)`` every time
  the network-wide best tour improves — the event stream behind
  ``stream_incumbents`` in the service (and the same improvement
  semantics as :class:`repro.core.events.EventLog`);
* :attr:`consumed_vsec` exposes total virtual CPU for tenant budget
  accounting.

Determinism contract: the schedule is a pure function of node clocks and
the injected RNG, so a session sliced into arbitrary step chunks — or
cancelled and inspected mid-run — produces **bit-identical** tours to a
one-shot :func:`~repro.core.driver.solve` with the same seed.  The
driver itself runs through a session, so the two paths cannot drift.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from ..distributed.network import LatencyModel
from ..distributed.simulator import SimulationResult, Simulator
from ..localsearch.lin_kernighan import LKConfig
from .node import NodeConfig

__all__ = ["SolveSession", "build_node_config"]


def build_node_config(
    kick: str = "random_walk",
    c_v: int = 64,
    c_r: int = 256,
    inner_kicks: int = 5,
    target_length: Optional[int] = None,
    lk_config: LKConfig | None = None,
    backbone_support: float = 0.0,
    free_init: bool = False,
    kick_batch_width: int = 1,
    kick_batch_backend: str = "process",
    kernel: str | None = None,
) -> NodeConfig:
    """Assemble a :class:`NodeConfig` from :func:`solve`-style kwargs.

    ``kernel`` overrides ``lk_config.kernel`` when both are given —
    the same precedence the CLI and the service apply.
    """
    if kernel is not None:
        lk_config = replace(lk_config or LKConfig(), kernel=kernel)
    return NodeConfig(
        kick=kick,
        c_v=c_v,
        c_r=c_r,
        inner_kicks=inner_kicks,
        lk_config=lk_config or LKConfig(),
        target_length=target_length,
        backbone_support=backbone_support,
        free_init=free_init,
        kick_batch_width=kick_batch_width,
        kick_batch_backend=kick_batch_backend,
    )


class SolveSession:
    """One distributed CLK run as a steppable object.

    Accepts the same keyword surface as :func:`repro.core.driver.solve`
    (which is now a thin wrapper over this class).  The session owns a
    :class:`~repro.distributed.simulator.Simulator` and drives it
    through the ``begin``/``step``/``finalize`` seam.
    """

    def __init__(
        self,
        instance,
        budget_vsec_per_node: float,
        n_nodes: int = 8,
        kick: str = "random_walk",
        c_v: int = 64,
        c_r: int = 256,
        inner_kicks: int = 5,
        topology: str | dict = "hypercube",
        target_length: Optional[int] = None,
        lk_config: LKConfig | None = None,
        latency: LatencyModel | None = None,
        backbone_support: float = 0.0,
        free_init: bool = False,
        churn=None,
        dissemination: str = "broadcast",
        gossip_fanout: int = 3,
        kick_batch_width: int = 1,
        kick_batch_backend: str = "process",
        kernel: str | None = None,
        rng=None,
        on_incumbent: Optional[Callable[[float, int, int], None]] = None,
    ):
        if budget_vsec_per_node <= 0:
            raise ValueError("budget must be positive")
        config = build_node_config(
            kick=kick, c_v=c_v, c_r=c_r, inner_kicks=inner_kicks,
            target_length=target_length, lk_config=lk_config,
            backbone_support=backbone_support, free_init=free_init,
            kick_batch_width=kick_batch_width,
            kick_batch_backend=kick_batch_backend, kernel=kernel,
        )
        self.instance = instance
        self.budget_vsec_per_node = float(budget_vsec_per_node)
        self.simulator = Simulator(
            instance,
            n_nodes=n_nodes,
            node_config=config,
            topology=topology,
            latency=latency,
            churn=churn,
            dissemination=dissemination,
            gossip_fanout=gossip_fanout,
            rng=rng,
        )
        self.on_incumbent = on_incumbent
        self._started = False
        self._cancelled = False
        self._result: Optional[SimulationResult] = None
        self._best_length: Optional[int] = None

    # -- state ---------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the run has produced its result."""
        return self._result is not None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def best_length(self) -> Optional[int]:
        """Best tour length seen anywhere in the network so far."""
        return self._best_length

    @property
    def consumed_vsec(self) -> float:
        """Total virtual CPU consumed across all nodes so far."""
        return self.simulator.consumed_vsec

    def cancel(self) -> None:
        """Request cooperative termination; takes effect on the next
        :meth:`run_steps` slice (which then finalizes and returns True)."""
        self._cancelled = True

    # -- driving -------------------------------------------------------------

    def _note_progress(self, node) -> None:
        length = node.best_length
        if length is None:
            return
        if self._best_length is None or length < self._best_length:
            self._best_length = length
            if self.on_incumbent is not None:
                self.on_incumbent(node.clock, length, node.node_id)

    def run_steps(self, max_steps: Optional[int] = None) -> bool:
        """Advance the run by at most ``max_steps`` scheduler steps.

        Returns True when the run is finished (result available),
        False when more work remains.  ``max_steps=None`` runs to
        completion.  Safe to call after completion (returns True).
        """
        if self._result is not None:
            return True
        sim = self.simulator
        if not self._started:
            sim.begin(self.budget_vsec_per_node)
            self._started = True
        steps = 0
        while max_steps is None or steps < max_steps:
            if self._cancelled:
                self._result = sim.finalize("cancelled")
                return True
            node = sim.step()
            if node is None:
                self._result = sim.finalize()
                return True
            self._note_progress(node)
            steps += 1
        return False

    def run(self) -> SimulationResult:
        """Run to completion (or until cancelled) and return the result."""
        self.run_steps(None)
        return self.result()

    def result(self) -> SimulationResult:
        """The finished run's result; raises until :attr:`finished`."""
        if self._result is None:
            raise RuntimeError("session has not finished; call run_steps()")
        return self._result
