"""Paper Figure 2 (a, b): CLK anytime curves per kicking strategy.

    "Relation between tour length and CPU time for the Chained
    Lin-Kernighan algorithm from Applegate et al. using different DBM
    kicking strategies" — shown for fl1577 and sw24978.

Prints the averaged tour-length-vs-time series for the four kicks on the
fl-class and the national-class analogue, plus an ASCII rendering.
Shape to reproduce: strategies separate visibly on the fl-class (where
the paper shows Geometric/Close trapped high), and converge much closer
on the national instance.
"""

import numpy as np

from _common import (
    emit,
    KICKS,
    KICK_LABELS,
    N_RUNS,
    clk_budget,
    print_banner,
    reference,
    run_clk,
    seeds,
)
from repro.analysis import ascii_chart, average_traces, format_series

INSTANCES = ("fl150", "sw520")  # paper: fl1577, sw24978


def _experiment():
    out = {}
    for name in INSTANCES:
        budget = clk_budget(name)
        times = np.linspace(budget / 20, budget, 10)
        series = {}
        for kick in KICKS:
            traces = [
                run_clk(name, kick, s, budget=budget).trace
                for s in seeds(8000 + hash((name, kick)) % 500, N_RUNS)
            ]
            series[KICK_LABELS[kick]] = average_traces(traces, times)
        out[name] = (times, series)
    return out


def test_fig2_kick_strategies(once):
    out = once(_experiment)
    for name, (times, series) in out.items():
        ref, _ = reference(name)
        print_banner(
            f"Figure 2 ({'a' if name == INSTANCES[0] else 'b'}): "
            f"ABCC-CLK anytime curves on {name} "
            f"(avg of {N_RUNS} runs; reference {ref:.0f})"
        )
        emit(format_series(times, series))
        emit()
        emit(ascii_chart(times, series, title=f"{name}: length vs vsec"))
    # Shape: every curve is non-increasing.
    for _name, (times, series) in out.items():
        for label, vals in series.items():
            clean = [v for v in vals if np.isfinite(v)]
            assert all(a >= b - 1e-9 for a, b in zip(clean, clean[1:])), label
