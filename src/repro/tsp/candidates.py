"""Pluggable candidate-set providers for local search.

Candidate lists decide which edges local search is allowed to add, and
their choice is a first-order performance lever (Heins et al.: LKH's
behaviour "dances" with the candidate list; see PAPERS.md).  This module
makes the policy a config knob instead of a per-operator hard-wiring:

* ``knn``      — plain k-nearest neighbours (the LK default);
* ``quadrant`` — Concorde-style quadrant neighbours, better directional
  coverage on clustered geometric instances;
* ``alpha``    — Helsgaun alpha-nearness (Held-Karp 1-tree based, from
  :mod:`repro.baselines.alpha`): small lists of structurally likely
  edges, expensive to build, excellent for long runs;
* ``explicit`` — any precomputed ``(n, k)`` array (e.g. the tour-merging
  union graph).

Every provider guarantees the **distance-sorted-row invariant**: each
row contains distinct cities, never the city itself, sorted by
increasing instance distance (ties by city index).  The early break in
the operators' candidate scans (``d(u, v) >= gain -> stop``) is only
correct under this invariant, so providers that *select* by another
measure (alpha) still *order* each selected row by distance.

Built arrays are cached on the instance (all solvers of a distributed
run share one copy).
"""

from __future__ import annotations

import numpy as np

from ..utils.sanitize import check_candidate_rows, sanitize_enabled

__all__ = [
    "CandidateSet",
    "KNNCandidates",
    "QuadrantCandidates",
    "AlphaCandidates",
    "ExplicitCandidates",
    "CANDIDATE_SETS",
    "get_candidate_set",
    "candidate_set_names",
    "as_candidate_set",
]


class CandidateSet:
    """A candidate-list policy, independent of any instance.

    Subclasses implement :meth:`build`; :meth:`lists` /
    :meth:`row_lists` add per-instance caching.  ``k`` is the nominal
    row width (providers may build slightly narrower rows on tiny
    instances).
    """

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self, k: int = 8):
        if k < 1:
            raise ValueError(f"candidate list size must be >= 1, got {k}")
        self.k = int(k)

    # -- interface ----------------------------------------------------------

    def build(self, instance) -> np.ndarray:
        """Compute the ``(n, width)`` candidate array (uncached)."""
        raise NotImplementedError

    def cache_key(self) -> tuple:
        """Hashable identity of this policy (per-instance cache key)."""
        return (self.name, self.k)

    # -- caching wrappers ----------------------------------------------------

    def _checked(self, instance, array: np.ndarray) -> np.ndarray:
        """Sanitizer hook: verify the sorted-row invariant once per
        (instance, policy) under REPRO_SANITIZE=1 (results are cached on
        the instance, so re-verifying every call would only re-read the
        same array)."""
        if sanitize_enabled():
            marker = ("sanitized",) + self.cache_key()
            if marker not in instance._neighbor_cache:
                check_candidate_rows(
                    instance, array, context=f"candidate set {self.name!r}"
                )
                instance._neighbor_cache[marker] = True
        return array

    def lists(self, instance) -> np.ndarray:
        """Candidate array for ``instance`` (cached on the instance)."""
        key = ("cand",) + self.cache_key()
        cached = instance._neighbor_cache.get(key)
        if cached is None:
            cached = self.build(instance)
            cached.setflags(write=False)
            instance._neighbor_cache[key] = cached
        return self._checked(instance, cached)

    def row_lists(self, instance) -> list:
        """:meth:`lists` as per-city Python lists (the hot-loop form)."""
        key = ("cand-rows",) + self.cache_key()
        cached = instance._neighbor_cache.get(key)
        if cached is None:
            cached = [row.tolist() for row in self.lists(instance)]
            instance._neighbor_cache[key] = cached
        return cached

    def matrix(self, instance) -> tuple:
        """Padded ``(n, kmax)`` int32 candidate matrix plus validity mask.

        The contiguous-array form the vectorized kernels consume.  Built
        from :meth:`row_lists` so the two forms always agree row for row
        (including providers with uneven row widths); row ``i``'s first
        ``len(row_lists[i])`` entries are valid (``mask[i, j] = True``),
        the rest are zero-padded and masked out.  Both arrays are
        write-locked and cached on the instance.
        """
        key = ("cand-mat",) + self.cache_key()
        cached = instance._neighbor_cache.get(key)
        if cached is None:
            rows = self.row_lists(instance)
            n = len(rows)
            kmax = max((len(r) for r in rows), default=0)
            cmat = np.zeros((n, kmax), dtype=np.int32)
            mask = np.zeros((n, kmax), dtype=bool)
            for i, row in enumerate(rows):
                w = len(row)
                cmat[i, :w] = row
                mask[i, :w] = True
            cmat.setflags(write=False)
            mask.setflags(write=False)
            cached = (cmat, mask)
            instance._neighbor_cache[key] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(k={self.k})"


def _sorted_by_distance(instance, i: int, cand: np.ndarray) -> np.ndarray:
    """Row sorted by instance distance, ties by city index."""
    d = instance.dist_many(i, cand)
    return cand[np.lexsort((cand, d))]


class KNNCandidates(CandidateSet):
    """Plain k-nearest neighbours (delegates to the instance cache, so
    the arrays are bit-identical to the pre-engine ones)."""

    name = "knn"

    def build(self, instance) -> np.ndarray:  # pragma: no cover - delegated
        return instance.neighbor_lists(self.k)

    def lists(self, instance) -> np.ndarray:
        return self._checked(instance, instance.neighbor_lists(self.k))

    def row_lists(self, instance) -> list:
        if sanitize_enabled():
            self.lists(instance)  # one-time sorted-row verification
        return instance.neighbor_row_lists(self.k)


class QuadrantCandidates(CandidateSet):
    """Concorde-style quadrant neighbours (``k // 4`` per quadrant).

    Falls back to plain k-NN on non-geometric instances, where
    coordinate quadrants do not exist.
    """

    name = "quadrant"

    @property
    def per_quadrant(self) -> int:
        return max(1, self.k // 4)

    def build(self, instance) -> np.ndarray:  # pragma: no cover - delegated
        return self.lists(instance)

    def lists(self, instance) -> np.ndarray:
        if instance.is_geometric:
            return self._checked(
                instance, instance.quadrant_neighbor_lists(self.per_quadrant)
            )
        return self._checked(instance, instance.neighbor_lists(self.k))

    def row_lists(self, instance) -> list:
        if sanitize_enabled():
            self.lists(instance)  # one-time sorted-row verification
        if instance.is_geometric:
            return instance.quadrant_neighbor_row_lists(self.per_quadrant)
        return instance.neighbor_row_lists(self.k)


class AlphaCandidates(CandidateSet):
    """Helsgaun alpha-nearness candidates (Held-Karp 1-tree based).

    Rows *select* the ``k`` alpha-nearest neighbours but are *ordered*
    by instance distance to keep the sorted-row invariant (the
    operators' early break would otherwise prune incorrectly).  O(n^2)
    to build — intended for the LKH-style profile, not quick runs.
    """

    name = "alpha"

    def __init__(self, k: int = 5, ascent_iterations: int = 60):
        super().__init__(k)
        self.ascent_iterations = int(ascent_iterations)

    def cache_key(self) -> tuple:
        return (self.name, self.k, self.ascent_iterations)

    def build(self, instance) -> np.ndarray:
        # Imported lazily: baselines imports localsearch, which imports
        # this module for LKConfig validation.
        from ..baselines.alpha import alpha_candidate_lists

        rows = alpha_candidate_lists(
            instance, k=self.k, ascent_iterations=self.ascent_iterations
        )
        out = np.empty_like(rows)
        for i in range(rows.shape[0]):
            out[i] = _sorted_by_distance(instance, i, rows[i])
        return out


class ExplicitCandidates(CandidateSet):
    """Wrap a precomputed ``(n, k)`` candidate array.

    ``assume_sorted=False`` re-sorts every row by instance distance at
    :meth:`lists` time; pass ``True`` only when the rows already satisfy
    the sorted-row invariant (e.g.
    :func:`repro.baselines.tour_merging.union_candidate_lists`).
    """

    name = "explicit"

    _serial = 0  # distinguishes cache entries of different arrays

    def __init__(self, array: np.ndarray, assume_sorted: bool = True):
        array = np.asarray(array)
        if array.ndim != 2:
            raise ValueError(f"candidate array must be 2-D, got {array.shape}")
        super().__init__(array.shape[1])
        self.array = array
        self.assume_sorted = bool(assume_sorted)
        ExplicitCandidates._serial += 1
        self._key = ExplicitCandidates._serial

    def cache_key(self) -> tuple:
        return (self.name, self.k, self._key)

    def build(self, instance) -> np.ndarray:
        if instance.n != self.array.shape[0]:
            raise ValueError(
                f"candidate array covers {self.array.shape[0]} cities, "
                f"instance has {instance.n}"
            )
        if self.assume_sorted:
            return self.array.copy()
        out = np.empty_like(self.array)
        for i in range(self.array.shape[0]):
            out[i] = _sorted_by_distance(instance, i, self.array[i])
        return out


#: Registry of named, config-selectable providers.
CANDIDATE_SETS = {
    "knn": KNNCandidates,
    "quadrant": QuadrantCandidates,
    "alpha": AlphaCandidates,
}


def candidate_set_names() -> tuple:
    """Names accepted by ``LKConfig.candidate_set`` / :func:`get_candidate_set`."""
    return tuple(sorted(CANDIDATE_SETS))


def get_candidate_set(name: str, k: int = 8, **kwargs) -> CandidateSet:
    """Instantiate a provider by registry name."""
    try:
        cls = CANDIDATE_SETS[name]
    except KeyError:
        raise ValueError(
            f"unknown candidate set {name!r}; known: {candidate_set_names()}"
        ) from None
    return cls(k=k, **kwargs)


def as_candidate_set(candidates) -> CandidateSet:
    """Coerce a provider, array, or registry name into a provider."""
    if isinstance(candidates, CandidateSet):
        return candidates
    if isinstance(candidates, str):
        return get_candidate_set(candidates)
    return ExplicitCandidates(np.asarray(candidates))
