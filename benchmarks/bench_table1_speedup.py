"""Paper Table 1: speed-up to fixed quality levels.

    "Speed-up with instances pr2392, fl3795 and fi10639 ... CPU time per
    node [sec] to reach a distance to the optimum, and the speed-up
    factor of the 8-node variant over ABCC-CLK in total CPU time."

For each instance: mean per-node time for ABCC-CLK, DistCLK(1 node) and
DistCLK(8 nodes) to reach 0.5% / 0.2% / best-known, plus the total-CPU
speed-up factors.  Shape to reproduce: the 8-node variant reaches each
level in far less per-node time; total-CPU factors around or above 1
(the paper reports super-linear cells, i.e. factors > 1 in this
normalization) at the deeper quality levels.
"""

from _common import (
    emit,
    N_NODES,
    N_RUNS,
    clk_budget,
    print_banner,
    reference,
    run_clk,
    run_dist,
    seeds,
)
from repro.analysis import fmt_time, format_table, speedup_table

INSTANCES = ("pr200", "fl300", "fi450")  # paper: pr2392, fl3795, fi10639
LEVELS = (0.5, 0.2, 0.0)  # percent above reference


def _experiment():
    out = {}
    for name in INSTANCES:
        ref, kind = reference(name)
        budget = clk_budget(name)
        clk_traces = [
            run_clk(name, "random_walk", s, budget=budget, target=ref).trace
            for s in seeds(7000, N_RUNS)
        ]
        single_traces = [
            run_dist(name, "random_walk", s, n_nodes=1, budget=budget,
                     target=ref).global_trace
            for s in seeds(7100, N_RUNS)
        ]
        multi_traces = [
            run_dist(name, "random_walk", s, n_nodes=N_NODES,
                     budget=budget / N_NODES * 2, target=ref).global_trace
            for s in seeds(7200, N_RUNS)
        ]
        labels_targets = [
            (f"{lvl}%" if lvl else "best-known", ref * (1 + lvl / 100.0))
            for lvl in LEVELS
        ]
        out[name] = speedup_table(
            labels_targets, clk_traces, single_traces, multi_traces, N_NODES
        )
    return out


def test_table1_speedup(once):
    out = once(_experiment)
    print_banner(
        "Table 1: per-node vsec to reach quality levels and total-CPU "
        "speed-up factors",
        f"averages over {N_RUNS} runs; '-' = level not reached in budget.",
    )
    rows = []
    for name, levels in out.items():
        for row in levels:
            rows.append((
                name,
                row.label,
                fmt_time(row.clk_vsec, 2),
                fmt_time(row.single_vsec, 2),
                fmt_time(row.multi_vsec, 2),
                fmt_time(row.factor_vs_clk, 2),
                fmt_time(row.factor_vs_single, 2),
            ))
    emit(format_table(
        ["instance", "level", "ABCC-CLK", "1 node", f"{N_NODES} nodes",
         "factor vs CLK", "factor vs 1-node"],
        rows,
    ))

    # Shape: at every level both sides reached, the 8-node variant's
    # per-node time beats the sequential ones.
    checked = wins = 0
    for levels in out.values():
        for row in levels:
            if row.clk_vsec is not None and row.multi_vsec is not None:
                checked += 1
                wins += row.multi_vsec <= row.clk_vsec + 1e-9
    emit(f"\nshape check: 8-node per-node time <= CLK time in "
          f"{wins}/{checked} comparable levels")
    assert checked > 0
    assert wins >= int(0.8 * checked)
