"""Simulated peer-to-peer network with a latency model.

Each node has an inbox of timestamped messages.  ``broadcast`` enqueues a
copy of the message to every topology neighbour with arrival time
``sent_at + latency(message)``; ``collect`` drains a node's inbox up to
its current virtual clock.  The latency model is ``fixed + bytes/bandwidth``
(both in virtual seconds); with the defaults, delivering a 1 000-city tour
costs ~2 ms of virtual time — matching the paper's observation that
communication overhead is negligible next to CLK work.  Ablation benches
crank the latency up to probe sensitivity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .message import Message, MessageKind
from .topology import validate_topology

__all__ = ["LatencyModel", "SimulatedNetwork", "NetworkStats"]


@dataclass(frozen=True)
class LatencyModel:
    """Message delay in virtual seconds: ``fixed + size_bytes / bandwidth``."""

    fixed_vsec: float = 1e-3
    bytes_per_vsec: float = 5e6

    def delay(self, message: Message) -> float:
        return self.fixed_vsec + message.size_bytes() / self.bytes_per_vsec


@dataclass
class NetworkStats:
    """Aggregate counters mirroring the paper's §4 message analysis.

    Topology broadcasts and gossip pushes are counted separately: the
    paper's broadcast statistics (broadcasts per run, per-node rates)
    only make sense for the neighbour-flooding path, while gossip sends
    go to arbitrary peers and would skew those numbers if merged.
    ``messages`` / ``tour_messages`` / ``notification_messages`` count
    message *copies* across both dissemination modes.
    """

    broadcasts: int = 0
    #: Gossip (explicit-target) sends, counted apart from broadcasts.
    gossip_pushes: int = 0
    messages: int = 0
    tour_messages: int = 0
    notification_messages: int = 0
    #: Message copies drained by receivers (conservation accounting:
    #: messages == delivered + dropped + in-flight at all times).
    delivered: int = 0
    #: Copies discarded in transit.  Always 0 for the lossless simulated
    #: transport; the counter keeps the conservation identity checkable
    #: for future lossy latency models.
    dropped: int = 0
    #: (sender, sent_at) per broadcast, for the timing histogram.
    broadcast_log: list = field(default_factory=list)
    #: (sender, sent_at) per gossip tour push.
    gossip_log: list = field(default_factory=list)


class SimulatedNetwork:
    """Deterministic message transport over a fixed topology."""

    def __init__(self, topology: dict[int, tuple[int, ...]],
                 latency: LatencyModel | None = None,
                 require_connected: bool = False,
                 metrics=None):
        # Partitioned topologies are legal for the transport (isolated
        # nodes simply never receive anything); callers wanting a
        # guarantee pass require_connected=True.
        validate_topology(topology, require_connected=require_connected)
        self.topology = topology
        self.latency = latency or LatencyModel()
        self._inboxes: dict[int, list] = {i: [] for i in topology}
        self._seq = 0
        self.stats = NetworkStats()
        #: Optional observability registry (repro.obs.Metrics); when set,
        #: collect() records per-message delivery latency and the inbox
        #: depth it found.  None keeps the transport observability-free.
        self.metrics = metrics

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        return self.topology[node_id]

    def broadcast(self, sender: int, kind: MessageKind, length: int,
                  order=None, sent_at: float = 0.0) -> int:
        """Send a message to every neighbour of ``sender``.

        Returns the number of copies enqueued.  Copies share the payload
        array (immutable by convention: see ``tour_payload``).
        """
        self._seq += 1
        msg = Message(
            kind=kind, sender=sender, length=length, order=order,
            sent_at=sent_at, seq=self._seq,
        )
        delay = self.latency.delay(msg)
        count = 0
        for dst in self.topology[sender]:
            heapq.heappush(self._inboxes[dst], (sent_at + delay, msg.seq, msg))
            count += 1
        self.stats.broadcasts += 1
        self.stats.messages += count
        if kind is MessageKind.TOUR:
            self.stats.tour_messages += count
            self.stats.broadcast_log.append((sender, sent_at))
        else:
            self.stats.notification_messages += count
        return count

    def send(self, sender: int, targets, kind: MessageKind, length: int,
             order=None, sent_at: float = 0.0) -> int:
        """Send one message to an explicit target list (gossip push).

        Unlike :meth:`broadcast` the targets need not be topology
        neighbours; the latency model applies identically.
        """
        self._seq += 1
        msg = Message(
            kind=kind, sender=sender, length=length, order=order,
            sent_at=sent_at, seq=self._seq,
        )
        delay = self.latency.delay(msg)
        count = 0
        for dst in targets:
            if dst not in self._inboxes:
                raise KeyError(f"unknown node {dst}")
            heapq.heappush(self._inboxes[dst], (sent_at + delay, msg.seq, msg))
            count += 1
        self.stats.gossip_pushes += 1
        self.stats.messages += count
        if kind is MessageKind.TOUR:
            self.stats.tour_messages += count
            self.stats.gossip_log.append((sender, sent_at))
        else:
            self.stats.notification_messages += count
        return count

    def collect(self, node_id: int, up_to: float) -> list[Message]:
        """Drain messages that have arrived at ``node_id`` by time ``up_to``."""
        inbox = self._inboxes[node_id]
        metrics = self.metrics
        if metrics is not None:
            metrics.observe("net.queue_depth", len(inbox), node=node_id)
        out = []
        while inbox and inbox[0][0] <= up_to:
            arrival, _seq, msg = heapq.heappop(inbox)
            if metrics is not None:
                # Transit latency (virtual seconds): the latency-model
                # delay; exported per message kind for the summarizer.
                metrics.observe(
                    "net.msg_latency_vsec", arrival - msg.sent_at,
                    kind=msg.kind.name,
                )
            out.append(msg)
        self.stats.delivered += len(out)
        return out

    def pending(self, node_id: int) -> int:
        """Messages still in flight / undelivered for a node."""
        return len(self._inboxes[node_id])

    def earliest_arrival(self, node_id: int) -> float | None:
        """Arrival time of the next undelivered message, if any."""
        inbox = self._inboxes[node_id]
        return inbox[0][0] if inbox else None
