"""The paper's contribution: the distributed CLK evolutionary algorithm."""

from .driver import ReplicateSummary, replicate, solve
from .events import Event, EventKind, EventLog
from .node import EANode, NodeConfig, SelectOutcome
from .session import SolveSession, build_node_config

__all__ = [
    "solve",
    "replicate",
    "ReplicateSummary",
    "SolveSession",
    "build_node_config",
    "EANode",
    "NodeConfig",
    "SelectOutcome",
    "Event",
    "EventKind",
    "EventLog",
]
