"""Property-based tests (hypothesis) on core invariants.

Strategy: generate random coordinate sets / permutations / operation
sequences and assert the structural invariants every solver relies on:
permutation validity, position-inverse consistency, incremental-length
correctness, metric properties of distances, and LK never corrupting or
worsening a tour.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.localsearch import LKConfig, lin_kernighan, two_opt
from repro.localsearch.kicks import apply_double_bridge, random_kick
from repro.tsp import distances as D
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import Tour

# -- strategies ----------------------------------------------------------------


@st.composite
def coord_instances(draw, min_n=5, max_n=40):
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 10_000, size=(n, 2))
    # Avoid duplicate points (degenerate zero edges are legal but noisy).
    coords += np.arange(n)[:, None] * 1e-3
    return TSPInstance(coords=coords, name=f"hyp{n}-{seed}")


@st.composite
def instance_and_perm(draw):
    inst = draw(coord_instances())
    seed = draw(st.integers(0, 2**31 - 1))
    order = np.random.default_rng(seed).permutation(inst.n)
    return inst, order


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- distance properties ---------------------------------------------------------


@given(st.integers(0, 2**31 - 1), st.integers(4, 30))
@settings(max_examples=40, **COMMON)
def test_distance_matrix_symmetric_nonnegative(seed, n):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 5000, size=(n, 2))
    m = D.pairwise_matrix(coords, "EUC_2D")
    assert np.array_equal(m, m.T)
    assert np.all(m >= 0)
    assert np.all(np.diag(m) == 0)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=30, **COMMON)
def test_vectorized_matches_scalar_closure(seed):
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 3000, size=(12, 2))
    for ewt in ("EUC_2D", "CEIL_2D", "ATT"):
        m = D.pairwise_matrix(coords, ewt)
        f = D.distance_closure(coords, ewt)
        i, j = rng.integers(12), rng.integers(12)
        assert m[i, j] == f(int(i), int(j))


# -- tour invariants ---------------------------------------------------------------


@given(instance_and_perm())
@settings(max_examples=40, **COMMON)
def test_tour_construction_invariants(data):
    inst, order = data
    t = Tour(inst, order)
    assert t.is_valid()
    assert t.length == t.recompute_length()
    assert t.length == inst.tour_length(order)


@given(instance_and_perm(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, **COMMON)
def test_reverse_segment_preserves_permutation(data, seed):
    inst, order = data
    t = Tour(inst, order)
    rng = np.random.default_rng(seed)
    for _ in range(8):
        i, j = int(rng.integers(inst.n)), int(rng.integers(inst.n))
        t.reverse_segment(i, j)
        assert t.is_valid()
    t.length = t.recompute_length()
    assert t.length == inst.tour_length(t.order)


@given(instance_and_perm(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, **COMMON)
def test_double_bridge_incremental_length(data, seed):
    inst, order = data
    if inst.n < 8:
        return
    t = Tour(inst, order)
    rng = np.random.default_rng(seed)
    for _ in range(5):
        pos = random_kick(t, rng)
        apply_double_bridge(t, pos)
        assert t.is_valid()
        assert t.length == t.recompute_length()


@given(instance_and_perm())
@settings(max_examples=25, **COMMON)
def test_canonical_equality_under_rotation_reflection(data):
    inst, order = data
    t = Tour(inst, order)
    k = inst.n // 2
    assert t == Tour(inst, np.roll(order, k))
    assert t == Tour(inst, order[::-1].copy())


# -- local search invariants --------------------------------------------------------


@given(instance_and_perm())
@settings(max_examples=20, **COMMON)
def test_two_opt_invariants(data):
    inst, order = data
    t = Tour(inst, order)
    before = t.length
    gain = two_opt(t, neighbor_k=5)
    assert t.is_valid()
    assert gain >= 0
    assert t.length == before - gain
    assert t.length == t.recompute_length()


@given(instance_and_perm())
@settings(max_examples=15, **COMMON)
def test_lk_invariants(data):
    inst, order = data
    t = Tour(inst, order)
    before = t.length
    gain = lin_kernighan(t, LKConfig(neighbor_k=5, max_depth=12))
    assert t.is_valid()
    assert gain >= 0
    assert t.length == before - gain
    assert t.length == t.recompute_length()


@given(instance_and_perm(), st.integers(0, 2**31 - 1))
@settings(max_examples=10, **COMMON)
def test_kick_then_lk_never_corrupts(data, seed):
    """The CLK inner loop invariant: any kick+LK sequence keeps a valid
    tour with a consistent incremental length."""
    inst, order = data
    if inst.n < 8:
        return
    t = Tour(inst, order)
    rng = np.random.default_rng(seed)
    from repro.localsearch import LinKernighan

    engine = LinKernighan(inst, LKConfig(neighbor_k=5, max_depth=10))
    engine.optimize(t)
    for _ in range(4):
        dirty = apply_double_bridge(t, random_kick(t, rng))
        engine.optimize(t, dirty=dirty)
        assert t.is_valid()
        assert t.length == t.recompute_length()


# -- hilbert curve ------------------------------------------------------------------


@given(st.integers(1, 6))
@settings(max_examples=6, **COMMON)
def test_hilbert_bijection_property(order):
    from repro.construct.space_filling import hilbert_index

    side = 1 << order
    xs, ys = np.meshgrid(np.arange(side), np.arange(side))
    idx = hilbert_index(xs.ravel(), ys.ravel(), order=order)
    assert sorted(idx.tolist()) == list(range(side * side))
