"""Cook & Seymour-style tour merging baseline (TM-CLK).

The original algorithm runs k independent CLK runs, forms the graph union
of their edge sets (a very sparse graph that usually contains a
near-optimal — sometimes optimal — tour), and finds the best Hamiltonian
cycle in that union exactly via branch decomposition.

Substitution (documented in DESIGN.md): the exact branch-decomposition DP
is replaced by *restricted local search* — LK whose candidate lists are
exactly the union-graph adjacencies, started from the best of the k
tours.  This keeps the defining mechanism (recombining edges that
different local optima agree on) at a fraction of the implementation
weight; on the testbed the union graph is dense enough in good edges that
restricted LK recovers most of the exact method's benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..localsearch.chained_lk import ChainedLK
from ..localsearch.lin_kernighan import LinKernighan, LKConfig
from ..tsp.candidates import ExplicitCandidates
from ..tsp.tour import Tour
from ..utils.rng import ensure_rng, spawn_rngs
from ..utils.work import OPS_PER_VSEC, WorkMeter

__all__ = ["TourMergingResult", "tour_merging", "union_candidate_lists"]


@dataclass
class TourMergingResult:
    """Outcome of a tour-merging run."""

    tour: Tour
    source_lengths: list
    union_edges: int
    work_vsec: float
    trace: list = field(default_factory=list)

    @property
    def length(self) -> int:
        return self.tour.length


def union_candidate_lists(
    instance, tours: list[Tour], extra_edges=None
) -> np.ndarray:
    """Adjacency lists of the union graph of the tours' edges.

    Rows are padded to equal width so the LK engine can consume them
    like ordinary neighbour arrays; each row is sorted by distance and
    short rows repeat their *farthest* entry, which keeps the
    distance-sorted-row invariant intact (cycling from the nearest one
    would not).

    ``extra_edges`` (an ``(m, 2)`` integer array) unions additional
    pairs into the graph — the divide-and-optimize boundary repair
    (:mod:`repro.divide.repair`) passes the partition's cross-region
    edges here so restricted local search can move across seams the
    region tours never saw.
    """
    n = instance.n
    adj: list[set[int]] = [set() for _ in range(n)]
    for tour in tours:
        order = tour.order
        nxt = np.roll(order, -1)
        for a, b in zip(order, nxt):
            adj[int(a)].add(int(b))
            adj[int(b)].add(int(a))
    if extra_edges is not None:
        for a, b in np.asarray(extra_edges, dtype=np.int64):
            adj[int(a)].add(int(b))
            adj[int(b)].add(int(a))
    width = max(len(s) for s in adj)
    out = np.empty((n, width), dtype=np.int32)
    for i, s in enumerate(adj):
        cand = np.fromiter(s, dtype=np.int64, count=len(s))
        d = instance.dist_many(i, cand)
        cand = cand[np.lexsort((cand, d))]
        out[i, :len(cand)] = cand
        out[i, len(cand):] = cand[-1]
    return out


def tour_merging(
    instance,
    n_tours: int = 10,
    clk_kicks: int | None = None,
    budget_vsec: float | None = None,
    kick: str = "geometric",
    rng=None,
) -> TourMergingResult:
    """Generate ``n_tours`` CLK tours, then optimize inside their union.

    ``clk_kicks`` defaults to the instance size (the paper's TM-CLK data
    uses N iterations with the Geometric kick).
    """
    rng = ensure_rng(rng)
    rngs = spawn_rngs(rng, n_tours + 1)
    meter = (
        WorkMeter.with_vsec_budget(budget_vsec)
        if budget_vsec is not None
        else WorkMeter()
    )
    kicks = clk_kicks if clk_kicks is not None else instance.n
    trace: list = []

    tours: list[Tour] = []
    for r in rngs[:-1]:
        if tours and meter.exhausted():
            break
        solver = ChainedLK(instance, kick=kick, rng=r)
        remaining = meter.remaining_ops() / OPS_PER_VSEC
        result = solver.run(
            max_kicks=kicks,
            budget_vsec=remaining if np.isfinite(remaining) else None,
        )
        meter.tick(int(result.work_vsec * OPS_PER_VSEC))
        tours.append(result.tour)
        trace.append((meter.vsec, min(t.length for t in tours)))

    # Merge: restricted LK over the union graph from the best source tour.
    candidates = union_candidate_lists(instance, tours)
    config = LKConfig(
        neighbor_k=candidates.shape[1], max_depth=64, breadth=(8, 4, 2)
    )
    lk = LinKernighan(
        instance, config,
        candidates=ExplicitCandidates(candidates, assume_sorted=True),
    )
    best = min(tours, key=lambda t: t.length).copy()
    lk.optimize(best, meter)
    trace.append((meter.vsec, best.length))

    return TourMergingResult(
        tour=best,
        source_lengths=[t.length for t in tours],
        union_edges=_count_union_edges(tours),
        work_vsec=meter.vsec,
        trace=trace,
    )


def _count_union_edges(tours: list[Tour]) -> int:
    edges = set()
    for t in tours:
        edges |= t.edge_set()
    return len(edges)
