"""Walshaw's multilevel Chained Lin-Kernighan baseline (MLC_N LK).

The multilevel scheme coarsens the instance by repeatedly *matching* each
city with its nearest unmatched neighbour and merging the pair into one
super-city at their midpoint.  The coarsest instance is solved directly;
then each level is uncoarsened — every super-city expands back into its
pair, which enters the tour as a fixed edge — and the expanded tour is
refined with a kick-budgeted CLK (Walshaw uses N/10 or N kicks at level
size N).

Profile reproduced from the paper's Table 2: much faster than plain CLK to
a first good tour, final quality slightly below a long CLK/DistCLK run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from ..localsearch.chained_lk import ChainedLK
from ..localsearch.lin_kernighan import LKConfig
from ..tsp.instance import TSPInstance
from ..tsp.tour import Tour
from ..utils.rng import ensure_rng
from ..utils.work import OPS_PER_VSEC, WorkMeter

__all__ = ["MultilevelResult", "multilevel_clk", "coarsen_once"]


@dataclass
class _Level:
    """One coarsening level."""

    instance: TSPInstance
    #: children[c] = (i,) or (i, j): finer-level cities merged into c.
    children: list


@dataclass
class MultilevelResult:
    """Outcome of a multilevel run."""

    tour: Tour
    levels: int
    work_vsec: float
    trace: list = field(default_factory=list)

    @property
    def length(self) -> int:
        return self.tour.length


def coarsen_once(instance: TSPInstance, rng) -> tuple[TSPInstance, list]:
    """Match nearest unmatched pairs, merge each pair at its midpoint.

    Returns ``(coarser_instance, children)``; unmatched leftovers carry
    over as singleton children.
    """
    if instance.coords is None:
        raise ValueError("multilevel coarsening requires coordinates")
    n = instance.n
    coords = instance.coords
    tree = cKDTree(coords)
    k = min(n, 8)
    _, idx = tree.query(coords, k=k)
    idx = np.atleast_2d(idx)

    matched = np.full(n, -1, dtype=np.intp)
    order = ensure_rng(rng).permutation(n)
    for i in order:
        if matched[i] >= 0:
            continue
        for j in idx[i]:
            j = int(j)
            if j != i and matched[j] < 0:
                matched[i] = j
                matched[j] = i
                break

    children: list = []
    new_coords = []
    seen = np.zeros(n, dtype=bool)
    for i in range(n):
        if seen[i]:
            continue
        j = int(matched[i])
        if j >= 0 and not seen[j]:
            seen[i] = seen[j] = True
            children.append((i, j))
            new_coords.append((coords[i] + coords[j]) / 2.0)
        else:
            seen[i] = True
            children.append((i,))
            new_coords.append(coords[i])
    coarse = TSPInstance(
        coords=np.array(new_coords),
        edge_weight_type=instance.edge_weight_type,
        name=f"{instance.name}-c{len(children)}",
        comment=f"coarsened from {instance.name}",
    )
    return coarse, children


def _expand(fine: TSPInstance, coarse_tour: Tour, children: list) -> Tour:
    """Uncoarsen: replace each super-city by its pair, best orientation."""
    order: list[int] = []
    prev_city = None
    for c in coarse_tour.order:
        kids = children[int(c)]
        if len(kids) == 1:
            order.append(kids[0])
            prev_city = kids[0]
        else:
            i, j = kids
            if prev_city is None:
                order.extend((i, j))
            else:
                # Attach whichever endpoint is closer to the predecessor.
                if fine.dist(prev_city, i) <= fine.dist(prev_city, j):
                    order.extend((i, j))
                else:
                    order.extend((j, i))
            prev_city = order[-1]
    return Tour(fine, np.array(order, dtype=np.intp))


def multilevel_clk(
    instance,
    kicks_per_city: float = 0.1,
    coarsest_size: int = 12,
    budget_vsec: float | None = None,
    lk_config: LKConfig | None = None,
    rng=None,
) -> MultilevelResult:
    """Multilevel CLK: coarsen to ``coarsest_size``, refine on the way up.

    ``kicks_per_city`` is Walshaw's kick schedule: the CLK refinement at a
    level with N cities runs ``ceil(kicks_per_city * N)`` kicks (the
    paper's comparison uses MLC_{N/10}LK, i.e. 0.1, and MLC_N LK, 1.0).
    """
    rng = ensure_rng(rng)
    meter = (
        WorkMeter.with_vsec_budget(budget_vsec)
        if budget_vsec is not None
        else WorkMeter()
    )
    trace: list = []

    # Coarsening phase.
    levels: list[_Level] = [_Level(instance, [])]
    current = instance
    while current.n > coarsest_size:
        coarse, children = coarsen_once(current, rng)
        meter.tick(current.n)
        if coarse.n == current.n:  # nothing matched; give up coarsening
            break
        levels.append(_Level(coarse, children))
        current = coarse

    # Solve the coarsest level with a generously kicked CLK.
    solver = ChainedLK(current, lk_config=lk_config, rng=rng)
    remaining = meter.remaining_ops() / OPS_PER_VSEC
    result = solver.run(
        max_kicks=max(20, 2 * current.n),
        budget_vsec=remaining if np.isfinite(remaining) else None,
    )
    meter.tick(int(result.work_vsec * OPS_PER_VSEC))
    tour = result.tour
    trace.append((meter.vsec, tour.length))

    # Uncoarsening + refinement phase.
    for level_idx in range(len(levels) - 1, 0, -1):
        fine = levels[level_idx - 1].instance
        children = levels[level_idx].children
        tour = _expand(fine, tour, children)
        solver = ChainedLK(fine, lk_config=lk_config, rng=rng)
        kicks = int(np.ceil(kicks_per_city * fine.n))
        solver.lk.optimize(tour, meter)
        best = tour
        for _ in range(kicks):
            if meter.exhausted():
                break
            cand = solver.step(best, meter)
            if cand.length <= best.length:
                best = cand
        tour = best
        trace.append((meter.vsec, tour.length))
        if meter.exhausted():
            # Expand the remaining levels without refinement.
            for li in range(level_idx - 1, 0, -1):
                tour = _expand(
                    levels[li - 1].instance, tour, levels[li].children
                )
            break

    return MultilevelResult(
        tour=tour, levels=len(levels), work_vsec=meter.vsec, trace=trace
    )
