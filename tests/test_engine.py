"""Tests for the shared local-search engine layer.

Covers the engine primitives (DistView, DontLookQueue, OpStats), the
operator registry and pipelines, cross-operator invariants over a shared
candidate set, and the telemetry threading through ChainedLK, EANode and
the simulator.
"""

import numpy as np
import pytest

from repro.construct import quick_boruvka
from repro.core import solve
from repro.localsearch import (
    ChainedLK,
    DistView,
    DontLookQueue,
    LKConfig,
    LinKernighan,
    OpStats,
    get_operator,
    lin_kernighan,
    operator_names,
    or_opt,
    run_pipeline,
    two_opt,
)
from repro.tsp import generators, get_candidate_set
from repro.tsp.tour import random_tour
from repro.utils.rng import ensure_rng
from repro.utils.work import WorkMeter


class TestDistView:
    def test_row_and_scalar_paths_agree(self, small_instance):
        row = DistView(small_instance)
        scalar = DistView(small_instance, prefer_rows=False)
        assert row.rows is not None
        assert scalar.rows is None
        for i in (0, 7, 31):
            for j in (3, 17, 59):
                assert row.dist(i, j) == scalar.dist(i, j)
                assert row.dist(i, j) == small_instance.dist(i, j)

    def test_row_access(self, small_instance):
        view = DistView(small_instance)
        r = view.row(5)
        assert r is view.rows[5]
        assert r[9] == small_instance.dist(5, 9)
        assert DistView(small_instance, prefer_rows=False).row(5) is None

    def test_rows_shared_across_views(self, small_instance):
        a = DistView(small_instance)
        b = DistView(small_instance)
        assert a.rows is b.rows  # one cached copy per instance


class TestDontLookQueue:
    def test_fifo_no_duplicates(self):
        q = DontLookQueue(5)
        q.seed([3, 1, 4])
        q.push(3)  # already queued: no-op
        assert len(q) == 3
        assert [q.pop(), q.pop(), q.pop()] == [3, 1, 4]
        assert not q

    def test_wakeups_count_only_reactivations(self):
        q = DontLookQueue(6)
        q.seed(range(4))
        assert q.wakeups == 0
        q.push(0)  # in queue: not a wakeup
        assert q.wakeups == 0
        q.pop()
        q.push(0)  # re-activation
        assert q.wakeups == 1
        q.seed([4, 5])  # seeding is not a wakeup
        assert q.wakeups == 1
        assert len(q) == 6

    def test_seed_skips_already_queued(self):
        q = DontLookQueue(4)
        q.seed([2, 2, 3])
        assert len(q) == 2
        assert q.pop() == 2

    def test_clear(self):
        q = DontLookQueue(3)
        q.fill(range(3))
        q.clear()
        assert not q
        q.push(1)
        assert len(q) == 1


class TestOpStats:
    def test_merge_and_subtract(self):
        a = OpStats(calls=1, candidate_scans=10, gain=5)
        b = OpStats(calls=2, candidate_scans=3, moves=4)
        a0 = a.copy()
        a.merge(b)
        assert a.calls == 3 and a.candidate_scans == 13 and a.moves == 4
        # Subtraction windows a span of work back out of a running total.
        assert a - b == a0

    def test_json_roundtrip(self):
        s = OpStats(calls=2, flips_applied=7, segment_swaps=11, gain=99)
        assert OpStats.from_json(s.to_json()) == s

    def test_from_json_tolerates_old_files(self):
        assert OpStats.from_json(None) == OpStats()
        assert OpStats.from_json({}) == OpStats()
        partial = OpStats.from_json({"calls": 3})
        assert partial.calls == 3 and partial.gain == 0

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError, match="unknown"):
            OpStats(not_a_counter=1)

    def test_copy_is_independent(self):
        a = OpStats(moves=1)
        b = a.copy()
        b.moves = 9
        assert a.moves == 1


class TestRegistry:
    def test_known_operators(self):
        assert set(operator_names()) >= {"two_opt", "or_opt", "three_opt", "lk"}
        assert get_operator("two_opt") is two_opt
        assert get_operator("or_opt") is or_opt

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError, match="unknown operator"):
            get_operator("five_opt")

    def test_run_pipeline(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        before = t.length
        stats = OpStats()
        gain = run_pipeline(t, ("lk", "or_opt"), stats=stats)
        assert t.is_valid()
        assert t.length == t.recompute_length() == before - gain
        assert stats.calls >= 2  # every stage flushed into the shared sink

    def test_pipeline_shares_candidates(self, small_instance, rng):
        provider = get_candidate_set("knn", k=6)
        t = random_tour(small_instance, rng)
        run_pipeline(t, ("two_opt", "or_opt"), candidates=provider)
        assert t.is_valid()


class TestStatsTelemetry:
    def test_lk_counts_are_consistent(self, small_instance, rng):
        engine = LinKernighan(small_instance)
        t = random_tour(small_instance, rng)
        engine.optimize(t)
        s = engine.stats
        assert s.calls == 1
        assert s.candidate_scans > 0
        assert s.flips_applied >= s.flips_undone
        assert s.segment_swaps > 0
        assert s.gain > 0
        # Net flips kept across the whole call produced the final tour.
        assert s.moves > 0

    def test_stats_deterministic(self, small_instance):
        runs = []
        for _ in range(2):
            engine = LinKernighan(small_instance)
            t = random_tour(small_instance, ensure_rng(99))
            engine.optimize(t)
            runs.append((engine.stats.copy(), t.length))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    def test_two_opt_external_sink(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        stats = OpStats()
        gain = two_opt(t, stats=stats)
        assert stats.calls == 1
        assert stats.gain == gain
        assert stats.candidate_scans > 0

    def test_wrapper_merges_stats(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        sink = OpStats(calls=5)  # pre-existing counts are preserved
        lin_kernighan(t, stats=sink)
        assert sink.calls == 6

    def test_chained_lk_windows_per_run(self, small_instance):
        solver = ChainedLK(small_instance, rng=3)
        r1 = solver.run(max_kicks=4)
        r2 = solver.run(max_kicks=4, initial=r1.tour)
        # Per-run windows, not lifetime cumulative: they sum to the total.
        lifetime = solver.stats
        merged = r1.op_stats.copy().merge(r2.op_stats)
        assert merged == lifetime
        assert r1.op_stats.calls > 0

    def test_chained_lk_polish(self, small_instance):
        plain = ChainedLK(small_instance, rng=5).run(max_kicks=4)
        polished = ChainedLK(
            small_instance, rng=5, polish=("or_opt", "two_opt")
        ).run(max_kicks=4)
        assert polished.tour.is_valid()
        assert polished.length <= plain.length
        assert polished.tour.length == polished.tour.recompute_length()

    def test_node_and_simulator_totals(self):
        inst = generators.uniform(40, rng=60)
        res = solve(inst, budget_vsec_per_node=0.3, n_nodes=2,
                    topology="ring", rng=8)
        assert set(res.op_stats) == {0, 1}
        total = res.total_op_stats()
        assert total.calls == sum(s.calls for s in res.op_stats.values())
        assert total.candidate_scans > 0


class TestCrossOperatorInvariant:
    def test_lk_result_is_two_opt_optimal_same_candidates(self):
        # LK flips subsume 2-opt moves, so over the *same* candidate set
        # the LK fixed point must leave nothing for 2-opt.
        for seed in range(4):
            inst = generators.uniform(80, rng=seed + 100)
            provider = get_candidate_set("knn", k=8)
            t = random_tour(inst, ensure_rng(seed))
            lin_kernighan(t, LKConfig(neighbor_k=8), candidates=provider)
            residual = two_opt(t, candidates=provider)
            assert residual == 0, seed

    def test_two_opt_deterministic_across_views(self, rng):
        # The row fast path and the scalar fallback must take the same
        # moves in the same order: identical tours and identical stats.
        inst = generators.uniform(120, rng=9)
        start = random_tour(inst, rng)
        results = []
        for prefer_rows in (True, False):
            t = start.copy()
            stats = OpStats()
            two_opt(t, stats=stats, view=DistView(inst, prefer_rows=prefer_rows))
            results.append((t.order.tolist(), stats))
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]

    def test_or_opt_deterministic_across_views(self, rng):
        inst = generators.uniform(120, rng=9)
        start = random_tour(inst, rng)
        results = []
        for prefer_rows in (True, False):
            t = start.copy()
            stats = OpStats()
            or_opt(t, stats=stats, view=DistView(inst, prefer_rows=prefer_rows))
            results.append((t.order.tolist(), stats))
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]

    def test_meter_totals_identical_across_views(self, rng):
        # Virtual-time accounting must not depend on the distance path.
        inst = generators.uniform(100, rng=13)
        start = random_tour(inst, rng)
        ops = []
        for prefer_rows in (True, False):
            t = start.copy()
            meter = WorkMeter()
            two_opt(t, meter=meter, view=DistView(inst, prefer_rows=prefer_rows))
            ops.append(meter.ops)
        assert ops[0] == ops[1]


class TestBaselineCandidateWiring:
    def test_neighbors_setter_routes_rows(self, small_instance, rng):
        # Historically `lk.neighbors = array` silently left the engine on
        # its old rows; the setter must swap both forms together.
        engine = LinKernighan(small_instance)
        sub = quick_boruvka(small_instance)
        from repro.baselines.tour_merging import union_candidate_lists
        union = union_candidate_lists(small_instance, [sub])
        engine.neighbors = union
        assert engine.neighbors.shape == union.shape
        assert engine._neighbor_rows[3] == list(engine.neighbors[3])
        t = random_tour(small_instance, rng)
        engine.optimize(t)
        assert t.is_valid()
