"""Synthetic instance generators mimicking the paper's testbed classes.

The paper's testbed (TSPLIB + DIMACS + national instances) is not bundled
here, so each *class* of instance is reproduced by a generator that creates
point sets with the same structural character:

==============  ====================================================  =========================
Paper instance  Structural character                                  Generator
==============  ====================================================  =========================
E1k.1           uniform random in a square (DIMACS E-class)           :func:`uniform`
C1k.1           normal clusters around 10 centres (DIMACS C-class)    :func:`clustered`
fl1577, fl3795  drilling plates: dense regular blocks + sparse frame  :func:`drilling`
pr2392, pcb3038 PCB layouts: points snapped to a routing grid         :func:`grid_pcb`
fnl4461, fi10639, sw24978  country maps: nonuniform density blobs     :func:`country`
pla33810/85900  programmed logic arrays: rows of pads                 :func:`pla_rows`
==============  ====================================================  =========================

All generators take ``(n, rng)`` plus shape parameters and return a
:class:`~repro.tsp.instance.TSPInstance` with EUC_2D (CEIL_2D for the
pla-class, matching TSPLIB).  Coordinates are scaled to roughly [0, 10^4] so
integer rounding behaves like TSPLIB instances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .instance import TSPInstance

__all__ = [
    "uniform",
    "clustered",
    "drilling",
    "grid_pcb",
    "country",
    "pla_rows",
    "random_matrix",
]

_SCALE = 10_000.0


def _rng(rng) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _dedupe(coords: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Jitter exact duplicates; coincident cities make degenerate edges."""
    seen: dict[tuple, int] = {}
    out = coords.copy()
    for i in range(len(out)):
        key = (round(out[i, 0], 6), round(out[i, 1], 6))
        while key in seen:
            out[i] += rng.uniform(-1.0, 1.0, size=2)
            key = (round(out[i, 0], 6), round(out[i, 1], 6))
        seen[key] = i
    return out


def uniform(n: int, rng=None, name: Optional[str] = None) -> TSPInstance:
    """Uniform random points in a square (DIMACS E-class, e.g. E1k.1)."""
    rng = _rng(rng)
    coords = rng.uniform(0.0, _SCALE, size=(n, 2))
    return TSPInstance(
        coords=_dedupe(coords, rng),
        name=name or f"E{n}",
        comment=f"uniform random, n={n}",
    )


def clustered(
    n: int,
    rng=None,
    n_clusters: int = 10,
    spread: float = 0.05,
    name: Optional[str] = None,
) -> TSPInstance:
    """Normally-distributed clusters (DIMACS C-class, e.g. C1k.1).

    ``spread`` is the cluster standard deviation as a fraction of the
    square's side length.
    """
    rng = _rng(rng)
    centers = rng.uniform(0.1 * _SCALE, 0.9 * _SCALE, size=(n_clusters, 2))
    assign = rng.integers(0, n_clusters, size=n)
    coords = centers[assign] + rng.normal(0.0, spread * _SCALE, size=(n, 2))
    coords = np.clip(coords, 0.0, _SCALE)
    return TSPInstance(
        coords=_dedupe(coords, rng),
        name=name or f"C{n}",
        comment=f"clustered, n={n}, clusters={n_clusters}, spread={spread}",
    )


def drilling(
    n: int,
    rng=None,
    n_blocks: int = 9,
    block_fill: float = 0.85,
    name: Optional[str] = None,
) -> TSPInstance:
    """Drilling-plate layout (fl-class: fl1577, fl3795).

    The fl instances are drill plates: most holes sit in dense regular
    blocks (connector footprints) with a sparse scatter elsewhere.  The
    regular sub-grids create huge plateaus of equal-length tours, which is
    exactly what traps CLK in deep local optima in the paper — preserving
    that behaviour is the point of this generator.
    """
    rng = _rng(rng)
    n_block_pts = int(n * block_fill)
    n_scatter = n - n_block_pts
    # Block layout: non-overlapping rectangles on a coarse grid.
    side = int(np.ceil(np.sqrt(n_blocks)))
    cell = _SCALE / side
    blocks = []
    slots = rng.permutation(side * side)[:n_blocks]
    base = n_block_pts // n_blocks
    rem = n_block_pts - base * n_blocks
    # One plate-wide hole pitch (real fl drilling plates use identical
    # component footprints): equal-length edges across *all* blocks form
    # the huge plateaus of equal-cost tours that trap Chained LK.
    avg_cols = max(1, int(np.ceil(np.sqrt(max(base, 1)))))
    pitch = round(0.7 * cell / (avg_cols + 1))
    for bi, slot in enumerate(slots):
        bx, by = (slot % side) * cell, (slot // side) * cell
        m = base + (1 if bi < rem else 0)
        if m == 0:
            continue
        # Regular grid inside the block with the shared pitch.
        cols = max(1, int(np.ceil(np.sqrt(m))))
        xs = bx + 0.15 * cell + pitch * (np.arange(m) % cols)
        ys = by + 0.15 * cell + pitch * (np.arange(m) // cols)
        blocks.append(np.stack([xs, ys], axis=1))
    scatter = rng.uniform(0.0, _SCALE, size=(n_scatter, 2))
    coords = np.vstack(blocks + [scatter])[:n]
    return TSPInstance(
        coords=_dedupe(coords, rng),
        name=name or f"fl{n}",
        comment=f"drilling plate, n={n}, blocks={n_blocks}, fill={block_fill}",
    )


def grid_pcb(
    n: int,
    rng=None,
    pitch: float = 50.0,
    name: Optional[str] = None,
) -> TSPInstance:
    """PCB-style layout (pr/pcb-class: pr2392, pcb3038).

    Points are snapped to a routing grid of the given pitch, with clustered
    occupancy (components), so many inter-city distances coincide.
    """
    rng = _rng(rng)
    # Oversample cluster centres, then fill grid cells around them.
    n_comp = max(4, n // 60)
    centers = rng.uniform(0.0, _SCALE, size=(n_comp, 2))
    assign = rng.integers(0, n_comp, size=n)
    raw = centers[assign] + rng.normal(0.0, 0.06 * _SCALE, size=(n, 2))
    snapped = np.round(np.clip(raw, 0.0, _SCALE) / pitch) * pitch
    return TSPInstance(
        coords=_dedupe(snapped, rng),
        name=name or f"pcb{n}",
        comment=f"pcb grid, n={n}, pitch={pitch}",
    )


def country(
    n: int,
    rng=None,
    n_blobs: int = 25,
    name: Optional[str] = None,
) -> TSPInstance:
    """Country-map layout (fnl/fi/sw/usa-class national instances).

    Population-like density: many blobs of widely varying size and spread
    along a meandering 'settled corridor', giving strongly nonuniform
    density without the regular structure of the fl/pcb classes.
    """
    rng = _rng(rng)
    # Corridor: a smooth random walk across the square.
    t = np.linspace(0.0, 1.0, n_blobs)
    cx = _SCALE * (0.1 + 0.8 * t)
    cy = _SCALE * (0.5 + 0.35 * np.cumsum(rng.normal(0, 0.35, n_blobs)) / np.sqrt(n_blobs))
    cy = np.clip(cy, 0.05 * _SCALE, 0.95 * _SCALE)
    weights = rng.pareto(1.3, size=n_blobs) + 0.2
    weights /= weights.sum()
    counts = rng.multinomial(n, weights)
    pieces = []
    for k in range(n_blobs):
        if counts[k] == 0:
            continue
        sd = _SCALE * rng.uniform(0.01, 0.08)
        pts = np.stack([cx[k], cy[k]]) + rng.normal(0.0, sd, size=(counts[k], 2))
        pieces.append(pts)
    coords = np.clip(np.vstack(pieces), 0.0, _SCALE)
    return TSPInstance(
        coords=_dedupe(coords, rng),
        name=name or f"fi{n}",
        comment=f"country map, n={n}, blobs={n_blobs}",
    )


def pla_rows(
    n: int,
    rng=None,
    row_pitch: float = 120.0,
    name: Optional[str] = None,
) -> TSPInstance:
    """Programmed-logic-array layout (pla-class: pla33810, pla85900).

    Pads arranged in long horizontal rows with irregular gaps; uses CEIL_2D
    like the TSPLIB pla instances.
    """
    rng = _rng(rng)
    n_rows = max(2, int(np.sqrt(n) / 2))
    counts = rng.multinomial(n, np.full(n_rows, 1.0 / n_rows))
    pieces = []
    for r in range(n_rows):
        m = counts[r]
        if m == 0:
            continue
        xs = np.sort(rng.uniform(0.0, _SCALE, size=m))
        ys = np.full(m, (r + 0.5) * row_pitch) + rng.choice(
            [0.0, row_pitch * 0.25], size=m
        )
        pieces.append(np.stack([xs, ys], axis=1))
    coords = np.vstack(pieces)
    return TSPInstance(
        coords=_dedupe(coords, rng),
        edge_weight_type="CEIL_2D",
        name=name or f"pla{n}",
        comment=f"pla rows, n={n}, rows={n_rows}",
    )


def random_matrix(n: int, rng=None, max_weight: int = 1000,
                  name: Optional[str] = None) -> TSPInstance:
    """Random symmetric EXPLICIT instance (non-metric; stress tests)."""
    rng = _rng(rng)
    m = rng.integers(1, max_weight + 1, size=(n, n))
    m = np.triu(m, 1)
    m = m + m.T
    return TSPInstance(
        coords=None,
        edge_weight_type="EXPLICIT",
        matrix=m,
        name=name or f"rand{n}",
        comment=f"random matrix, n={n}, max={max_weight}",
    )
