"""Quick-Borůvka tour construction (Applegate, Cook & Rohe).

This is the construction heuristic the paper's CLK engine uses: cities are
processed in coordinate order; each city that does not yet have two tour
edges gets its cheapest *valid* incident edge — one that does not close a
subtour prematurely and whose endpoint still has spare degree.  The
original needs at most two sweeps; we sweep until the tour closes, falling
back to a full scan when a city's candidate list is exhausted (rare).
"""

from __future__ import annotations

import numpy as np

from ..tsp.tour import Tour
from ..utils.rng import ensure_rng

__all__ = ["quick_boruvka"]


class _UnionFind:
    __slots__ = ("parent", "rank")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


def _tour_from_adjacency(instance, adj: list[list[int]]) -> Tour:
    n = instance.n
    order = np.empty(n, dtype=np.intp)
    order[0] = 0
    prev, cur = -1, 0
    for k in range(1, n):
        a, b = adj[cur]
        nxt = b if a == prev else a
        order[k] = nxt
        prev, cur = cur, nxt
    return Tour(instance, order)


def quick_boruvka(instance, neighbor_k: int = 12, rng=None) -> Tour:
    """Construct a tour with the Quick-Borůvka heuristic.

    Parameters
    ----------
    instance:
        TSP instance.
    neighbor_k:
        Size of the per-city candidate list scanned before falling back to
        a full scan.
    rng:
        Only used to break ties in the processing order of non-geometric
        instances; geometric instances use coordinate order as in the
        original algorithm.
    """
    n = instance.n
    neighbors = instance.neighbor_lists(min(neighbor_k, n - 1))
    deg = np.zeros(n, dtype=np.int8)
    adj: list[list[int]] = [[] for _ in range(n)]
    uf = _UnionFind(n)
    edges_added = 0

    if instance.coords is not None:
        proc_order = np.lexsort((instance.coords[:, 1], instance.coords[:, 0]))
    else:
        proc_order = ensure_rng(rng).permutation(n)

    def valid(i: int, j: int) -> bool:
        if deg[j] >= 2 or i == j:
            return False
        if uf.find(i) == uf.find(j):
            # Only allowed for the final edge, which closes the tour.
            return edges_added == n - 1
        return True

    def add_edge(i: int, j: int) -> None:
        nonlocal edges_added
        adj[i].append(j)
        adj[j].append(i)
        deg[i] += 1
        deg[j] += 1
        uf.union(i, j)
        edges_added += 1

    def cheapest_valid(i: int) -> int:
        for j in neighbors[i]:
            if valid(i, int(j)):
                return int(j)
        # Fallback: full scan over cities with spare degree.
        cand = np.flatnonzero(deg < 2)
        cand = cand[cand != i]
        if cand.size == 0:
            return -1
        d = instance.dist_many(i, cand)
        for idx in np.argsort(d, kind="stable"):
            j = int(cand[idx])
            if valid(i, j):
                return j
        return -1

    sweeps = 0
    while edges_added < n and sweeps < n:
        sweeps += 1
        progress = False
        for i in proc_order:
            while deg[i] < 2 and edges_added < n:
                j = cheapest_valid(int(i))
                if j < 0:
                    break
                add_edge(int(i), j)
                progress = True
        if not progress:  # pragma: no cover - defensive
            raise RuntimeError("quick_boruvka failed to make progress")

    return _tour_from_adjacency(instance, adj)
