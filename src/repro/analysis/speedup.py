"""Speed-up accounting (paper Table 1).

The paper's speed-up factor compares *total CPU time summed over all
nodes* to reach a given quality level: a factor above the node count
means super-linear speed-up from cooperation.  Given per-run traces whose
time axis is per-node CPU time, total CPU time = per-node time × node
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .timeseries import time_to_target

__all__ = ["QualityLevelRow", "time_to_quality_stats", "speedup_table"]


@dataclass(frozen=True)
class QualityLevelRow:
    """One row of a speed-up table: times (per-node) and factors."""

    label: str
    target: float
    clk_vsec: Optional[float]
    single_vsec: Optional[float]
    multi_vsec: Optional[float]
    n_nodes: int

    @property
    def factor_vs_clk(self) -> Optional[float]:
        """CLK total time / distributed total time (>n_nodes = superlinear)."""
        if self.clk_vsec is None or self.multi_vsec is None or self.multi_vsec <= 0:
            return None
        return self.clk_vsec / (self.multi_vsec * self.n_nodes)

    @property
    def factor_vs_single(self) -> Optional[float]:
        """1-node total time / n-node total time."""
        if (
            self.single_vsec is None
            or self.multi_vsec is None
            or self.multi_vsec <= 0
        ):
            return None
        return self.single_vsec / (self.multi_vsec * self.n_nodes)


def time_to_quality_stats(
    traces: Sequence[Sequence], target: float
) -> Optional[float]:
    """Mean time-to-target over the runs that reached it (None if none)."""
    times = [time_to_target(tr, target) for tr in traces]
    times = [t for t in times if t is not None]
    return float(np.mean(times)) if times else None


def speedup_table(
    labels_targets: Sequence[tuple],
    clk_traces: Sequence[Sequence],
    single_traces: Sequence[Sequence],
    multi_traces: Sequence[Sequence],
    n_nodes: int,
) -> list[QualityLevelRow]:
    """Build Table-1 rows for the given (label, target-length) levels."""
    rows = []
    for label, target in labels_targets:
        rows.append(
            QualityLevelRow(
                label=label,
                target=float(target),
                clk_vsec=time_to_quality_stats(clk_traces, target),
                single_vsec=time_to_quality_stats(single_traces, target),
                multi_vsec=time_to_quality_stats(multi_traces, target),
                n_nodes=n_nodes,
            )
        )
    return rows
