"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, resolve_instance
from repro.tsp import tsplib


class TestResolveInstance:
    def test_registry_name(self):
        inst = resolve_instance("E100")
        assert inst.n == 100

    def test_paper_name(self):
        inst = resolve_instance("fl3795")
        assert inst.name == "fl300"

    def test_generator_spec(self):
        inst = resolve_instance("uniform:50:9")
        assert inst.n == 50
        again = resolve_instance("uniform:50:9")
        np.testing.assert_array_equal(inst.coords, again.coords)

    def test_generator_spec_default_seed(self):
        assert resolve_instance("clustered:40").n == 40

    def test_tsp_file(self, tmp_path, small_instance):
        path = tmp_path / "x.tsp"
        tsplib.dump(small_instance, path)
        inst = resolve_instance(str(path))
        assert inst.n == small_instance.n

    def test_unresolvable_exits(self):
        with pytest.raises(SystemExit, match="cannot resolve"):
            resolve_instance("atlantis:x")


class TestCommands:
    def test_testbed_lists_all(self, capsys):
        assert main(["testbed"]) == 0
        out = capsys.readouterr().out
        assert "fl300" in out and "sw520" in out
        assert "paper" in out

    def test_info(self, capsys):
        assert main(["info", "uniform:40:1"]) == 0
        out = capsys.readouterr().out
        assert "cities            : 40" in out
        assert "guessed class" in out

    def test_clk_with_tour_output(self, tmp_path, capsys):
        out_file = tmp_path / "t.tour"
        rc = main(["clk", "uniform:30:2", "--budget", "0.2",
                   "--out", str(out_file)])
        assert rc == 0
        inst = resolve_instance("uniform:30:2")
        tour = tsplib.load_tour(out_file, inst)
        assert tour.is_valid()

    def test_solve_and_save_run(self, tmp_path, capsys):
        run_file = tmp_path / "run.json"
        rc = main([
            "solve", "uniform:30:2", "--nodes", "2", "--budget", "0.2",
            "--topology", "ring", "--save-run", str(run_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best tour:" in out
        assert run_file.exists()

    def test_exact_small(self, capsys):
        assert main(["exact", "uniform:10:3"]) == 0
        assert "optimum" in capsys.readouterr().out

    def test_bound(self, capsys):
        assert main(["bound", "uniform:25:4", "--iterations", "30"]) == 0
        assert "Held-Karp lower bound" in capsys.readouterr().out

    def test_solve_with_trace_then_summarize(self, tmp_path, capsys):
        trace_file = tmp_path / "run.trace.jsonl"
        rc = main([
            "solve", "uniform:40:2", "--nodes", "2", "--budget", "0.5",
            "--topology", "ring", "--trace", str(trace_file),
        ])
        assert rc == 0
        assert "trace written to" in capsys.readouterr().err
        assert trace_file.exists()

        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "time in phase" in out
        assert "span tree" in out
        assert "phase.optimize" in out

    def test_trace_flag_leaves_global_tracer_untouched(self, tmp_path):
        from repro.obs import get_tracer

        before = get_tracer()
        main(["clk", "uniform:30:2", "--budget", "0.1",
              "--trace", str(tmp_path / "clk.trace.jsonl")])
        assert get_tracer() is before

    def test_trace_compare(self, tmp_path, capsys):
        trace_file = tmp_path / "a.jsonl"
        main(["clk", "uniform:30:2", "--budget", "0.2",
              "--trace", str(trace_file)])
        capsys.readouterr()
        rc = main(["trace", "compare", str(trace_file), str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "span totals" in out
        assert "+0.0%" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
