"""Smoke test for the tournament script's machinery (tiny budgets)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "scripts"))


@pytest.mark.slow
def test_tournament_runs_and_reports():
    from tournament import report, run_tournament

    from repro.tsp import generators

    inst = generators.uniform(50, rng=12)
    results = run_tournament(inst, budget=1.0, runs=2, rng=0)
    assert set(results) == {
        "ABCC-CLK", "DistCLK-8", "DistCLK-1", "LKH-style", "MLC-LK", "TM-CLK",
    }
    assert all(len(v) == 2 for v in results.values())
    text = report(results)
    assert "tournament" in text
    assert "DistCLK-8" in text
