"""TSP substrate: instances, distances, tours, neighbour lists, testbed."""

from .instance import TSPInstance
from .tour import Tour, random_tour
from . import atsp, distances, generators, neighbors, registry, stats, tsplib

__all__ = [
    "TSPInstance",
    "Tour",
    "random_tour",
    "atsp",
    "distances",
    "generators",
    "neighbors",
    "registry",
    "stats",
    "tsplib",
]
