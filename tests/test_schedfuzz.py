"""Seeded schedule fuzzing of the service layer.

Two halves.  First, unit tests for the shim itself
(:mod:`repro.utils.schedfuzz`): same seed reproduces the same callback
order, different seeds genuinely differ, and the report catches the two
dirty-shutdown symptoms — tasks still pending after main returns, and
exceptions asyncio would only log.  Second, the replay harness the ISSUE
asks for: the service lifecycle scenarios (submit-to-done, cancel,
budget exhaustion, 3-tenant interleaving, client disconnect) re-run
under adversarial-but-reproducible schedules across ``REPRO_FUZZ_SEEDS``
seeds (default 4 locally; CI runs 8), asserting the determinism
contract — the result is bit-identical to ``solve(rng=S)`` under every
interleaving — and clean shutdown.

The regression fixture at the bottom reproduces the pre-fix
``SolverService.close()`` bug (swallow CancelledError, ``cancel()``
without awaiting) and shows the fuzzer flagging it, while the fixed
pattern comes back clean under every seed.
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro.core import solve
from repro.service import (
    JobError,
    ServiceClient,
    ServiceServer,
    SolverService,
    TenantPolicy,
)
from repro.tsp import generators
from repro.utils.schedfuzz import ScheduleFuzzer, fuzz

pytestmark = pytest.mark.schedfuzz

N_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", "4"))
SEEDS = list(range(N_SEEDS))

PARAMS = dict(budget_vsec_per_node=0.1, n_nodes=2, topology="ring")

_direct_cache = {}


def small_instance(n=40, seed=3):
    return generators.uniform(n, rng=seed)


def direct_order(inst_seed, rng_seed, n=40):
    """Direct-solve twin of a fuzzed job, computed once per seed pair."""
    key = (inst_seed, rng_seed, n)
    if key not in _direct_cache:
        result = solve(small_instance(n=n, seed=inst_seed), rng=rng_seed,
                       **PARAMS)
        _direct_cache[key] = result.best_tour.order.tolist()
    return _direct_cache[key]


# -- the shim itself ---------------------------------------------------------


class TestShuffleLoop:
    @staticmethod
    def _order_scenario(log):
        async def main():
            async def worker(i):
                log.append(i)

            await asyncio.gather(*[worker(i) for i in range(10)])

        return main

    def test_same_seed_same_schedule(self):
        first, second = [], []
        ScheduleFuzzer(17).run(self._order_scenario(first))
        ScheduleFuzzer(17).run(self._order_scenario(second))
        assert first == second

    def test_different_seeds_differ(self):
        orders = set()
        for seed in range(6):
            log = []
            report = ScheduleFuzzer(seed).run(self._order_scenario(log))
            assert report.clean, report.summary()
            orders.add(tuple(log))
        assert len(orders) > 1, "shuffle produced no schedule diversity"
        assert all(sorted(o) == list(range(10)) for o in orders)

    def test_pending_task_detected(self):
        async def leaky():
            async def sleeper():
                await asyncio.sleep(30)

            asyncio.get_running_loop().create_task(sleeper())
            await asyncio.sleep(0)

        report = ScheduleFuzzer(0).run(leaky)
        assert not report.clean
        assert report.pending

    def test_unhandled_task_exception_detected(self):
        async def firing():
            async def boom():
                raise RuntimeError("fire-and-forget failure")

            task = asyncio.get_running_loop().create_task(boom())
            await asyncio.sleep(0.01)
            del task  # drop the only reference: asyncio logs at GC time

        report = ScheduleFuzzer(0).run(firing)
        assert report.unhandled, report.summary()

    def test_fuzz_raises_on_dirty_run(self):
        async def leaky():
            asyncio.get_running_loop().create_task(asyncio.sleep(30))
            await asyncio.sleep(0)

        with pytest.raises(AssertionError, match="dirty"):
            fuzz(leaky, seeds=[0])

    def test_scenario_exceptions_propagate(self):
        async def failing():
            raise ValueError("scenario assertion")

        with pytest.raises(ValueError, match="scenario assertion"):
            ScheduleFuzzer(0).run(failing)


# -- service lifecycle under adversarial schedules ---------------------------


class TestLifecycleUnderFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_job_bit_identical_to_direct_solve(self, seed):
        inst = small_instance()

        async def main():
            async with SolverService(backend="sim", slice_steps=2) as svc:
                job_id = svc.submit(inst, seed=5, **PARAMS)
                result = await svc.result(job_id, timeout=60)
                return result.best_tour.order.tolist()

        report = ScheduleFuzzer(seed).run(main)
        assert report.clean, report.summary()
        assert report.result == direct_order(3, 5)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cancel_mid_run_clean_shutdown(self, seed):
        async def main():
            async with SolverService(backend="sim", slice_steps=1) as svc:
                job_id = svc.submit(small_instance(n=150, seed=2), seed=1,
                                    budget_vsec_per_node=5.0, n_nodes=2)
                for _ in range(200):
                    await asyncio.sleep(0.005)
                    if svc.status(job_id)["status"] != "queued":
                        break
                svc.cancel(job_id)
                with pytest.raises(JobError):
                    await svc.result(job_id, timeout=60)
                return svc.status(job_id)["status"]

        report = ScheduleFuzzer(seed).run(main)
        assert report.clean, report.summary()
        assert report.result == "cancelled"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_budget_exhaustion_clean_shutdown(self, seed):
        async def main():
            async with SolverService(backend="sim", slice_steps=4) as svc:
                svc.set_tenant("poor", TenantPolicy(max_concurrency=2,
                                                    vsec_budget=0.05))
                job_id = svc.submit(small_instance(n=80, seed=1),
                                    tenant="poor", seed=1,
                                    budget_vsec_per_node=5.0, n_nodes=2)
                with pytest.raises(JobError, match="budget"):
                    await svc.result(job_id, timeout=60)
                return svc.status(job_id)["status"]

        report = ScheduleFuzzer(seed).run(main)
        assert report.clean, report.summary()
        assert report.result == "failed"

    def test_three_tenant_interleaving_schedule_independent(self):
        """3 tenants x 2 jobs: the full result map — job id to final
        tour — is identical under every fuzzed schedule, and each tour
        matches its direct-solve twin."""
        inst = small_instance(n=50, seed=4)
        tenants = ("red", "green", "blue")

        async def main():
            async with SolverService(backend="sim", max_running=4,
                                     slice_steps=4) as svc:
                for t in tenants:
                    svc.set_tenant(t, TenantPolicy(max_concurrency=2))
                jobs = {}
                for t in tenants:
                    for k in range(2):
                        job_id = svc.submit(inst, tenant=t, seed=50 + k,
                                            **PARAMS)
                        jobs[job_id] = 50 + k
                out = {}
                for job_id, seed in jobs.items():
                    result = await svc.result(job_id, timeout=60)
                    out[job_id] = (seed, result.best_tour.order.tolist())
                return out

        reports = fuzz(main, seeds=SEEDS, timeout=120)
        baseline = reports[0].result
        for report in reports[1:]:
            assert report.result == baseline, (
                "schedule changed a job result: determinism contract broken")
        for seed, order in baseline.values():
            assert order == direct_order(4, seed, n=50)


# -- TCP front end under adversarial schedules -------------------------------


class TestServerUnderFuzz:
    def test_client_drop_mid_stream_server_survives(self):
        """A client that vanishes mid-stream must not leave the server
        dirty under any schedule: the handler unwinds, the watcher is
        released, other clients keep being served."""

        async def main():
            server = ServiceServer(SolverService(backend="sim"), port=0)
            await server.start()
            try:
                client = ServiceClient(port=server.port, timeout=60)
                job_id = await client.submit(
                    {"spec": "uniform:120:1"}, seed=1,
                    budget_vsec_per_node=1.0, n_nodes=2,
                    params={"topology": "ring"})
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(json.dumps(
                    {"op": "stream", "job_id": job_id}).encode() + b"\n")
                await writer.drain()
                await asyncio.wait_for(reader.readline(), timeout=60)
                writer.close()  # vanish mid-stream
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                alive = await client.ping()
                await client.result(job_id, timeout=60)
                return alive
            finally:
                await server.close()

        for seed in SEEDS[:3]:
            report = ScheduleFuzzer(seed).run(main, timeout=120)
            assert report.clean, report.summary()
            assert report.result is True

    def test_client_drop_mid_request_server_survives(self):
        """Half a request then a vanished peer: the handler must parse-
        fail, skip the reply to the dead socket, and unwind — under
        every schedule."""

        async def main():
            server = ServiceServer(SolverService(backend="sim"), port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b'{"op": "stat')  # no newline: truncated
                await writer.drain()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                client = ServiceClient(port=server.port, timeout=60)
                return await client.ping()
            finally:
                await server.close()

        for seed in SEEDS[:3]:
            report = ScheduleFuzzer(seed).run(main, timeout=120)
            assert report.clean, report.summary()
            assert report.result is True


# -- the close() task-leak regression fixture --------------------------------


class TestCloseTaskLeakRegression:
    """Reproduces the pre-fix ``SolverService.close()`` bug as a minimal
    fixture.  The old code caught CancelledError from ``wait_for``,
    called ``task.cancel()`` and moved on — swallowing the shutdown
    signal (RPL011) and never awaiting the cancelled task (RPL009).  On
    modern asyncio that swallow turns a cancelled shutdown into a hang:
    close() shrugs off its own cancellation and parks in the *next*
    task's 30-second ``wait_for``, so the caller has to abandon it —
    leaving the closer and the un-reaped job task pending at loop
    teardown (the "Task was destroyed but it is pending!" class).  The
    fuzzer must flag that; the fixed pattern must come back clean."""

    @staticmethod
    def _scenario(close_impl):
        async def main():
            loop = asyncio.get_running_loop()

            async def job():
                try:
                    await asyncio.sleep(30)
                except asyncio.CancelledError:
                    # Cleanup that must run to completion, like a job
                    # task's finally block releasing queue slots.
                    while True:
                        try:
                            await asyncio.sleep(0.05)
                            break
                        except asyncio.CancelledError:
                            continue
                    raise

            tasks = [loop.create_task(job()) for _ in range(2)]
            await asyncio.sleep(0.01)
            closer = loop.create_task(close_impl(tasks))
            await asyncio.sleep(0.01)  # closer parks in wait_for
            closer.cancel()            # shutdown cancels close() itself
            # A real teardown cannot wait forever for close(); the
            # pre-fix close swallows the cancel and hangs in the next
            # 30 s wait_for, so it gets abandoned here.
            done, _ = await asyncio.wait({closer}, timeout=0.5)
            if closer in done and closer.cancelled():
                # The fixed close propagates cancellation; the caller
                # (service teardown) reaps the job tasks properly.
                for t in tasks:
                    t.cancel()
                    try:
                        await t
                    except asyncio.CancelledError:
                        pass
            return closer.cancelled()

        return main

    def test_prefix_close_pattern_leaks_pending_task(self):
        async def old_close(tasks):
            for t in tasks:
                try:
                    await asyncio.wait_for(t, timeout=30.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    t.cancel()  # never awaited — the pre-fix bug

        for seed in SEEDS:
            report = ScheduleFuzzer(seed).run(self._scenario(old_close))
            assert not report.clean, (
                f"seed {seed}: fuzzer failed to catch the close() leak")
            assert report.pending, report.summary()
            # The swallowed CancelledError is the co-symptom: close()
            # "completed normally" despite being cancelled.
            assert report.result is False

    def test_fixed_close_pattern_shuts_down_clean(self):
        async def new_close(tasks):
            for t in tasks:
                try:
                    await asyncio.wait_for(t, timeout=30.0)
                except asyncio.TimeoutError:
                    t.cancel()
                    try:
                        await t
                    except asyncio.CancelledError:
                        pass

        reports = fuzz(self._scenario(new_close), seeds=SEEDS)
        assert all(r.result is True for r in reports)


# -- process backend under fuzz (bounded: spawn is wall-clock heavy) ---------


@pytest.mark.slow
@pytest.mark.timeout(180)
class TestProcessBackendUnderFuzz:
    def test_worker_crash_surfaces_failed_job_clean(self):
        async def main():
            async with SolverService(backend="process") as svc:
                job_id = svc.submit(small_instance(n=50, seed=1), seed=1,
                                    budget_vsec_per_node=0.2, n_nodes=2,
                                    _crash=True)
                with pytest.raises(JobError, match="worker exited"):
                    await svc.result(job_id, timeout=120)
                return svc.status(job_id)["status"]

        for seed in SEEDS[:2]:
            report = ScheduleFuzzer(seed).run(main, timeout=150)
            assert report.clean, report.summary()
            assert report.result == "failed"
