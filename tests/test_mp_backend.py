"""Tests for the multiprocessing backend (real parallelism).

These run actual OS processes; budgets are kept tiny.  Only invariants
are asserted — wall-clock runs are not reproducible by design.
"""

import sys

import numpy as np
import pytest

from repro.core.node import NodeConfig
from repro.distributed.mp_backend import run_multiprocessing
from repro.tsp import generators


@pytest.mark.slow
def test_two_process_run_produces_valid_tour():
    inst = generators.uniform(40, rng=0)
    res = run_multiprocessing(
        inst,
        budget_seconds=2.0,
        n_nodes=2,
        node_config=NodeConfig(inner_kicks=2),
        topology="ring",
        rng=0,
    )
    tour = res.tour(inst)
    assert tour.is_valid()
    assert tour.length == res.best_length == tour.recompute_length()
    assert set(res.node_lengths) == {0, 1}
    assert res.best_length == min(res.node_lengths.values())
    assert all(r in ("budget", "optimum", "notified")
               for r in res.reasons.values())


@pytest.mark.slow
def test_target_terminates_early():
    from repro.bounds import held_karp_exact

    inst = generators.uniform(12, rng=5)
    opt, _ = held_karp_exact(inst)
    res = run_multiprocessing(
        inst,
        budget_seconds=30.0,
        n_nodes=2,
        node_config=NodeConfig(inner_kicks=2, target_length=opt),
        topology="ring",
        rng=1,
    )
    assert res.best_length == opt
    assert res.elapsed_seconds < 30.0
