"""Plain-text rendering of tables and anytime 'figures'.

Benchmarks print their results in the same row/column structure as the
paper's tables; figures are rendered as aligned numeric series (and an
optional coarse ASCII chart) so everything lands in the bench log without
a plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "ascii_chart",
    "fmt_pct",
    "fmt_time",
    "op_stats_table",
]


def fmt_pct(value: Optional[float], digits: int = 3) -> str:
    """Render an excess percentage the way the paper does ('0.047%')."""
    if value is None:
        return "-"
    if abs(value) < 10 ** (-digits) / 2:
        return "OPT"
    return f"{value:.{digits}f}%"


def fmt_time(value: Optional[float], digits: int = 1) -> str:
    """Render a (virtual) time value, '-' when unreached."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    align_left_first: bool = True,
) -> str:
    """Monospace table with a header rule; cells are str()-ed."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for k, c in enumerate(row):
            widths[k] = max(widths[k], len(c))

    def render_row(row):
        parts = []
        for k, c in enumerate(row):
            if k == 0 and align_left_first:
                parts.append(c.ljust(widths[k]))
            else:
                parts.append(c.rjust(widths[k]))
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
    out.append(render_row(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(render_row(r) for r in cells)
    return "\n".join(out)


def op_stats_table(stats_map: dict, title: str | None = None) -> str:
    """Engine-telemetry table, one row per labelled :class:`OpStats`.

    ``stats_map`` maps a row label (node id, run name, ...) to an
    :class:`repro.localsearch.engine.OpStats`.  A ``total`` row is
    appended when there is more than one entry.  Counters are rendered
    raw; ``gain`` is the summed improvement in tour-length units and
    ``kickfb`` the number of structured kicks that degraded to a
    uniform-random kick (see ``OpStats.kick_fallbacks``).
    """
    from ..localsearch.engine import OpStats

    headers = ["run", "calls", "scans", "flips", "undone", "swaps",
               "wakeups", "moves", "gain", "kickfb"]

    def row(label, s):
        return [label, s.calls, s.candidate_scans, s.flips_applied,
                s.flips_undone, s.segment_swaps, s.queue_wakeups,
                s.moves, s.gain, s.kick_fallbacks]

    rows = [row(str(k), v) for k, v in stats_map.items()]
    if len(stats_map) > 1:
        total = OpStats()
        for s in stats_map.values():
            total.merge(s)
        rows.append(row("total", total))
    return format_table(headers, rows, title=title)


def format_series(
    times: Sequence[float],
    series: dict,
    time_label: str = "vsec",
    value_format: str = "{:.0f}",
) -> str:
    """Tabulate named time series at common sample times (figure data)."""
    headers = [time_label] + list(series)
    rows = []
    for k, t in enumerate(times):
        row = [f"{t:g}"]
        for name in series:
            v = series[name][k]
            row.append("-" if v is None or (isinstance(v, float) and np.isnan(v))
                       else value_format.format(v))
        rows.append(row)
    return format_table(headers, rows)


def ascii_chart(
    times: Sequence[float],
    series: dict,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Coarse ASCII line chart of named series (one glyph per series)."""
    glyphs = "*o+x#@%&"
    xs = np.asarray(times, dtype=np.float64)
    all_vals = np.concatenate(
        [np.asarray(v, dtype=np.float64) for v in series.values()]
    )
    all_vals = all_vals[np.isfinite(all_vals)]
    if all_vals.size == 0:
        return "(no data)"
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(xs.min()), float(xs.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    for s_idx, (name, vals) in enumerate(series.items()):
        g = glyphs[s_idx % len(glyphs)]
        for t, v in zip(xs, np.asarray(vals, dtype=np.float64)):
            if not np.isfinite(v):
                continue
            col = int((t - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((hi - v) / (hi - lo) * (height - 1))
            grid[row][col] = g
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:.0f} +" + "-" * width)
    for r in grid:
        lines.append("     |" + "".join(r))
    lines.append(f"{lo:.0f} +" + "-" * width)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"     x: [{x_lo:g}, {x_hi:g}]   {legend}")
    return "\n".join(lines)
