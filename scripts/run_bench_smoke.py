"""CI bench-smoke: a deterministic small-budget performance snapshot.

    PYTHONPATH=src python scripts/run_bench_smoke.py [--out BENCH_ci.json]

Runs in a couple of minutes: an engine-microbench subset (ops/sec for
2-opt and LK over kicked construction tours, as in
``benchmarks/bench_engine_microbench.py``) plus one fig2-style
configuration (sequential CLK vs 8-node DistCLK on fl150 at a small
equal-total budget).  All wall-clock numbers are rescaled through
:func:`repro.analysis.measure_machine_factor` (the DIMACS-style
normalization the paper uses for its Table 2), so the committed baseline
in ``benchmarks/baselines/`` is comparable across machines.

``scripts/check_bench_regression.py`` compares the output against that
baseline and fails CI on a >15% slowdown.  Tour qualities are recorded
too, but as ``check`` values, not gated metrics: they are functions of
virtual time and seeds only, so a change there is a determinism break,
not a performance regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import measure_machine_factor
from repro.construct import quick_boruvka
from repro.localsearch import OpStats, get_operator
from repro.tsp import generators, get_candidate_set
from repro.utils.rng import ensure_rng

_FORMAT_VERSION = 1

#: Engine-subset workload (mirrors the microbench's kicked-starts regime,
#: scaled down for CI latency).
_ENGINE_N = 600
_ENGINE_TOURS = 8
_ENGINE_KICKS = 25
_ENGINE_SEED = 20260805
_REPEATS = 3

#: Fig2-style configuration: equal total budget, CLK vs 8-node DistCLK.
_INSTANCE = "fl150"
_TOTAL_BUDGET_VSEC = 8.0
_N_NODES = 8
_RUN_SEED = 1905

#: Divide-and-optimize leg: n≈5k uniform, 8 regions of 625 via median
#: bisection, equal-total-budget comparison against plain CLK.
_DIVIDE_N = 5000
_DIVIDE_SEED = 1121
_DIVIDE_REGION_SIZE = 800
_DIVIDE_REGIONS = 8
_DIVIDE_REGION_BUDGET = 0.4
_DIVIDE_REPAIR_BUDGET = 1.0


def _engine_ops(stats: OpStats) -> int:
    return stats.candidate_scans + stats.segment_swaps


def _kicked_starts(inst):
    rng = ensure_rng(_ENGINE_SEED)
    base = quick_boruvka(inst, rng=rng)
    starts = []
    for _ in range(_ENGINE_TOURS):
        t = base.copy()
        for _ in range(_ENGINE_KICKS):
            cuts = 1 + rng.choice(inst.n - 1, size=3, replace=False)
            t.double_bridge(cuts)
        starts.append(t)
    return starts


def _ops_per_sec(op_name, starts, provider, kernel=None):
    """Best-of-repeats (ops/sec, stats) for one operator over starts."""
    op = get_operator(op_name)
    kwargs = {} if kernel is None else {"kernel": kernel}
    best = None
    for _ in range(_REPEATS):
        tours = [t.copy() for t in starts]
        stats = OpStats()
        t0 = time.perf_counter()
        for tour in tours:
            op(tour, candidates=provider, stats=stats, **kwargs)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, stats)
    elapsed, stats = best
    return _engine_ops(stats) / elapsed, stats


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_ci.json")
    args = parser.parse_args(argv)

    factor = measure_machine_factor()
    print(f"machine factor: {factor.factor:.3f} "
          f"(local {factor.local_seconds:.3f}s for reference "
          f"{factor.reference_seconds:.2f}s workload)")

    metrics: dict = {}
    checks: dict = {}

    # -- engine subset --------------------------------------------------
    inst = generators.uniform(_ENGINE_N, rng=4242)
    inst.materialize()
    inst.matrix_row_lists()
    starts = _kicked_starts(inst)
    provider = get_candidate_set("knn", k=8)
    provider.row_lists(inst)  # build outside the timed region
    for op_name in ("two_opt", "lk"):
        rate, _stats = _ops_per_sec(op_name, starts, provider)
        # ops per *reference-machine* second: divide the local rate by
        # the local->reference factor so faster hosts don't look like
        # speedups against the committed baseline.
        norm = rate / factor.factor
        metrics[f"engine.{op_name}_knn_ops_per_ref_sec"] = {
            "value": round(norm, 1),
            "direction": "higher",
        }
        print(f"engine {op_name:8s} {rate:12,.0f} ops/s local, "
              f"{norm:12,.0f} ops/ref-s")
    # Vector-kernel leg: Or-opt is where batching wins end to end (its
    # scans have no distance break), so its vector rate is the gated
    # metric; the row-vs-vector gain equality rides along as a
    # determinism check (all tiers are bit-identical by contract).
    row_rate, row_stats = _ops_per_sec("or_opt", starts, provider,
                                       kernel="row")
    vec_rate, vec_stats = _ops_per_sec("or_opt", starts, provider,
                                       kernel="vector")
    norm = vec_rate / factor.factor
    metrics["engine.or_opt_knn_vector_ops_per_ref_sec"] = {
        "value": round(norm, 1),
        "direction": "higher",
    }
    checks["engine_or_opt_vector_gain_matches_row"] = bool(
        vec_stats.gain == row_stats.gain
        and _engine_ops(vec_stats) == _engine_ops(row_stats)
    )
    print(f"engine or_opt vector {vec_rate:12,.0f} ops/s local, "
          f"{norm:12,.0f} ops/ref-s ({vec_rate / row_rate:.2f}x row)")

    # -- fig2-style pair: CLK vs DistCLK, equal total budget ------------
    from repro.core import solve
    from repro.localsearch import LKConfig, chained_lk
    from repro.tsp import registry

    fl = registry.get_instance(_INSTANCE)
    lk_config = LKConfig(neighbor_k=7, breadth=(4, 2), max_depth=40)

    clk_wall, clk_res = _timed(lambda: chained_lk(
        fl, budget_vsec=_TOTAL_BUDGET_VSEC, lk_config=lk_config,
        free_init=True, rng=_RUN_SEED,
    ))
    dist_wall, dist_res = _timed(lambda: solve(
        fl, budget_vsec_per_node=_TOTAL_BUDGET_VSEC / _N_NODES,
        n_nodes=_N_NODES, c_v=8, c_r=10**9, lk_config=lk_config,
        free_init=True, rng=_RUN_SEED,
    ))
    # Batched best-of-N kick stage over the same configuration.  The
    # inline backend keeps CI deterministic on any runner (including
    # 1-core containers where a pool cannot win); virtual-time budgeting
    # means the batched run does the same total work as the serial one,
    # so this wall-clock metric gates the *overhead* of the batch stage.
    batched_wall, batched_res = _timed(lambda: chained_lk(
        fl, budget_vsec=_TOTAL_BUDGET_VSEC, lk_config=lk_config,
        free_init=True, rng=_RUN_SEED, batch_width=2,
        batch_backend="inline",
    ))
    metrics["clk.fl150_wall_ref_sec"] = {
        "value": round(factor.apply(clk_wall), 3),
        "direction": "lower",
    }
    metrics["clk.fl150_batched_wall_ref_sec"] = {
        "value": round(factor.apply(batched_wall), 3),
        "direction": "lower",
    }
    metrics["dist.fl150_wall_ref_sec"] = {
        "value": round(factor.apply(dist_wall), 3),
        "direction": "lower",
    }
    checks["clk_fl150_length"] = int(clk_res.length)
    checks["clk_fl150_batched_length"] = int(batched_res.length)
    checks["dist_fl150_best_length"] = int(dist_res.best_length)
    checks["dist_fl150_messages"] = int(dist_res.network_stats.messages)
    print(f"clk  {_INSTANCE}: {clk_res.length} in {clk_wall:.2f}s wall "
          f"({factor.apply(clk_wall):.2f} ref-s)")
    print(f"clk  {_INSTANCE} batched(w=2): {batched_res.length} in "
          f"{batched_wall:.2f}s wall ({factor.apply(batched_wall):.2f} ref-s)")
    print(f"dist {_INSTANCE}: {dist_res.best_length} in {dist_wall:.2f}s "
          f"wall ({factor.apply(dist_wall):.2f} ref-s)")

    # -- divide-and-optimize: n≈5k, divide vs plain CLK -----------------
    # The large-instance pipeline at CI scale: partition/merge wall
    # times are gated (machine-normalized), end-to-end quality vs a
    # plain CLK run at the same total budget rides along as checks
    # (deterministic: a change there is a behaviour change, not noise).
    from repro.divide import DivideConfig, divide_and_optimize
    from repro.obs import Tracer, use_tracer

    div_inst = generators.uniform(_DIVIDE_N, rng=_DIVIDE_SEED)
    # Build the parent's dense caches outside the timed region (as the
    # engine leg does): the ~1 GB matrix/row-list allocation is memory-
    # bandwidth noise that would swamp the merge gate otherwise.
    div_inst.materialize()
    div_inst.matrix_row_lists()
    div_lk = LKConfig(neighbor_k=7, breadth=(4, 2), max_depth=40)
    total_budget = (
        _DIVIDE_REGION_BUDGET * _DIVIDE_REGIONS + _DIVIDE_REPAIR_BUDGET
    )

    def _divide_run(tracer):
        with use_tracer(tracer):
            return divide_and_optimize(
                div_inst,
                DivideConfig(
                    region_size=_DIVIDE_REGION_SIZE, backend="sim",
                    repair_budget_vsec=_DIVIDE_REPAIR_BUDGET,
                ),
                budget_vsec_per_node=_DIVIDE_REGION_BUDGET,
                lk_config=div_lk, free_init=True, rng=_RUN_SEED,
            )

    # Best-of-repeats, per phase: the run is deterministic (identical
    # tour every repeat), so only the timings vary, and the partition
    # phase in particular is fast enough that a single sample would
    # gate on scheduler noise.
    div_wall, div_res, phase_wall = None, None, {}
    for _ in range(_REPEATS):
        tracer = Tracer(enabled=True)
        wall, res = _timed(lambda: _divide_run(tracer))
        walls = {
            s.name: s.wall for s in tracer.spans
            if s.name in ("divide.partition", "divide.merge")
        }
        if div_wall is None or wall < div_wall:
            div_wall, div_res = wall, res
        for name, w in walls.items():
            phase_wall[name] = min(w, phase_wall.get(name, w))
    clk5k_wall, clk5k_res = _timed(lambda: chained_lk(
        div_inst, budget_vsec=total_budget, lk_config=div_lk,
        free_init=True, rng=_RUN_SEED,
    ))
    metrics["divide.partition_5k_ref_sec"] = {
        "value": round(factor.apply(phase_wall["divide.partition"]), 3),
        "direction": "lower",
    }
    metrics["divide.merge_5k_ref_sec"] = {
        "value": round(factor.apply(phase_wall["divide.merge"]), 3),
        "direction": "lower",
    }
    metrics["divide.e2e_5k_wall_ref_sec"] = {
        "value": round(factor.apply(div_wall), 3),
        "direction": "lower",
    }
    assert div_res.n_regions == _DIVIDE_REGIONS, div_res.n_regions
    checks["divide_5k_length"] = int(div_res.length)
    checks["divide_5k_naive_length"] = int(div_res.naive_length)
    checks["clk_5k_length"] = int(clk5k_res.length)
    checks["divide_5k_vs_clk_pct"] = round(
        100.0 * (div_res.length / clk5k_res.length - 1.0), 3
    )
    print(f"divide E{_DIVIDE_N}: {div_res.length} in {div_wall:.2f}s wall "
          f"({factor.apply(div_wall):.2f} ref-s; partition "
          f"{phase_wall['divide.partition']:.2f}s, merge "
          f"{phase_wall['divide.merge']:.2f}s), {div_res.n_regions} regions")
    print(f"clk    E{_DIVIDE_N}: {clk5k_res.length} in {clk5k_wall:.2f}s "
          f"wall ({factor.apply(clk5k_wall):.2f} ref-s, equal "
          f"{total_budget:.1f} vsec total)")

    # -- service submit->result roundtrip -------------------------------
    # Gates the job layer's overhead: scheduler admission, cooperative
    # slicing, incumbent bookkeeping and result delivery wrapped around
    # a small fixed solve.  The sim backend keeps it deterministic, and
    # best-of-repeats (as in the engine legs) keeps a sub-second wall
    # time gateable on a noisy runner.
    import asyncio

    from repro.service import SolverService

    svc_inst = generators.uniform(100, rng=777)
    svc_params = dict(budget_vsec_per_node=1.0, n_nodes=2,
                      topology="ring")

    async def _svc_roundtrip():
        async with SolverService(backend="sim") as svc:
            job_id = svc.submit(svc_inst, seed=_RUN_SEED, **svc_params)
            return await svc.result(job_id, timeout=300)

    svc_wall, svc_res = None, None
    for _ in range(_REPEATS):
        wall, res = _timed(lambda: asyncio.run(_svc_roundtrip()))
        if svc_wall is None or wall < svc_wall:
            svc_wall, svc_res = wall, res
    direct_res = solve(svc_inst, rng=_RUN_SEED, **svc_params)
    metrics["svc.submit_roundtrip_ref_sec"] = {
        "value": round(factor.apply(svc_wall), 3),
        "direction": "lower",
    }
    checks["svc_job_matches_direct_solve"] = bool(
        svc_res.best_tour.length == direct_res.best_tour.length
        and list(svc_res.best_tour.order) == list(direct_res.best_tour.order)
    )
    checks["svc_roundtrip_length"] = int(svc_res.best_tour.length)
    print(f"svc  submit->result roundtrip: {svc_wall:.2f}s wall "
          f"({factor.apply(svc_wall):.2f} ref-s), "
          f"length {svc_res.best_tour.length}")

    doc = {
        "format": _FORMAT_VERSION,
        "machine_factor": round(factor.factor, 4),
        "local_bench_seconds": round(factor.local_seconds, 4),
        "metrics": metrics,
        "checks": checks,
    }
    Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
