"""Solver-as-a-service: job lifecycle, tenancy, store, determinism.

The acceptance scenario from the service design (docs/SERVICE.md): many
tenants submit concurrent jobs against the sim backend; per-tenant
concurrency limits hold, streamed incumbents improve monotonically, and
every job's final tour is bit-identical to the equivalent direct
``solve()`` call.  Edge cases get their own tests: cancel mid-run,
tenant budget exhaustion mid-job, a crashing worker surfacing a
*failed* (not hung) job, and duplicate submits hitting the
content-addressed store.
"""

import asyncio

import numpy as np
import pytest

from repro.core import solve
from repro.obs import Tracer, use_tracer
from repro.service import (
    InstanceStore,
    JobError,
    JobStatus,
    SolverService,
    TenantPolicy,
    WorkQueue,
    instance_digest,
)
from repro.service.jobs import JobRecord, JobSpec
from repro.tsp import generators

pytestmark = pytest.mark.service


def make_instance(n=60, seed=3):
    return generators.uniform(n, rng=seed)


def run(coro):
    return asyncio.run(coro)


# -- content-addressed store -------------------------------------------------


class TestInstanceStore:
    def test_digest_ignores_name_and_covers_data(self):
        a = make_instance(seed=3)
        b = make_instance(seed=3)
        b.name = "renamed"
        c = make_instance(seed=4)
        assert instance_digest(a) == instance_digest(b)
        assert instance_digest(a) != instance_digest(c)

    def test_intern_shares_candidate_caches(self):
        store = InstanceStore()
        a = make_instance()
        canonical, _ = store.intern(a)
        canonical.neighbor_lists(8)
        b = make_instance()
        shared, _ = store.intern(b)
        assert shared is canonical
        assert 8 in shared._neighbor_cache  # warm cache carried over

    def test_lru_eviction_respects_byte_budget(self):
        small = make_instance(n=50, seed=1)
        per_entry = small.coords.nbytes
        store = InstanceStore(max_bytes=3 * per_entry + 10)
        instances = [make_instance(n=50, seed=s) for s in range(1, 6)]
        for inst in instances:
            store.intern(inst)
        assert store.evictions > 0
        assert store.total_bytes <= store.max_bytes
        # LRU order: the earliest entries were evicted, newest survives.
        assert instance_digest(instances[-1]) in store
        assert instance_digest(instances[0]) not in store

    def test_newest_entry_never_evicted(self):
        store = InstanceStore(max_bytes=1)  # below any instance's size
        inst = make_instance()
        canonical, digest = store.intern(inst)
        assert canonical is inst
        assert digest in store and len(store) == 1

    def test_metrics_counted(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            store = InstanceStore()
            store.intern(make_instance())
            store.intern(make_instance())
        m = tracer.metrics
        assert m.counter_value("engine.cache_misses") == 1
        assert m.counter_value("engine.cache_hits") == 1
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1


# -- work queue --------------------------------------------------------------


def _record(job_id, tenant="t", priority=0):
    spec = JobSpec(instance_name="x", tenant=tenant, priority=priority)
    return JobRecord(job_id, spec, digest="d")


class TestWorkQueue:
    def test_priority_then_fifo(self):
        q = WorkQueue(TenantPolicy(max_concurrency=10))
        q.push(_record("a", priority=1))
        q.push(_record("b", priority=0))
        q.push(_record("c", priority=0))
        assert [q.pop_ready().job_id for _ in range(3)] == ["b", "c", "a"]

    def test_per_tenant_concurrency_gate(self):
        q = WorkQueue(TenantPolicy(max_concurrency=1))
        q.push(_record("a1", tenant="a"))
        q.push(_record("a2", tenant="a"))
        q.push(_record("b1", tenant="b"))
        first = q.pop_ready()
        assert first.job_id == "a1"
        # Tenant a is at its cap; the next eligible job is b's.
        second = q.pop_ready()
        assert second.job_id == "b1"
        assert q.pop_ready() is None
        q.release(first)
        assert q.pop_ready().job_id == "a2"

    def test_budget_accounting(self):
        q = WorkQueue(TenantPolicy(max_concurrency=4, vsec_budget=1.0))
        assert q.remaining_budget("t") == 1.0
        q.charge("t", 0.6)
        assert not q.budget_exhausted("t")
        q.charge("t", 0.6)
        assert q.budget_exhausted("t")


# -- job lifecycle -----------------------------------------------------------


class TestJobLifecycle:
    def test_submit_runs_to_done_with_monotone_incumbents(self):
        async def main():
            async with SolverService(backend="sim") as svc:
                job_id = svc.submit(make_instance(), seed=7,
                                    budget_vsec_per_node=0.3, n_nodes=4,
                                    topology="ring")
                seen = []
                async for vsec, length, node in svc.stream_incumbents(job_id):
                    seen.append((vsec, length))
                result = await svc.result(job_id, timeout=60)
                return seen, result, svc.status(job_id)

        seen, result, status = run(main())
        assert status["status"] == "done"
        assert status["charged_vsec"] > 0
        lengths = [length for _, length in seen]
        assert lengths == sorted(lengths, reverse=True)
        assert len(set(lengths)) == len(lengths)  # strict improvements
        assert lengths[-1] == result.best_tour.length

    def test_job_determinism_bit_identical_to_direct_solve(self):
        inst = make_instance()
        params = dict(budget_vsec_per_node=0.3, n_nodes=4, topology="ring")

        async def main():
            async with SolverService(backend="sim", slice_steps=3) as svc:
                job_id = svc.submit(inst, seed=11, **params)
                return await svc.result(job_id, timeout=60)

        via_service = run(main())
        direct = solve(inst, rng=11, **params)
        assert via_service.best_tour.length == direct.best_tour.length
        assert np.array_equal(via_service.best_tour.order,
                              direct.best_tour.order)

    def test_cancel_mid_run(self):
        async def main():
            async with SolverService(backend="sim", slice_steps=1) as svc:
                job_id = svc.submit(make_instance(n=200), seed=1,
                                    budget_vsec_per_node=5.0, n_nodes=4)
                # Let it start, then cancel while running.
                for _ in range(50):
                    await asyncio.sleep(0.01)
                    if svc.status(job_id)["status"] == "running":
                        break
                assert svc.cancel(job_id)
                with pytest.raises(JobError):
                    await svc.result(job_id, timeout=60)
                return svc.status(job_id), svc.jobs[job_id]

        status, record = run(main())
        assert status["status"] == "cancelled"
        assert record.status is JobStatus.CANCELLED

    def test_cancel_while_queued(self):
        async def main():
            # max_running=1 keeps the second job queued.
            async with SolverService(backend="sim", max_running=1) as svc:
                j1 = svc.submit(make_instance(), seed=1,
                                budget_vsec_per_node=0.5, n_nodes=2)
                j2 = svc.submit(make_instance(), seed=2,
                                budget_vsec_per_node=0.5, n_nodes=2)
                assert svc.cancel(j2)
                assert svc.status(j2)["status"] == "cancelled"
                await svc.wait(j1, timeout=60)
                return svc.status(j1)["status"]

        assert run(main()) == "done"

    def test_tenant_budget_exhaustion_mid_job(self):
        async def main():
            async with SolverService(backend="sim", slice_steps=4) as svc:
                svc.set_tenant("poor", TenantPolicy(max_concurrency=2,
                                                    vsec_budget=0.2))
                job_id = svc.submit(make_instance(), tenant="poor", seed=1,
                                    budget_vsec_per_node=5.0, n_nodes=4)
                with pytest.raises(JobError) as err:
                    await svc.result(job_id, timeout=60)
                return str(err.value), svc.status(job_id)

        message, status = run(main())
        assert status["status"] == "failed"
        assert "budget" in message
        assert status["charged_vsec"] >= 0.2  # the overshoot was metered

    def test_budget_exhausted_tenant_fails_queued_jobs_fast(self):
        async def main():
            async with SolverService(backend="sim", slice_steps=2) as svc:
                svc.set_tenant("dry", TenantPolicy(vsec_budget=0.001))
                j1 = svc.submit(make_instance(n=200), tenant="dry", seed=1,
                                budget_vsec_per_node=5.0, n_nodes=4)
                with pytest.raises(JobError):
                    await svc.result(j1, timeout=60)
                # The first job drained the allowance; the next fails at
                # admission instead of queueing forever.
                j2 = svc.submit(make_instance(), tenant="dry", seed=2,
                                budget_vsec_per_node=1.0, n_nodes=2)
                with pytest.raises(JobError):
                    await svc.result(j2, timeout=60)
                return svc.status(j2)

        status = run(main())
        assert status["status"] == "failed"
        assert "budget" in (status["error"] or "")

    def test_duplicate_submit_hits_content_store(self):
        async def main():
            async with SolverService(backend="sim") as svc:
                a = make_instance(seed=3)
                b = make_instance(seed=3)
                b.name = "same-data-other-name"
                j1 = svc.submit(a, tenant="t1", seed=5,
                                budget_vsec_per_node=0.2, n_nodes=2)
                j2 = svc.submit(b, tenant="t2", seed=5,
                                budget_vsec_per_node=0.2, n_nodes=2)
                await svc.wait(j1, timeout=60)
                await svc.wait(j2, timeout=60)
                return svc.status(j1), svc.status(j2), svc.store.stats()

        s1, s2, store = run(main())
        assert s1["digest"] == s2["digest"]
        assert not s1["store_hit"] and s2["store_hit"]
        assert store["entries"] == 1
        assert store["hits"] == 1 and store["misses"] == 1

    def test_submit_after_close_rejected(self):
        async def main():
            svc = SolverService(backend="sim")
            await svc.start()
            await svc.close()
            with pytest.raises(RuntimeError):
                svc.submit(make_instance())

        run(main())


@pytest.mark.slow
@pytest.mark.timeout(180)
class TestProcessBackend:
    def test_backend_crash_surfaces_failed_job(self):
        async def main():
            async with SolverService(backend="process") as svc:
                job_id = svc.submit(make_instance(n=50), seed=1,
                                    budget_vsec_per_node=0.2, n_nodes=2,
                                    _crash=True)
                with pytest.raises(JobError) as err:
                    await svc.result(job_id, timeout=120)
                return str(err.value), svc.status(job_id)["status"]

        message, status = run(main())
        assert status == "failed"
        assert "worker exited" in message

    def test_process_budget_metering_stops_job_mid_run(self):
        """The ROADMAP follow-up: process-backend budgeting is metering,
        not admission control.  A job whose declared cost dwarfs the
        tenant allowance is *admitted* (the old admission check would
        have rejected it outright), paced by per-slice progress charges,
        and stopped mid-run with a partial result once the allowance is
        gone."""
        async def main():
            async with SolverService(backend="process") as svc:
                svc.set_tenant("poor", TenantPolicy(max_concurrency=2,
                                                    vsec_budget=0.2))
                job_id = svc.submit(make_instance(), tenant="poor", seed=1,
                                    budget_vsec_per_node=5.0, n_nodes=4)
                with pytest.raises(JobError) as err:
                    await svc.result(job_id, timeout=120)
                return str(err.value), svc.status(job_id)

        message, status = run(main())
        assert status["status"] == "failed"
        assert "budget" in message
        # The overshoot was metered from worker progress reports — far
        # less than the declared 20 vsec the old admission-only path
        # charged, but at least the allowance itself.
        assert 0.2 <= status["charged_vsec"] < 20.0

    def test_process_job_bit_identical_to_direct_solve(self):
        inst = make_instance(n=50)
        params = dict(budget_vsec_per_node=0.2, n_nodes=2, topology="ring")

        async def main():
            async with SolverService(backend="process") as svc:
                job_id = svc.submit(inst, seed=9, **params)
                return await svc.result(job_id, timeout=120)

        via_service = run(main())
        direct = solve(inst, rng=9, **params)
        assert np.array_equal(via_service.best_tour.order,
                              direct.best_tour.order)


# -- the acceptance scenario -------------------------------------------------


class TestMultiTenantScenario:
    def test_three_tenants_four_jobs_each_limits_and_determinism(self):
        """3 tenants x 4 concurrent jobs on the sim backend: per-tenant
        limits respected, incumbents monotone, every final tour
        bit-identical to the equivalent direct solve()."""
        tenants = ("red", "green", "blue")
        inst = make_instance(n=80, seed=2)
        params = dict(budget_vsec_per_node=0.15, n_nodes=2,
                      topology="ring")
        tracer = Tracer(enabled=True)

        async def main():
            async with SolverService(backend="sim", max_running=6,
                                     slice_steps=8) as svc:
                for t in tenants:
                    svc.set_tenant(t, TenantPolicy(max_concurrency=2))
                jobs = {}
                for t in tenants:
                    for k in range(4):
                        jobs[svc.submit(inst, tenant=t, seed=100 + k,
                                        **params)] = (t, 100 + k)

                async def watch_limits():
                    peaks = {t: 0 for t in tenants}
                    while any(not svc.jobs[j].status.terminal
                              for j in jobs):
                        for t in tenants:
                            peaks[t] = max(peaks[t], svc.queue.running(t))
                        await asyncio.sleep(0.005)
                    return peaks

                watcher = asyncio.create_task(watch_limits())
                streams = {
                    j: [item async for item in svc.stream_incumbents(j)]
                    for j in jobs
                }
                results = {j: await svc.result(j, timeout=120)
                           for j in jobs}
                peaks = await asyncio.wait_for(watcher, timeout=60)
                return jobs, streams, results, peaks

        with use_tracer(tracer):
            jobs, streams, results, peaks = run(main())

        # Per-tenant concurrency never exceeded the policy cap.
        assert all(0 < peaks[t] <= 2 for t in peaks)
        # Incumbent streams improve monotonically.
        for stream in streams.values():
            lengths = [length for _, length, _ in stream]
            assert lengths == sorted(lengths, reverse=True)
        # Determinism: each job matches its direct-solve twin (4 distinct
        # seeds; each seed's direct run checked once, reused 3x).
        direct = {seed: solve(inst, rng=seed, **params)
                  for seed in {seed for _, seed in jobs.values()}}
        for job_id, (_, seed) in jobs.items():
            assert np.array_equal(results[job_id].best_tour.order,
                                  direct[seed].best_tour.order)
        # The service metrics the acceptance criteria name are present.
        m = tracer.metrics
        assert m.histogram("svc.job_latency").count == 12
        assert m.histogram("svc.queue_depth").count >= 12
        for t in tenants:
            assert m.counter_value("svc.jobs_submitted", tenant=t) == 4
            assert m.counter_value("svc.jobs_done", tenant=t) == 4
