"""Paper Figure 3: effect of parallelization (8 vs 1 nodes vs CLK).

    "Effects of parallelization running the distributed algorithms on a
    different number of nodes and optional perturbation for instances
    fl3795 and fi10639."

Runs the same EA with 1 and 8 nodes plus plain CLK, and also the 1-node
variant *without* the variable-strength DBM (the paper's 'optional
perturbation' axis: that variant degenerates to restart-free CLK).
Shape to reproduce: 8 nodes dominates 1 node on the per-node time axis;
1 node with the EA perturbation at least matches plain CLK.
"""

import numpy as np

from _common import (
    emit,
    N_NODES,
    N_RUNS,
    clk_budget,
    print_banner,
    reference,
    run_clk,
    run_dist,
    seeds,
)
from repro.analysis import ascii_chart, average_traces, format_series

INSTANCES = ("fl300", "fi450")  # paper: fl3795, fi10639


def _experiment():
    out = {}
    for name in INSTANCES:
        budget = clk_budget(name)
        times = np.linspace(budget / 20, budget, 10)
        clk_traces = [
            run_clk(name, "random_walk", s, budget=budget).trace
            for s in seeds(8700 + hash(name) % 500, N_RUNS)
        ]
        one_traces = [
            run_dist(name, "random_walk", s, n_nodes=1,
                     budget=budget).global_trace
            for s in seeds(8800 + hash(name) % 500, N_RUNS)
        ]
        eight_traces = [
            run_dist(name, "random_walk", s, n_nodes=N_NODES,
                     budget=budget / N_NODES).global_trace
            for s in seeds(8900 + hash(name) % 500, N_RUNS)
        ]
        series = {
            "ABCC-CLK": average_traces(clk_traces, times),
            "DistCLK-1": average_traces(one_traces, times),
            f"DistCLK-{N_NODES}": average_traces(eight_traces, times),
        }
        out[name] = (times, series)
    return out


def test_fig3_parallelization(once):
    out = once(_experiment)
    final_8 = {}
    final_1 = {}
    for name, (times, series) in out.items():
        ref, _ = reference(name)
        print_banner(
            f"Figure 3: parallelization effect on {name} "
            f"(x = vsec per node; 8-node budget is 1/{N_NODES} of the rest)"
        )
        emit(format_series(times, series))
        emit()
        emit(ascii_chart(times, series, title=f"{name}"))
        eight = [v for v in series[f"DistCLK-{N_NODES}"] if np.isfinite(v)]
        one = [v for v in series["DistCLK-1"] if np.isfinite(v)]
        final_8[name] = eight[-1]
        final_1[name] = one[-1]

    # Shape: with 1/8 of the per-node time, 8 nodes end no more than a
    # hair above the 1-node variant's final quality (paper: clearly
    # better at matched per-node times).
    for name in INSTANCES:
        assert final_8[name] <= final_1[name] * 1.01, name
