"""Alpha-nearness (Helsgaun).

``alpha(i, j)`` is the increase of the minimum 1-tree's weight when edge
``(i, j)`` is forced into it — a much better measure of how likely an edge
is to belong to an optimal tour than raw distance.  LKH restricts its
candidate lists to the 5 alpha-nearest neighbours; our LKH-style baseline
does the same with the LK engine.

Computation (for a 1-tree with special node ``s`` and penalized weights):

* edge in the 1-tree: ``alpha = 0``;
* edge incident to ``s``: ``alpha = w(s,j) - w(second special edge)``;
* otherwise ``alpha = w(i,j) - beta(i,j)`` where ``beta(i,j)`` is the
  largest tree-edge weight on the spanning-tree path between i and j,
  computed by the standard O(n^2) row-by-row DFS recurrence
  ``beta(i, j) = max(beta(i, parent(j)), w(parent(j), j))``.

Penalties from the Held-Karp ascent sharpen the measure further (Helsgaun
uses exactly this combination).
"""

from __future__ import annotations

import numpy as np

from ..bounds.held_karp import held_karp_bound
from ..bounds.one_tree import minimum_one_tree

__all__ = ["alpha_matrix", "alpha_candidate_lists"]


def alpha_matrix(instance, pi: np.ndarray | None = None,
                 ascent_iterations: int = 60) -> np.ndarray:
    """Full ``(n, n)`` alpha-nearness matrix.

    When ``pi`` is omitted a short Held-Karp ascent provides the
    penalties.  O(n^2) time and memory.
    """
    n = instance.n
    if pi is None:
        pi = held_karp_bound(instance, max_iterations=ascent_iterations).pi
    tree = minimum_one_tree(instance, pi)
    w = instance.distance_matrix().astype(np.float64) + pi[:, None] + pi[None, :]

    special = 0
    # Children adjacency of the spanning tree (without the special node).
    adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    special_edges = []
    for i, j in tree.edges:
        i, j = int(i), int(j)
        if i == special or j == special:
            other = j if i == special else i
            special_edges.append((other, w[special, other]))
            continue
        adj[i].append((j, w[i, j]))
        adj[j].append((i, w[i, j]))

    alpha = np.empty((n, n), dtype=np.float64)

    # beta over the spanning tree (special node excluded), row by row.
    beta_row = np.zeros(n, dtype=np.float64)
    nodes = [v for v in range(n) if v != special]
    for i in nodes:
        beta_row[:] = -np.inf
        beta_row[i] = 0.0
        stack = [i]
        while stack:
            u = stack.pop()
            for v, wuv in adj[u]:
                if beta_row[v] == -np.inf:
                    beta_row[v] = max(beta_row[u], wuv)
                    stack.append(v)
        alpha[i, :] = w[i, :] - beta_row
        alpha[i, i] = 0.0

    # Special-node rows: forcing (s, j) evicts the longer special edge.
    (e1, w1), (e2, w2) = sorted(special_edges, key=lambda t: t[1])
    longer = w2
    alpha[special, :] = w[special, :] - longer
    alpha[:, special] = alpha[special, :]
    alpha[special, special] = 0.0

    # Tree edges cost nothing to force.
    for i, j in tree.edges:
        alpha[int(i), int(j)] = 0.0
        alpha[int(j), int(i)] = 0.0
    np.maximum(alpha, 0.0, out=alpha)
    return alpha


def alpha_candidate_lists(instance, k: int = 5,
                          pi: np.ndarray | None = None,
                          ascent_iterations: int = 60) -> np.ndarray:
    """``(n, k)`` candidate lists: the k alpha-nearest neighbours per city.

    Ties in alpha (common: all tree edges are 0) break by penalized
    distance, then city index — deterministic like the k-NN lists.
    """
    n = instance.n
    k = min(k, n - 1)
    alpha = alpha_matrix(instance, pi=pi, ascent_iterations=ascent_iterations)
    d = instance.distance_matrix()
    out = np.empty((n, k), dtype=np.int32)
    idx = np.arange(n)
    for i in range(n):
        a = alpha[i].copy()
        a[i] = np.inf
        order = np.lexsort((idx, d[i], a))
        out[i] = order[:k]
    return out
