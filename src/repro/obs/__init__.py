"""Unified observability layer: tracing, metrics, profiling hooks.

The paper's headline claim — super-linear speed-up from cooperating CLK
nodes under a fixed total CPU budget — dies silently when a hot loop
regresses or one node stalls.  This package is the substrate every
performance PR measures itself against:

* :class:`~repro.obs.tracer.Tracer` — span-based tracing in *both* time
  domains: virtual-time spans (timestamps read from a
  :class:`~repro.utils.work.WorkMeter` or any ``.vsec`` source) and
  wall-clock spans (``time.perf_counter``).  Spans nest; when tracing is
  disabled (the default) every instrumentation site degenerates to a
  single attribute check and a shared no-op context manager.
* :class:`~repro.obs.metrics.Metrics` — counters, gauges and histograms
  with per-node labels and a hard label-cardinality cap.
* :mod:`~repro.obs.export` — JSONL trace export/import (one object per
  line: spans, then metric series), consumed by ``python -m repro trace
  summarize`` and :mod:`repro.analysis.obs_report`.
* :mod:`~repro.obs.summary` — per-node time-in-phase tables, flame-style
  span aggregation and histogram rendering.

Activation mirrors the sanitizer: the environment variable ``REPRO_OBS=1``
enables the *global* tracer (read once, cached); tests and the CLI's
``--trace`` flag install a fresh enabled tracer via :func:`use_tracer`
regardless of the environment.

Wall-clock reads live *only* in this package: instrumented virtual-time
code (the engine, the EA node, the simulator) calls into the tracer and
never touches the clock itself, which is why ``repro.obs`` is the
sanctioned exception to reprolint's RPL002 (see docs/CHECKS.md and
docs/OBSERVABILITY.md).
"""

from .metrics import NULL_METRICS, Histogram, Metrics
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    obs_enabled,
    set_obs,
    set_tracer,
    use_tracer,
)
from .export import TraceData, read_jsonl, write_jsonl
from .summary import (
    flame_table,
    histogram_table,
    phase_table,
    summarize_trace,
    time_in_phase,
)

__all__ = [
    "Tracer",
    "Span",
    "NULL_SPAN",
    "Metrics",
    "Histogram",
    "NULL_METRICS",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "obs_enabled",
    "set_obs",
    "TraceData",
    "write_jsonl",
    "read_jsonl",
    "time_in_phase",
    "phase_table",
    "flame_table",
    "histogram_table",
    "summarize_trace",
]
