"""The distributed EA node (paper Figure 1).

Each node runs the loop::

    s_prev := INITIALTOUR
    s_best := CHAINEDLINKERNIGHAN(s_prev)
    while not TERMINATIONDETECTED:
        s          := CHAINEDLINKERNIGHAN(PERTURBATE(s_best))
        S_received := ALLRECEIVEDTOURS
        s_best     := SELECTBESTTOUR(S_received + {s} + {s_prev})
        if LENGTH(s_best) == LENGTH(s_prev): NumNoImprovements += 1
        elif s_best == s:                    BROADCASTTONEIGHBORS(s_best)
        s_prev := s_best

with the variable-strength perturbation::

    PERTURBATE(s):
        if NumNoImprovements > c_r: reset counters; return INITIALTOUR
        NumPerturbations := NumNoImprovements // c_v + 1
        return VARIATETOUR(s, NumPerturbations)   # that many double bridges

The node is transport-agnostic: the simulator (or the multiprocessing
backend) calls :meth:`compute` (perturb + CLK, consuming work) and then
:meth:`select` with whatever messages arrived meanwhile — exactly the
paper's asynchronous semantics, where tours received *during* the local
CLK call take part in the selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..localsearch.chained_lk import ChainedLK
from ..localsearch.kicks import apply_double_bridge
from ..localsearch.lin_kernighan import LKConfig
from ..obs import get_tracer
from ..tsp.tour import Tour
from ..utils.rng import ensure_rng
from ..utils.sanitize import check_tour, sanitize_enabled
from ..utils.work import OPS_PER_VSEC as _OPS_PER_VSEC, WorkMeter
from ..distributed.message import Message, MessageKind
from .backbone import ElitePool
from .events import EventKind, EventLog

__all__ = ["NodeConfig", "SelectOutcome", "EANode"]


@dataclass(frozen=True, slots=True)
class NodeConfig:
    """Per-node algorithm parameters (paper defaults)."""

    #: Kick strategy for the inner CLK and the EA perturbation.
    kick: str = "random_walk"
    #: Perturbation-strength divisor: NumPerturbations = nni // c_v + 1.
    c_v: int = 64
    #: Restart threshold: nni > c_r discards the tour and restarts.
    c_r: int = 256
    #: Kicks per inner CLK call (linkern invocation granularity).
    inner_kicks: int = 5
    #: LK engine settings.
    lk_config: LKConfig = field(default_factory=LKConfig)
    #: Known optimum (termination criterion 1); None disables.
    target_length: Optional[int] = None
    #: Backbone extension (Bachem & Wottawa partial reduction): fraction
    #: of the node's elite pool an edge must appear in to be protected
    #: from LK.  0.0 (default) disables the extension.
    backbone_support: float = 0.0
    #: Elite-pool capacity for the backbone computation.
    elite_capacity: int = 6
    #: Leave the one-time bootstrap (construction + first LK pass)
    #: uncharged on the node clock.  Negligible at the paper's scale,
    #: ~25% of a node budget at bench scale (DESIGN.md §2); restarts are
    #: always charged.
    free_init: bool = False
    #: Batched best-of-N kicks: chains per inner-CLK kick iteration.  1
    #: (default) is the paper's serial loop, bit for bit; N > 1 runs N
    #: independent kick chains and keeps the best, charging the node's
    #: virtual clock for all N (wall-clock parallelism only).
    kick_batch_width: int = 1
    #: How batched chains execute: "process" (spawn pool; falls back to
    #: inline inside daemonic workers) or "inline" (sequential in-process).
    kick_batch_backend: str = "process"

    def with_target(self, target: Optional[int]) -> "NodeConfig":
        return replace(self, target_length=target)


@dataclass(frozen=True, slots=True)
class SelectOutcome:
    """Result of one selection step."""

    best_length: int
    improved: bool
    #: Tour to broadcast (the local CLK result became the new best).
    broadcast: Optional[Tour] = None
    #: Target reached locally or via notification.
    done_reason: Optional[str] = None


class EANode:
    """One node of the distributed algorithm."""

    def __init__(self, node_id: int, instance, config: NodeConfig, rng=None):
        self.node_id = node_id
        self.instance = instance
        self.config = config
        self.rng = ensure_rng(rng)
        self.clk = ChainedLK(
            instance, kick=config.kick, lk_config=config.lk_config,
            rng=self.rng, batch_width=config.kick_batch_width,
            batch_backend=config.kick_batch_backend,
        )
        self.clock = 0.0  # virtual seconds of CPU consumed
        self.s_prev: Optional[Tour] = None
        self.s_best: Optional[Tour] = None
        self.num_no_improvements = 0
        self._last_strength = 1
        self.events = EventLog(node_id)
        self.done_reason: Optional[str] = None
        #: Observability sink shared with the inner CLK solver; captured
        #: once so phase spans cost one attribute check when disabled.
        self.tracer = get_tracer()
        self._elite = (
            ElitePool(config.elite_capacity)
            if config.backbone_support > 0.0
            else None
        )

    # -- state queries --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.done_reason is not None

    @property
    def best_length(self) -> Optional[int]:
        return self.s_best.length if self.s_best is not None else None

    @property
    def op_stats(self):
        """Cumulative engine telemetry (candidate scans, flips, swaps,
        wakeups) across every CLK call this node has made."""
        return self.clk.stats

    # -- Figure 1: compute phase ----------------------------------------------

    def compute(self, budget_vsec: float) -> tuple[float, Tour]:
        """Perturb + CLK: produce the candidate tour ``s``.

        Consumes at most ``budget_vsec`` of work (checked at move
        boundaries); returns ``(work_consumed_vsec, candidate)``.  The
        node's clock is advanced by the caller.
        """
        meter = WorkMeter.with_vsec_budget(max(budget_vsec, 1e-9))
        base_ops = 0.0
        tracer = self.tracer
        if self.s_best is None:
            # s_prev := INITIALTOUR; s := CLK(s_prev)
            # The bootstrap (construction + first LK pass) is part of the
            # optimize phase; with free_init its vsec is uncharged on the
            # node clock, so phase sums exceed the clock by exactly the
            # bootstrap cost (documented in docs/OBSERVABILITY.md).
            with tracer.span("phase.optimize", vt=meter, node=self.node_id):
                if self.config.free_init:
                    meter.budget_ops = None  # bootstrap always completes
                tour = self.clk.initial_tour(meter)
                if self.config.free_init:
                    base_ops = meter.ops
                    meter.budget_ops = (
                        base_ops + max(budget_vsec, 1e-9) * _OPS_PER_VSEC
                    )
                self.s_prev = tour.copy()
                cand = self._clk_call(tour, dirty=None, meter=meter)
        else:
            with tracer.span("phase.perturb", vt=meter, node=self.node_id):
                tour, dirty = self._perturbate(meter)
            with tracer.span("phase.optimize", vt=meter, node=self.node_id):
                cand = self._clk_call(tour, dirty=dirty, meter=meter)
        return (meter.ops - base_ops) / _OPS_PER_VSEC, cand

    def _perturbate(self, meter: WorkMeter) -> tuple[Tour, Optional[set]]:
        """PERTURBATE(s_best): variable-strength DBMs or a restart."""
        cfg = self.config
        if self.num_no_improvements > cfg.c_r:
            self.num_no_improvements = 0
            self._last_strength = 1
            self.events.record(self.clock, EventKind.RESTART)
            with self.tracer.span("clk.restart", vt=meter,
                                  node=self.node_id):
                tour = self.clk.initial_tour(meter)
            return tour, None
        strength = self.num_no_improvements // cfg.c_v + 1
        if strength != self._last_strength:
            self._last_strength = strength
            self.events.record(
                self.clock, EventKind.PERTURBATION_STRENGTH, strength
            )
        tour = self.s_best.copy()
        dirty: set[int] = set()
        for _ in range(strength):
            positions = self.clk._kick_fn(tour, self.rng,
                                          stats=self.clk.stats)
            dirty.update(apply_double_bridge(tour, positions))
            meter.tick(tour.n // 8 + 8)
        return tour, dirty

    def _backbone(self) -> Optional[set]:
        """Current fixed-edge backbone, when the extension is enabled."""
        if self._elite is None or len(self._elite) < 3:
            return None
        edges = self._elite.backbone(self.config.backbone_support)
        return edges or None

    def _clk_call(self, tour: Tour, dirty, meter: WorkMeter) -> Tour:
        """One 'linkern' invocation: LK pass then ``inner_kicks`` chained kicks.

        With ``kick_batch_width`` > 1 each kick iteration becomes a
        batched best-of-N stage (the node clock is charged for all N
        chains, so the paper's per-node CPU accounting is unchanged)."""
        with self.tracer.span("clk.call", vt=meter, node=self.node_id):
            fixed = self._backbone()
            self.clk.lk.optimize(tour, meter, dirty=dirty, fixed=fixed)
            best = tour
            target = self.config.target_length
            batched = self.config.kick_batch_width > 1
            for _ in range(self.config.inner_kicks):
                if meter.exhausted():
                    break
                if target is not None and best.length <= target:
                    break
                if batched:
                    cand = self.clk.step_batch(best, meter, fixed=fixed,
                                               target_length=target)
                else:
                    cand = self.clk.step(best, meter, fixed=fixed)
                if cand.length <= best.length:
                    best = cand
        return best

    # -- Figure 1: selection phase ----------------------------------------------

    def select(self, candidate: Tour, messages: list[Message]) -> SelectOutcome:
        """SELECTBESTTOUR over {received} + {candidate} + {s_prev}.

        Updates counters per the pseudocode; returns what the transport
        layer must do (broadcast / terminate).
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._select(candidate, messages)
        # Selection consumes no metered work: the span is wall-only plus
        # a zero-width virtual stamp at the node's current clock, so the
        # phase exists in time-in-phase tables without claiming budget.
        with tracer.span("phase.select", vt=lambda: self.clock,
                         node=self.node_id):
            return self._select(candidate, messages)

    def _select(self, candidate: Tour, messages: list[Message]) -> SelectOutcome:
        notified = any(m.kind is MessageKind.OPTIMUM_FOUND for m in messages)
        received: list[Tour] = []
        for m in messages:
            # OPTIMUM_FOUND floods carry the winning tour; it competes in
            # the selection like any received tour, so the node terminates
            # holding the network optimum rather than its stale local best.
            if m.order is not None and m.kind in (
                MessageKind.TOUR, MessageKind.OPTIMUM_FOUND
            ):
                tour = Tour(self.instance, m.order, m.length)
                if sanitize_enabled():
                    # The constructor trusts the wire length; verify the
                    # payload really is a permutation of that length.
                    check_tour(
                        tour,
                        f"tour received by node {self.node_id} "
                        f"from node {m.sender}",
                    )
                received.append(tour)
        if self._elite is not None:
            self._elite.add(candidate)
            for t in received:
                self._elite.add(t)

        if self.s_best is None:
            # First iteration: s_best := CLK(s_prev); candidate plays s_best.
            self.s_best = candidate
            self.s_prev = candidate
            self.events.record(
                self.clock, EventKind.INITIAL_TOUR, candidate.length
            )
            out_broadcast = candidate
            improved = True
        else:
            # linkern-style acceptance: the local candidate is adopted on
            # ties too (plateau drift matters on fl-class instances),
            # but a tie still counts as "no improvement" and is not
            # broadcast.  Received tours are adopted only when strictly
            # better (avoids equal-length broadcast ping-pong).
            best = self.s_prev
            from_local = False
            if candidate.length <= best.length:
                best = candidate
                from_local = True
            for t in received:
                if t.length < best.length:
                    best = t
                    from_local = False
            improved = best.length < self.s_prev.length
            if not improved:
                self.num_no_improvements += 1
                out_broadcast = None
            else:
                self.num_no_improvements = 0
                self._last_strength = 1
                kind = (
                    EventKind.LOCAL_IMPROVEMENT
                    if from_local
                    else EventKind.RECEIVED_IMPROVEMENT
                )
                self.events.record(self.clock, kind, best.length)
                out_broadcast = best if from_local else None
            self.s_best = best
            self.s_prev = best

        if out_broadcast is not None:
            self.events.record(self.clock, EventKind.BROADCAST, out_broadcast.length)

        done_reason = None
        target = self.config.target_length
        if target is not None and self.s_best.length <= target:
            done_reason = "optimum"
        elif notified:
            done_reason = "notified"
        if done_reason:
            self._finish(done_reason)
        return SelectOutcome(
            best_length=self.s_best.length,
            improved=improved,
            broadcast=out_broadcast,
            done_reason=done_reason,
        )

    def _finish(self, reason: str) -> None:
        if self.done_reason is None:
            self.done_reason = reason
            self.events.record(self.clock, EventKind.DONE, reason)

    def stop(self, reason: str) -> None:
        """External termination (budget exhausted, simulation end)."""
        self._finish(reason)

    def close(self) -> None:
        """Release the inner solver's batch-kick pool, if any."""
        self.clk.close()
