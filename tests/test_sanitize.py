"""Tests for the REPRO_SANITIZE runtime invariant checks.

Each check is exercised three ways: it passes on valid state, it raises
:class:`SanitizeError` on the specific corruption it guards, and the
hooks in the engine/simulator are inert when the flag is off.
"""

import numpy as np
import pytest

from repro.distributed.message import MessageKind
from repro.distributed.network import SimulatedNetwork
from repro.distributed.simulator import run_simulation
from repro.localsearch import two_opt
from repro.tsp import generators
from repro.tsp.candidates import KNNCandidates
from repro.tsp.tour import random_tour
from repro.utils.rng import ensure_rng
from repro.utils.sanitize import (
    SanitizeError,
    check_candidate_rows,
    check_message_conservation,
    check_tour,
    sanitize_enabled,
    set_sanitize,
)


@pytest.fixture
def instance():
    return generators.uniform(30, rng=7)


@pytest.fixture
def sanitize_on():
    set_sanitize(True)
    yield
    set_sanitize(None)


@pytest.fixture
def sanitize_off():
    set_sanitize(False)
    yield
    set_sanitize(None)


class TestFlag:
    def test_env_parsing(self, monkeypatch):
        for raw, expected in [
            ("1", True), ("true", True), ("yes", True),
            ("", False), ("0", False), ("false", False), ("off", False),
            ("no", False),
        ]:
            set_sanitize(None)  # force a re-read
            monkeypatch.setenv("REPRO_SANITIZE", raw)
            assert sanitize_enabled() is expected, raw
        set_sanitize(None)

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        set_sanitize(False)
        assert sanitize_enabled() is False
        set_sanitize(None)


class TestCheckTour:
    def test_valid_tour_passes(self, instance):
        tour = random_tour(instance, ensure_rng(1))
        check_tour(tour, "test")

    def test_catches_duplicate_city(self, instance):
        tour = random_tour(instance, ensure_rng(1))
        tour.order[0] = tour.order[1]
        with pytest.raises(SanitizeError, match="not a permutation"):
            check_tour(tour, "corruption")

    def test_catches_stale_position_inverse(self, instance):
        tour = random_tour(instance, ensure_rng(1))
        # Swap two cities in order[] without updating position[].
        tour.order[[0, 1]] = tour.order[[1, 0]]
        with pytest.raises(SanitizeError, match="inverse"):
            check_tour(tour)

    def test_catches_length_drift(self, instance):
        tour = random_tour(instance, ensure_rng(1))
        tour.length += 5
        with pytest.raises(SanitizeError, match="drifted"):
            check_tour(tour, "gain accounting")

    def test_is_assertion_error(self, instance):
        tour = random_tour(instance, ensure_rng(1))
        tour.length += 5
        with pytest.raises(AssertionError):
            check_tour(tour)


class TestCheckCandidateRows:
    def test_valid_rows_pass(self, instance):
        rows = instance.neighbor_lists(6)
        check_candidate_rows(instance, rows)

    def test_catches_unsorted_row(self, instance):
        rows = instance.neighbor_lists(6).copy()
        rows[3] = rows[3][::-1]  # farthest-first
        with pytest.raises(SanitizeError, match="distance-sorted"):
            check_candidate_rows(instance, rows)

    def test_catches_self_reference(self, instance):
        rows = instance.neighbor_lists(6).copy()
        rows[3, 0] = 3
        with pytest.raises(SanitizeError, match="itself"):
            check_candidate_rows(instance, rows)

    def test_catches_interior_duplicate(self, instance):
        rows = instance.neighbor_lists(6).copy()
        rows[3, 1] = rows[3, 0]
        with pytest.raises(SanitizeError, match="duplicate"):
            check_candidate_rows(instance, rows)

    def test_allows_trailing_padding(self, instance):
        # Variable-degree providers pad short rows with their farthest
        # entry; that convention must not trip the duplicate check.
        rows = instance.neighbor_lists(4).copy()
        rows[:, -1] = rows[:, -2]
        check_candidate_rows(instance, rows)

    def test_provider_checked_once_per_instance(self, instance, sanitize_on):
        provider = KNNCandidates(5)
        provider.lists(instance)
        marker = ("sanitized",) + provider.cache_key()
        assert instance._neighbor_cache.get(marker) is True


class TestMessageConservation:
    @staticmethod
    def _ring2():
        return SimulatedNetwork({0: (1,), 1: (0,)})

    def test_holds_through_send_and_collect(self):
        net = self._ring2()
        net.broadcast(0, MessageKind.TOUR, 100, sent_at=0.0)
        check_message_conservation(net, "in flight")
        net.collect(1, up_to=10.0)
        check_message_conservation(net, "delivered")

    def test_catches_dropped_message(self):
        net = self._ring2()
        net.broadcast(0, MessageKind.TOUR, 100, sent_at=0.0)
        net._inboxes[1].clear()  # lose the copy without accounting
        with pytest.raises(SanitizeError, match="conservation"):
            check_message_conservation(net)

    def test_accounted_drop_passes(self):
        net = self._ring2()
        net.broadcast(0, MessageKind.TOUR, 100, sent_at=0.0)
        net._inboxes[1].clear()
        net.stats.dropped += 1  # a lossy model would book it like this
        check_message_conservation(net)


class TestEngineHooks:
    def test_two_opt_clean_under_sanitize(self, instance, sanitize_on):
        tour = random_tour(instance, ensure_rng(2))
        two_opt(tour, neighbor_k=6)
        assert tour.is_valid()

    def test_two_opt_detects_seeded_corruption(self, instance, sanitize_on):
        tour = random_tour(instance, ensure_rng(2))
        tour.length -= 3  # pre-corrupt the incremental accounting
        with pytest.raises(SanitizeError, match="drifted"):
            two_opt(tour, neighbor_k=6)

    def test_hooks_inert_when_off(self, instance, sanitize_off):
        tour = random_tour(instance, ensure_rng(2))
        tour.length -= 3
        two_opt(tour, neighbor_k=6)  # no check, no raise

    def test_simulation_clean_under_sanitize(self, instance, sanitize_on):
        result = run_simulation(
            instance, n_nodes=2, budget_vsec_per_node=0.02, rng=11,
        )
        assert result.best_tour.is_valid()
