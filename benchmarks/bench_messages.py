"""Paper §4 (opening): message statistics of the distributed runs.

    "In case of all 30 runs of instance sw24978 using an eight node
    setup, 2546 times a node found a better tour and sent it to the
    other nodes.  On average, 84.9 broadcasts were initiated per run ...
    Due to rapid improvements at the beginning of each run, most
    messages are broadcasted within this phase. ... the overall
    communication overhead is neglectable."

Reproduces the accounting on the sw-class analogue: broadcasts per run,
messages per node, the early-phase concentration of broadcasts, and the
communication-to-computation ratio.
"""

import numpy as np

from _common import (
    emit,
    N_NODES,
    N_RUNS,
    dist_budget_per_node,
    print_banner,
    run_dist,
    seeds,
)
from repro.analysis import format_table

INSTANCE = "sw520"  # paper: sw24978


def _experiment():
    runs = [
        run_dist(INSTANCE, "random_walk", s)
        for s in seeds(9100, N_RUNS)
    ]
    budget = dist_budget_per_node(INSTANCE)
    rows = []
    early_fracs = []
    comm_fracs = []
    totals = []
    for k, res in enumerate(runs):
        stats = res.network_stats
        times = np.array([t for _, t in stats.broadcast_log])
        # 'Early' is relative to the active phase: the first EA iteration
        # (construction + full LK) consumes ~half the scaled budget, so
        # the phase starts at the first broadcast.  The paper's claim is
        # that improvements concentrate at the *start* of that phase.
        if len(times):
            t0 = times.min()
            early = float(np.mean(times <= t0 + 0.5 * (budget - t0)))
        else:
            early = 0.0
        early_fracs.append(early)
        totals.append(stats.broadcasts)
        # Communication cost: latency-model delay per message vs total work.
        comm_vsec = stats.messages * 2e-3
        total_work = sum(res.clocks.values())
        comm_fracs.append(comm_vsec / total_work)
        rows.append((
            f"run {k}",
            stats.broadcasts,
            stats.messages,
            f"{stats.broadcasts / N_NODES:.1f}",
            f"{early:.0%}",
        ))
    return rows, early_fracs, comm_fracs, totals


def test_message_statistics(once):
    rows, early_fracs, comm_fracs, totals = once(_experiment)
    print_banner(
        f"Section 4: message statistics on {INSTANCE} "
        f"({N_NODES}-node hypercube)",
    )
    emit(format_table(
        ["run", "broadcasts", "messages", "broadcasts/node",
         "sent in first half of active phase"],
        rows,
    ))
    emit(f"\ncommunication/computation ratio: "
          f"{np.mean(comm_fracs):.4%} (paper: 'neglectable')")

    # Shape checks: improvements beyond the initial tours are broadcast,
    # broadcasts concentrate early, and communication is negligible.
    assert np.mean(totals) > N_NODES
    assert np.mean(early_fracs) > 0.5
    assert np.mean(comm_fracs) < 0.01
