"""Solve an asymmetric TSP with the symmetric engine (paper §1 setup).

The paper defines ATSP alongside STSP but evaluates only symmetric
instances.  The classical Jonker-Volgenant embedding closes the gap:
each city splits into an out/in pair tied by a mandatory ghost edge, and
any symmetric solver — here the distributed CLK — becomes an ATSP
solver.

The demo instance is a "one-way ring road" city: driving with the ring
is fast, against it slow, and crossing downtown costs a toll.

Run:  python examples/asymmetric_tsp.py
"""

import numpy as np

from repro import solve
from repro.tsp.atsp import (
    atsp_to_stsp,
    atsp_tour_cost,
    directed_tour_from_symmetric,
)


def one_way_city(n: int, seed: int = 0) -> np.ndarray:
    """Asymmetric costs: cheap clockwise ring, expensive counter-flow."""
    rng = np.random.default_rng(seed)
    base = rng.integers(40, 80, size=(n, n)).astype(np.int64)
    c = (base + base.T) // 2  # symmetric congestion part
    for i in range(n):
        c[i, (i + 1) % n] = 5          # with the ring: fast
        c[(i + 1) % n, i] = 95         # against the ring: painful
    np.fill_diagonal(c, 0)
    return c


def main() -> None:
    n = 14
    costs = one_way_city(n, seed=3)
    print(f"asymmetric instance: {n} cities, "
          f"asymmetry example c[0,1]={costs[0, 1]} vs c[1,0]={costs[1, 0]}")

    instance, offset = atsp_to_stsp(costs, name="oneway14")
    print(f"embedded as symmetric instance with {instance.n} cities")

    result = solve(instance, budget_vsec_per_node=1.5, n_nodes=4, rng=0)
    order = directed_tour_from_symmetric(result.best_tour, n)
    cost = atsp_tour_cost(costs, order)

    print(f"\ndirected tour: {' -> '.join(map(str, order.tolist()))}")
    print(f"directed cost: {cost} "
          f"(= symmetric {result.best_length} {offset:+d})")

    ring = atsp_tour_cost(costs, np.arange(n))
    print(f"clockwise ring reference: {ring}")
    assert cost <= ring, "solver should at least find the ring"
    print("solver matched or beat the one-way ring, as it must.")


if __name__ == "__main__":
    main()
