"""Tests for the two-level doubly-linked tour representation.

The key property: driven through any flip sequence, the two-level tour
stays on the same cyclic tour as an explicitly-oriented reference (a
plain order array whose slice ``i..j`` is reversed verbatim — the array
``Tour``'s shorter-side optimization may flip traversal direction, which
is fine for cycles but would make naive "flip from city a to city b"
cross-driving ambiguous).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.tsp import generators
from repro.tsp.tour import Tour
from repro.tsp.two_level import TwoLevelTour


@pytest.fixture(scope="module")
def inst():
    return generators.uniform(40, rng=17)


def edge_set(order):
    order = np.asarray(order)
    nxt = np.roll(order, -1)
    return {(min(a, b), max(a, b)) for a, b in zip(order.tolist(), nxt.tolist())}


def reverse_exact(order: np.ndarray, i: int, j: int) -> np.ndarray:
    """Reverse positions i..j inclusive (cyclic, exact — no shorter-side
    trick), returning a new array."""
    n = len(order)
    out = order.copy()
    idx = [(i + k) % n for k in range(((j - i) % n) + 1)]
    vals = [order[p] for p in idx]
    for p, v in zip(idx, reversed(vals)):
        out[p] = v
    return out


class TestBasics:
    def test_construction_and_order(self, inst):
        order = np.random.default_rng(0).permutation(inst.n)
        t = TwoLevelTour(inst, order)
        assert t.is_valid()
        assert np.array_equal(t.order_array(), order)
        assert t.length == inst.tour_length(order)

    def test_rejects_non_permutation(self, inst):
        with pytest.raises(ValueError, match="permutation"):
            TwoLevelTour(inst, np.zeros(inst.n, dtype=int))

    def test_next_prev_match_array_tour(self, inst):
        order = np.random.default_rng(1).permutation(inst.n)
        ref = Tour(inst, order)
        t = TwoLevelTour(inst, order)
        for c in range(inst.n):
            assert t.next(c) == ref.next(c)
            assert t.prev(c) == ref.prev(c)

    def test_between_matches_array_tour(self, inst):
        order = np.random.default_rng(2).permutation(inst.n)
        ref = Tour(inst, order)
        t = TwoLevelTour(inst, order)
        rng = np.random.default_rng(3)
        for _ in range(60):
            a, b, c = rng.choice(inst.n, size=3, replace=False)
            assert t.between(int(a), int(b), int(c)) == ref.between(
                int(a), int(b), int(c)
            )


class TestFlip:
    def _drive(self, inst, seed, steps):
        """Apply identical oriented flips to both representations."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(inst.n)
        ref = order.copy()
        t = TwoLevelTour(inst, order)
        for _ in range(steps):
            i, j = (int(x) for x in rng.choice(inst.n, size=2, replace=False))
            a, b = int(ref[i]), int(ref[j])
            ref = reverse_exact(ref, i, j)
            t.flip(a, b)
            assert t.is_valid()
            assert np.array_equal(t.order_array(),
                                  np.asarray(ref)) or (
                edge_set(t.order_array()) == edge_set(ref)
            )
        return ref, t

    def test_single_flip(self, inst):
        order = np.arange(inst.n)
        t = TwoLevelTour(inst, order)
        ref = reverse_exact(order, 5, 20)
        t.flip(5, 20)
        assert t.is_valid()
        assert np.array_equal(t.order_array(), ref)

    def test_wrapping_flip(self, inst):
        order = np.arange(inst.n)
        t = TwoLevelTour(inst, order)
        n = inst.n
        ref = reverse_exact(order, n - 3, 4)
        t.flip(n - 3, 4)
        assert t.is_valid()
        assert edge_set(t.order_array()) == edge_set(ref)

    def test_full_tour_flip_is_identity_cycle(self, inst):
        order = np.arange(inst.n)
        t = TwoLevelTour(inst, order)
        before = edge_set(t.order_array())
        t.flip(0, inst.n - 1)
        assert t.is_valid()
        assert edge_set(t.order_array()) == before

    def test_noop_flip(self, inst):
        t = TwoLevelTour(inst, np.arange(inst.n))
        before = edge_set(t.order_array())
        t.flip(7, 7)
        assert edge_set(t.order_array()) == before

    def test_many_flips_trigger_rebuild(self, inst):
        ref, t = self._drive(inst, seed=9, steps=80)
        assert edge_set(t.order_array()) == edge_set(ref)

    def test_adjacent_cities_flip(self, inst):
        order = np.arange(inst.n)
        t = TwoLevelTour(inst, order)
        ref = reverse_exact(order, 10, 11)
        t.flip(10, 11)
        assert edge_set(t.order_array()) == edge_set(ref)


@given(st.integers(0, 2**31 - 1), st.integers(10, 60))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_flip_equivalence(seed, n):
    """Random oriented flip sequences keep both structures on one cycle."""
    rng = np.random.default_rng(seed)
    inst = generators.uniform(n, rng=seed % 1000)
    order = rng.permutation(n)
    ref = order.copy()
    t = TwoLevelTour(inst, order)
    for _ in range(12):
        i, j = (int(x) for x in rng.choice(n, size=2, replace=False))
        a, b = int(ref[i]), int(ref[j])
        ref = reverse_exact(ref, i, j)
        t.flip(a, b)
    assert t.is_valid()
    assert edge_set(t.order_array()) == edge_set(ref)
    # next() walks the whole cycle.
    start = int(ref[0])
    seq = [start]
    for _ in range(n - 1):
        seq.append(t.next(seq[-1]))
    assert set(seq) == set(range(n))
