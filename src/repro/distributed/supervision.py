"""Worker supervision for the real-process backend.

The simulator gets fault tolerance for free (finished or departed nodes
simply stop being scheduled and the topology degenerates around them —
paper §3); real processes crash, stall and fill queues.  This module
supplies the parent-side machinery that gives :mod:`repro.distributed.
mp_backend` the same semantics under real failures:

* :class:`BudgetPacer` — converts the remaining *wall-clock* budget into
  a per-iteration *virtual-seconds* budget for :meth:`EANode.compute`,
  using an online estimate of the worker's vsec/second rate.  This is
  what bounds budget overshoot to one LK move instead of one unbounded
  EA iteration.
* :func:`deliver_critical` — a never-drop queue put for OPTIMUM_FOUND
  notifications and control messages: retry with backoff, evicting the
  oldest queued TOUR messages to make room (tours are redundant state;
  notifications are not).
* :class:`Supervisor` — the parent-side loop that collects results,
  watches process liveness and worker heartbeats, reroutes the topology
  around crashed nodes (see :func:`repro.distributed.topology.
  remove_node`), optionally restarts crashed workers, and performs a
  deterministic poison-pill shutdown.
* :class:`NodeReport` — per-node exit status, crash/restart counts and
  message-loss counters, surfaced on ``MPResult``.

Nothing here imports the solver; the supervisor treats workers as
opaque processes speaking the wire protocol of
:mod:`repro.distributed.message`.
"""

from __future__ import annotations

import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import get_tracer
from .message import WIRE_NEIGHBORS, WIRE_STOP, WIRE_TOUR, wire_encode
from .topology import remove_node

__all__ = ["BudgetPacer", "NodeReport", "Supervisor", "deliver_critical"]


class BudgetPacer:
    """Adaptive wall-clock → virtual-seconds pacing for compute slices.

    ``EANode.compute`` is interruptible at move boundaries but only via
    its vsec meter; handing it an effectively infinite budget lets one
    EA iteration overshoot the wall-clock deadline arbitrarily.  The
    pacer learns the worker's throughput (vsec of counted work per wall
    second) from each completed slice and sizes the next slice so it
    ends at or before the deadline — and never runs longer than
    ``max_slice_seconds``, which also bounds the worker's heartbeat and
    message-drain latency.
    """

    def __init__(
        self,
        initial_vsec: float = 4.0,
        safety: float = 0.85,
        max_slice_seconds: float = 0.5,
        ema: float = 0.5,
    ):
        self.initial_vsec = float(initial_vsec)
        self.safety = float(safety)
        self.max_slice_seconds = float(max_slice_seconds)
        self.ema = float(ema)
        #: Learned throughput in vsec per wall second (None until observed).
        self.rate: Optional[float] = None

    def next_budget(self, remaining_seconds: float) -> float:
        """Vsec budget for the next compute slice."""
        if remaining_seconds <= 0:
            return 1e-9
        if self.rate is None:
            # No estimate yet: a small fixed slice learns the rate fast
            # and cannot overshoot a sane budget by much.
            return self.initial_vsec
        horizon = min(remaining_seconds, self.max_slice_seconds)
        return max(horizon * self.rate * self.safety, 1e-3)

    def observe(self, work_vsec: float, wall_seconds: float) -> None:
        """Record one completed slice (work done, wall time it took)."""
        if wall_seconds <= 1e-9 or work_vsec <= 0:
            return
        inst = work_vsec / wall_seconds
        if self.rate is None:
            self.rate = inst
        else:
            self.rate = self.ema * inst + (1.0 - self.ema) * self.rate


def deliver_critical(
    inbox,
    item: tuple,
    timeout_seconds: float = 5.0,
    droppable: Callable[[tuple], bool] = lambda it: it[0] == WIRE_TOUR,
) -> tuple[bool, int]:
    """Put ``item`` into ``inbox`` without ever silently dropping it.

    On ``queue.Full`` the oldest queued messages are evicted to make
    room: droppable ones (TOUR broadcasts — redundant, a newer tour
    always follows) are discarded and counted; critical ones are held
    and re-enqueued after ``item`` lands.  Backs off between attempts
    and gives up after ``timeout_seconds`` (e.g. the receiver is dead
    and nobody drains its queue).

    Returns ``(delivered, dropped_tours)``.
    """
    deadline = time.monotonic() + timeout_seconds
    delay = 1e-3
    dropped = 0
    delivered = False
    while True:
        try:
            inbox.put_nowait(item)
            delivered = True
            break
        except queue_mod.Full:
            pass
        # Scan from the front for the oldest droppable message, holding
        # any criticals encountered; re-enqueue those immediately (their
        # own removal freed the slots) so only the eviction — if one
        # happened — nets a free slot for ``item``.  Criticals displaced
        # this way move to the queue tail; they are order-insensitive.
        evicted = False
        held: list[tuple] = []
        while True:
            try:
                victim = inbox.get_nowait()
            except queue_mod.Empty:
                break
            if droppable(victim):
                dropped += 1
                evicted = True
                break
            held.append(victim)
        for h in held:
            for _ in range(50):
                try:
                    inbox.put_nowait(h)
                    break
                except queue_mod.Full:  # pragma: no cover - producer race
                    time.sleep(1e-3)
        if evicted:
            continue  # a slot is now free for ``item``
        if time.monotonic() >= deadline:
            break
        time.sleep(delay)
        delay = min(delay * 2, 0.05)
    return delivered, dropped


@dataclass
class NodeReport:
    """Per-node supervision outcome, attached to ``MPResult``.

    ``exit_status`` is ``"ok"`` (posted a result), ``"crashed"`` (died
    without one, restarts exhausted or disabled), ``"timeout"`` (still
    alive past the hard deadline) or ``"killed"`` (had to be terminated
    during shutdown).
    """

    node_id: int
    exit_status: str = "ok"
    #: Worker-reported stop reason (budget/optimum/notified/stopped).
    reason: Optional[str] = None
    crashes: int = 0
    restarts: int = 0
    #: TOUR messages this node's sends dropped (inbox-full evictions and
    #: plain full-queue drops combined).
    dropped_tours: int = 0
    #: Critical sends that timed out (dead receiver).
    failed_sends: int = 0
    iterations: int = 0
    #: Wall seconds the worker's EA loop actually ran (self-measured).
    loop_seconds: float = 0.0
    exitcode: Optional[int] = None
    #: Age of the worker's last heartbeat at supervisor exit, seconds.
    heartbeat_age: Optional[float] = None
    #: Heartbeats went stale while the process stayed alive.
    stalled: bool = False


@dataclass
class Supervisor:
    """Parent-side collection + fault handling for one MP run.

    Drives four concerns the old collection loop conflated or missed:
    result gathering, crash detection (process sentinels, not timeouts),
    topology degradation / restarts around dead workers, and a
    deterministic shutdown (poison pill, join barrier, ``terminate``
    only as a last resort for unresponsive processes).
    """

    procs: dict
    inboxes: dict
    result_queue: object
    heartbeats: dict
    topology: dict
    #: ``spawn(node_id, neighbor_ids, budget_seconds, attempt) -> Process``
    spawn: Callable
    budget_seconds: float
    restart: str = "never"  # "never" | "on_crash"
    max_restarts: int = 1
    shutdown_grace: float = 15.0
    heartbeat_timeout: float = 30.0
    poll_interval: float = 0.05
    min_restart_budget: float = 1.0
    #: How long a worker may take to boot (spawn + imports + instance
    #: rebuild) before its budget clock is assumed to have started.  On
    #: loaded single-core machines concurrent spawns take tens of
    #: seconds; a worker's real deadline is anchored at its first
    #: heartbeat when one exists.
    startup_allowance: float = 120.0
    reports: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.restart not in ("never", "on_crash"):
            raise ValueError(f"unknown restart policy {self.restart!r}")
        for node_id in self.procs:
            self.reports[node_id] = NodeReport(node_id=node_id)
        self._failed: set[int] = set()
        tracer = get_tracer()
        #: Observability registry (None when tracing is off): heartbeat
        #: gap histograms + crash/restart counters, supervisor-side.
        self._metrics = tracer.metrics if tracer.enabled else None
        self._t0 = time.monotonic()
        #: Wall time of each node's first observed heartbeat — the point
        #: its budget clock actually started.
        self._started: dict[int, float] = {}

    def _node_deadline(self, node_id: int) -> float:
        """Hard wall-clock deadline for one node's result."""
        started = self._started.get(node_id)
        if started is None:
            started = self._t0 + self.startup_allowance
        return started + self.budget_seconds + self.shutdown_grace

    # -- main loop -----------------------------------------------------------

    def run(self) -> dict:
        """Collect results until every node is accounted for.

        Returns ``{node_id: (order, length, reason, stats)}``; per-node
        outcomes (including crashes) are in :attr:`reports`.

        Exits as soon as every node has either reported or failed for
        good — a run whose workers all crashed returns immediately, not
        after a multiple-of-budget timeout.  An alive but silent worker
        is written off (``"timeout"``) once its own deadline — anchored
        at its first heartbeat — passes.
        """
        results: dict = {}
        while True:
            self._drain_results(results)
            now = time.monotonic()
            self._observe_heartbeats(now)
            self._check_liveness(results, now)
            for node_id in list(self.procs):
                if node_id in results or node_id in self._failed:
                    continue
                if now >= self._node_deadline(node_id):
                    self.reports[node_id].exit_status = "timeout"
                    self._failed.add(node_id)
            if len(results) + len(self._failed) >= len(self.procs):
                break  # everyone reported or failed for good — no waiting
            try:
                item = self.result_queue.get(timeout=self.poll_interval)
            except queue_mod.Empty:
                continue
            self._record_result(results, item)
        self._shutdown(results)
        return results

    # -- internals -----------------------------------------------------------

    def _drain_results(self, results: dict) -> None:
        while True:
            try:
                item = self.result_queue.get_nowait()
            except queue_mod.Empty:
                return
            self._record_result(results, item)

    def _record_result(self, results: dict, item: tuple) -> None:
        node_id, order, length, reason, stats = item
        results[node_id] = (order, length, reason, stats)
        report = self.reports[node_id]
        report.reason = reason
        report.dropped_tours += int(stats.get("dropped_tours", 0))
        report.failed_sends += int(stats.get("failed_sends", 0))
        report.iterations = int(stats.get("iterations", 0))
        report.loop_seconds = float(stats.get("loop_seconds", 0.0))
        # A node that reported after a restart still ended OK.
        report.exit_status = "ok"
        self._failed.discard(node_id)

    def _observe_heartbeats(self, now: float) -> None:
        metrics = self._metrics
        for node_id in self.procs:
            hb = self.heartbeats.get(node_id)
            if hb is None:
                continue
            self._started.setdefault(node_id, hb[0])
            age = now - hb[0]
            self.reports[node_id].heartbeat_age = age
            if metrics is not None:
                metrics.observe("mp.heartbeat_gap_s", age, node=node_id)

    def _check_liveness(self, results: dict, now: float) -> None:
        for node_id, p in list(self.procs.items()):
            if node_id in results or node_id in self._failed:
                continue
            report = self.reports[node_id]
            if p.is_alive():
                if (
                    report.heartbeat_age is not None
                    and report.heartbeat_age > self.heartbeat_timeout
                ):
                    report.stalled = True
                continue
            p.join()  # reap; the process is already dead
            # The worker may have posted its result between our last
            # drain and its exit: a dead process with a queued result is
            # a normal completion, not a crash.
            self._drain_results(results)
            if node_id in results:
                continue
            report.crashes += 1
            report.exitcode = p.exitcode
            self._on_crash(node_id, now)

    def _on_crash(self, node_id: int, now: float) -> None:
        report = self.reports[node_id]
        if self._metrics is not None:
            self._metrics.inc("mp.crashes", 1, node=node_id)
        started = self._started.get(node_id, now)
        remaining = started + self.budget_seconds - now
        if (
            self.restart == "on_crash"
            and report.restarts < self.max_restarts
            and remaining > self.min_restart_budget
        ):
            report.restarts += 1
            if self._metrics is not None:
                self._metrics.inc("mp.restarts", 1, node=node_id)
            self.procs[node_id] = self.spawn(
                node_id, self.topology[node_id], remaining,
                report.crashes,
            )
            return
        # No restart: the node is gone for good.  Degrade the topology
        # around it (its neighbours cross-link, as when a node finishes
        # in the simulator) and push the survivors their new lists.
        report.exit_status = "crashed"
        self._failed.add(node_id)
        orphans = self.topology.get(node_id, ())
        if node_id in self.topology:
            self.topology = remove_node(self.topology, node_id)
        for nbr in orphans:
            if nbr in self._failed:
                continue
            deliver_critical(
                self.inboxes[nbr],
                wire_encode(
                    WIRE_NEIGHBORS, -1, tuple(self.topology[nbr]), 0
                ),
            )

    def _shutdown(self, results: dict) -> None:
        """Poison-pill + join barrier; ``terminate`` only if unresponsive."""
        alive = [
            (node_id, p) for node_id, p in self.procs.items() if p.is_alive()
        ]
        for node_id, _ in alive:
            deliver_critical(
                self.inboxes[node_id],
                wire_encode(WIRE_STOP, -1, None, 0),
                timeout_seconds=1.0,
            )
        for node_id, p in self.procs.items():
            p.join(timeout=10.0)
            if p.is_alive():  # pragma: no cover - unresponsive worker
                p.terminate()
                p.join(timeout=5.0)
                self.reports[node_id].exit_status = "killed"
        # Late results posted between the last drain and the joins.
        self._drain_results(results)
        now = time.monotonic()
        for node_id, report in self.reports.items():
            hb = self.heartbeats.get(node_id)
            if hb is not None:
                report.heartbeat_age = now - hb[0]
