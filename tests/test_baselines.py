"""Tests for the comparator baselines (LKH-style, multilevel, tour merging)."""

import numpy as np
import pytest

from repro.baselines import (
    alpha_candidate_lists,
    alpha_matrix,
    coarsen_once,
    lkh_style,
    multilevel_clk,
    tour_merging,
    union_candidate_lists,
)
from repro.bounds import held_karp_exact, minimum_one_tree
from repro.localsearch import chained_lk
from repro.tsp import generators


class TestAlpha:
    def test_tree_edges_have_zero_alpha(self, small_instance):
        a = alpha_matrix(small_instance, pi=np.zeros(small_instance.n))
        tree = minimum_one_tree(small_instance)
        for i, j in tree.edges:
            assert a[int(i), int(j)] == pytest.approx(0.0)

    def test_nonnegative_and_symmetric_enough(self, small_instance):
        a = alpha_matrix(small_instance)
        assert np.all(a >= 0)

    def test_alpha_orders_optimal_edges_first(self):
        # Edges of the exact optimal tour should have much lower alpha
        # than average.
        inst = generators.uniform(12, rng=6)
        opt, order = held_karp_exact(inst)
        a = alpha_matrix(inst)
        opt_alphas = [
            a[order[k], order[(k + 1) % 12]] for k in range(12)
        ]
        off = a[np.triu_indices(12, 1)]
        assert np.mean(opt_alphas) < np.mean(off)

    def test_candidate_lists_shape_no_self(self, small_instance):
        c = alpha_candidate_lists(small_instance, k=5)
        assert c.shape == (small_instance.n, 5)
        for i in range(small_instance.n):
            assert i not in c[i]
            assert len(set(c[i].tolist())) == 5

    def test_candidates_contain_one_tree_partners(self, small_instance):
        # Every city's 1-tree neighbours (alpha == 0) should appear.
        pi = np.zeros(small_instance.n)
        tree = minimum_one_tree(small_instance, pi)
        c = alpha_candidate_lists(small_instance, k=6, pi=pi)
        hits = 0
        total = 0
        for i, j in tree.edges:
            total += 2
            hits += int(j) in c[int(i)]
            hits += int(i) in c[int(j)]
        assert hits >= 0.8 * total


class TestLKHStyle:
    def test_runs_and_valid(self, small_instance):
        res = lkh_style(small_instance, budget_vsec=1.5, rng=0)
        assert res.tour.is_valid()
        assert res.length == res.tour.recompute_length()
        assert res.trials >= 1
        assert res.preprocessing_vsec > 0

    def test_quality_close_to_clk(self, small_instance):
        lkh = lkh_style(small_instance, budget_vsec=2.0, rng=1)
        clk = chained_lk(small_instance, budget_vsec=2.0, rng=1)
        assert lkh.length <= clk.length * 1.03

    def test_max_trials(self, small_instance):
        res = lkh_style(small_instance, budget_vsec=50.0, max_trials=2, rng=2)
        assert res.trials == 2

    def test_target_stops(self):
        inst = generators.uniform(12, rng=4)
        opt, _ = held_karp_exact(inst)
        res = lkh_style(inst, budget_vsec=20.0, target_length=opt, rng=0)
        assert res.length == opt


class TestMultilevel:
    def test_coarsen_halves_roughly(self, small_instance):
        coarse, children = coarsen_once(small_instance, np.random.default_rng(0))
        assert coarse.n < small_instance.n
        assert coarse.n >= small_instance.n // 2
        # children partition the fine cities
        flat = [c for kids in children for c in kids]
        assert sorted(flat) == list(range(small_instance.n))

    def test_multilevel_valid_and_reasonable(self):
        inst = generators.uniform(150, rng=9)
        res = multilevel_clk(inst, rng=0)
        assert res.tour.is_valid()
        assert res.length == res.tour.recompute_length()
        assert res.levels > 2
        # must land within 15% of a CLK reference
        ref = chained_lk(inst, budget_vsec=2.0, rng=0)
        assert res.length <= ref.length * 1.15

    def test_faster_than_clk_to_first_tour(self):
        # Walshaw's selling point: a good tour quickly.
        inst = generators.uniform(200, rng=10)
        res = multilevel_clk(inst, rng=1)
        clk = chained_lk(inst, budget_vsec=max(res.work_vsec, 0.01), rng=1)
        # With the same work, multilevel should be within a few percent.
        assert res.length <= clk.length * 1.08

    def test_requires_coords(self):
        inst = generators.random_matrix(40, rng=1)
        with pytest.raises(ValueError, match="coordinates"):
            multilevel_clk(inst, rng=0)

    def test_budget_respected(self):
        inst = generators.uniform(150, rng=11)
        res = multilevel_clk(inst, budget_vsec=0.3, rng=2)
        assert res.tour.is_valid()
        assert res.work_vsec < 3.0


class TestTourMerging:
    def test_union_lists_cover_all_tour_edges(self, small_instance):
        rng = np.random.default_rng(0)
        from repro.tsp.tour import random_tour

        tours = [random_tour(small_instance, rng) for _ in range(3)]
        lists = union_candidate_lists(small_instance, tours)
        for t in tours:
            for a, b in t.edge_set():
                assert b in lists[a] or a in lists[b]

    def test_merging_never_worse_than_best_source(self, small_instance):
        res = tour_merging(small_instance, n_tours=4, clk_kicks=10, rng=3)
        assert res.tour.is_valid()
        assert res.length == res.tour.recompute_length()
        assert res.length <= min(res.source_lengths)

    def test_union_edge_count_reported(self, small_instance):
        res = tour_merging(small_instance, n_tours=3, clk_kicks=5, rng=4)
        n = small_instance.n
        assert n <= res.union_edges <= 3 * n

    def test_budget_limits_sources(self, small_instance):
        res = tour_merging(small_instance, n_tours=50, clk_kicks=5,
                           budget_vsec=0.5, rng=5)
        assert len(res.source_lengths) < 50
