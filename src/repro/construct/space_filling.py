"""Space-filling-curve tour construction (Hilbert order).

Visiting cities in the order of their Hilbert-curve index gives an O(n log
n) tour within a constant factor of optimal for uniform points — a useful
cheap initializer and a baseline for construction-quality tests.
"""

from __future__ import annotations

import numpy as np

from ..tsp.tour import Tour

__all__ = ["space_filling", "hilbert_index"]


def hilbert_index(xs: np.ndarray, ys: np.ndarray, order: int = 16) -> np.ndarray:
    """Hilbert-curve index of integer grid points ``(xs, ys)``.

    ``order`` is the curve level: coordinates must lie in ``[0, 2**order)``.
    Vectorized over the input arrays (standard d2xy bit-twiddling).
    """
    xs = np.asarray(xs, dtype=np.int64).copy()
    ys = np.asarray(ys, dtype=np.int64).copy()
    side = np.int64(1) << order
    if np.any((xs < 0) | (xs >= side) | (ys < 0) | (ys >= side)):
        raise ValueError(f"coordinates out of range for order {order}")
    rx = np.zeros_like(xs)
    ry = np.zeros_like(ys)
    d = np.zeros_like(xs)
    s = side >> 1
    while s > 0:
        rx = ((xs & s) > 0).astype(np.int64)
        ry = ((ys & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        xs_f = np.where(flip, s - 1 - xs, xs)
        ys_f = np.where(flip, s - 1 - ys, ys)
        xs_new = np.where(swap, ys_f, xs_f)
        ys_new = np.where(swap, xs_f, ys_f)
        xs, ys = xs_new, ys_new
        s >>= 1
    return d


def space_filling(instance, order: int = 16) -> Tour:
    """Tour visiting cities in Hilbert-curve order.

    Requires a geometric instance; coordinates are scaled onto the curve's
    integer grid.
    """
    if instance.coords is None:
        raise ValueError("space_filling requires coordinates")
    c = instance.coords
    lo = c.min(axis=0)
    span = max(float((c.max(axis=0) - lo).max()), 1e-12)
    side = (1 << order) - 1
    grid = np.floor((c - lo) / span * side).astype(np.int64)
    idx = hilbert_index(grid[:, 0], grid[:, 1], order)
    # Stable tie-break by city id keeps the result deterministic.
    return Tour(instance, np.argsort(idx, kind="stable"))
