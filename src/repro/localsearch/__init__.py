"""Local search: 2-opt, Or-opt, Lin-Kernighan, kicks, Chained LK."""

from .chained_lk import ChainedLK, ChainedLKResult, chained_lk
from .kicks import KICK_STRATEGIES, apply_double_bridge, get_kick
from .lin_kernighan import LKConfig, LinKernighan, lin_kernighan
from .or_opt import or_opt
from .three_opt import three_opt
from .two_opt import two_opt

__all__ = [
    "two_opt",
    "or_opt",
    "three_opt",
    "LKConfig",
    "LinKernighan",
    "lin_kernighan",
    "KICK_STRATEGIES",
    "get_kick",
    "apply_double_bridge",
    "ChainedLK",
    "ChainedLKResult",
    "chained_lk",
]
