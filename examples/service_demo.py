"""Solver-as-a-service: multiple tenants streaming incumbents live.

Starts an in-process :class:`repro.service.SolverService` (no sockets —
see ``python -m repro serve`` for the TCP front end), registers three
tenants with different concurrency limits and virtual-time budgets,
submits a burst of jobs per tenant, and follows every job's incumbent
stream concurrently while the scheduler interleaves them on one event
loop.

Each job's final tour is bit-identical to a direct
``repro.core.solve(..., rng=seed)`` call — the service changes *when*
work happens, never *what* is computed.  The demo checks that for one
job at the end.

Run:  python examples/service_demo.py
"""

import asyncio

from repro import generators, solve
from repro.analysis import format_table
from repro.service import SolverService, TenantPolicy

TENANTS = {
    # name: (max concurrent jobs, vsec budget across all its jobs)
    "alice": TenantPolicy(max_concurrency=2, vsec_budget=None),
    "bob": TenantPolicy(max_concurrency=1, vsec_budget=None),
    "carol": TenantPolicy(max_concurrency=2, vsec_budget=10.0),
}
JOBS_PER_TENANT = 2
JOB = dict(budget_vsec_per_node=2.0, n_nodes=2, topology="ring",
           kick="random_walk")


async def follow(svc, tenant, job_id):
    """Print a tenant's incumbent stream as the solver improves."""
    async for vsec, length, node_id in svc.stream_incumbents(job_id):
        print(f"  [{tenant:5s} {job_id}] {vsec:6.2f} vsec  "
              f"length {length}  (node {node_id})")


async def main() -> None:
    instance = generators.clustered(150, rng=7)
    print(f"instance: {instance.name}, n={instance.n}\n")

    async with SolverService(backend="sim", max_running=4) as svc:
        for tenant, policy in TENANTS.items():
            svc.set_tenant(tenant, policy)

        submitted = []  # (tenant, job_id, seed)
        for t_index, tenant in enumerate(TENANTS):
            for j in range(JOBS_PER_TENANT):
                seed = 10 * t_index + j
                job_id = svc.submit(instance, tenant=tenant, seed=seed,
                                    **JOB)
                submitted.append((tenant, job_id, seed))
        print(f"submitted {len(submitted)} jobs across "
              f"{len(TENANTS)} tenants; streaming incumbents:\n")

        # One follower per job, all multiplexed on this event loop.
        await asyncio.gather(*(
            follow(svc, tenant, job_id)
            for tenant, job_id, _seed in submitted
        ))

        rows = []
        for tenant, job_id, seed in submitted:
            status = svc.status(job_id)
            rows.append((job_id, tenant, seed, status["status"],
                         status["best_length"] or "-",
                         f"{status['charged_vsec']:.2f}"))
        print()
        print(format_table(
            ["job", "tenant", "seed", "status", "best", "vsec"], rows,
            title="jobs after the burst",
        ))

        stats = svc.stats()
        print(f"\nstore: {stats['store']['entries']} entries, "
              f"{stats['store']['hits']} hits "
              f"(every submit after the first reused the interned "
              f"instance and its candidate caches)")
        for tenant, usage in stats["tenants"].items():
            budget = TENANTS[tenant].vsec_budget
            print(f"tenant {tenant:5s}: charged "
                  f"{usage['charged_vsec']:.2f} vsec"
                  + (f" of {budget:.2f} budget" if budget else ""))

        # The determinism contract, demonstrated on the first job.
        tenant, job_id, seed = submitted[0]
        served = await svc.result(job_id)
        direct = solve(instance, rng=seed, **JOB)
        same = list(served.best_tour.order) == list(direct.best_tour.order)
        print(f"\njob {job_id} vs direct solve(rng={seed}): "
              f"{'bit-identical tours' if same else 'MISMATCH'}")
        assert same


if __name__ == "__main__":
    asyncio.run(main())
