"""Tests for the statistical comparison helpers."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_mean_ci,
    compare_runs,
    paired_compare,
)


class TestCompareRuns:
    def test_clear_difference_significant(self):
        a = [100, 101, 99, 100, 102, 98]
        b = [120, 121, 119, 122, 118, 120]
        cmp = compare_runs(a, b)
        assert cmp.significant
        assert cmp.effect < 0  # A better
        assert "Mann-Whitney" in cmp.summary("clk", "dist")

    def test_identical_not_significant(self):
        cmp = compare_runs([5, 5, 5], [5, 5, 5])
        assert cmp.p_value == 1.0
        assert not cmp.significant

    def test_small_samples_rejected(self):
        with pytest.raises(ValueError, match="two runs"):
            compare_runs([1], [2, 3])


class TestPairedCompare:
    def test_consistent_pairs_significant(self):
        a = [100, 110, 105, 98, 107, 103]
        b = [x + 5 for x in a]
        cmp = paired_compare(a, b)
        assert cmp.effect == pytest.approx(-5.0)
        assert cmp.significant

    def test_zero_diffs(self):
        cmp = paired_compare([7, 7, 7], [7, 7, 7])
        assert cmp.p_value == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="paired"):
            paired_compare([1, 2], [1, 2, 3])


class TestBootstrap:
    def test_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(100, 5, size=30)
        lo, hi = bootstrap_mean_ci(vals, rng=1)
        assert lo < vals.mean() < hi
        assert hi - lo < 10  # reasonably tight at n=30

    def test_deterministic_with_seed(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_mean_ci(vals, rng=7) == bootstrap_mean_ci(vals, rng=7)

    def test_validation(self):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_mean_ci([1, 2], confidence=1.5)
        with pytest.raises(ValueError, match="two values"):
            bootstrap_mean_ci([1])
