"""Compute best-known lengths and HK bounds for the testbed registry.

Maintenance script: runs a long reference search (distributed CLK with a
generous budget, several seeds) plus the Held-Karp ascent for every
testbed instance and merges the results into
``src/repro/tsp/data/best_known.json``.  The registry's
:func:`repro.tsp.registry.best_known` reads that cache; benches use it as
the paper uses known optima.

Run:  python scripts/compute_best_known.py [--quick] [names...]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bounds import held_karp_bound
from repro.core import solve
from repro.localsearch import chained_lk
from repro.tsp import registry


def reference_search(name: str, quick: bool, scale: float = 1.0) -> int:
    """Best length over a search mix stronger than any bench budget."""
    inst = registry.get_instance(name)
    per_node = max(3.0, inst.n / 30.0) * (0.3 if quick else scale)
    best = None
    seeds = (1,) if quick else (1, 2)
    for seed in seeds:
        res = solve(inst, budget_vsec_per_node=per_node, n_nodes=8,
                    rng=seed, target_length=best)
        length = res.best_length
        best = length if best is None else min(best, length)
    # Long sequential chains with two kick styles for diversity: the
    # deep plateau drift of a single long CLK chain finds tours the
    # budgeted distributed runs miss.
    for kick, seed in (("random", 3), ("random_walk", 4)):
        res = chained_lk(inst, budget_vsec=per_node * (2 if quick else 8),
                         kick=kick, rng=seed, target_length=best)
        best = min(best, res.length)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", help="instance names (default all)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny budgets (useful for smoke runs)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply search budgets (deep recalibration)")
    parser.add_argument("--skip-hk", action="store_true")
    args = parser.parse_args()

    names = args.names or [e.name for e in registry.testbed()]
    for name in names:
        t0 = time.time()
        inst = registry.get_instance(name)
        rec: dict = {}
        best = reference_search(name, args.quick, args.scale)
        rec["length"] = best
        rec["source"] = "distclk-reference"
        if not args.skip_hk:
            iters = 150 if inst.n > 500 else 250
            hk = held_karp_bound(inst, max_iterations=iters)
            rec["hk_bound"] = hk.bound
        registry.save_best_known({name: rec})
        gap = (best / rec["hk_bound"] - 1) * 100 if "hk_bound" in rec else None
        print(
            f"{name:>8}: best={best}"
            + (f"  hk={rec['hk_bound']:.1f}  gap={gap:.2f}%" if gap is not None else "")
            + f"  ({time.time() - t0:.0f}s)",
            flush=True,
        )


if __name__ == "__main__":
    main()
