"""The RPL rule set: one AST checker per repo invariant.

========  ====================================================================
ID        Invariant guarded
========  ====================================================================
RPL001    All randomness flows through injected ``np.random.Generator``
          objects; no global RNG state, no unseeded ``default_rng()``.
RPL002    Code that runs under virtual time never reads the wall clock.
RPL003    Operator hot loops access distances through ``DistView`` rows,
          never raw ``instance.dist`` / matrix indexing.
RPL004    Types crossing the multiprocessing boundary are frozen, slotted
          dataclasses with picklable, immutable field types.
RPL005    Blocking queue/pipe reads in ``distributed/`` always carry a
          timeout (the hang class PR 1 eliminated).
RPL006    No bare or silent ``except`` handlers.
RPL007    No blocking calls (``time.sleep``, sync ``queue.get``, file/
          socket/subprocess ops) inside ``async def`` — they stall the
          whole event loop.
RPL008    No read-modify-write of shared service state spanning an
          ``await`` without a lock or ``# reprolint: atomic-section``.
RPL009    Every ``asyncio.create_task`` handle is retained and awaited
          (or cancelled *and* awaited) — no fire-and-forget tasks.
RPL010    Determinism taint: wall-clock / ``os.urandom`` / ``id()`` /
          unordered-set values never flow into wire types, job results
          or persisted records.
RPL011    ``except`` handlers in async code never swallow
          ``asyncio.CancelledError``.
========  ====================================================================

RPL001–006 are single-pass (one AST walk over the file); RPL007–011 are
the dataflow tier, built on :mod:`tools.reprolint.dataflow`'s
await-epoch flow walk and project-wide attribute index.  Each rule's
full rationale — the bug it prevents and the PR that established the
invariant — is catalogued in ``docs/CHECKS.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .config import Config
from .dataflow import (
    FunctionFlow,
    ModuleInfo,
    ProjectIndex,
    TaintEnv,
    dotted_name,
    iter_functions,
)
from .engine import Violation

__all__ = ["Rule", "ALL_RULES", "rule_ids"]


class Rule:
    """Base class: subclasses set ``id``/``title``/``rationale`` and
    implement :meth:`check`, receiving the parsed module plus the shared
    project index."""

    id = "RPL000"
    title = "abstract rule"
    rationale = ""

    def check(
        self, module: ModuleInfo, config: Config, index: ProjectIndex
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local alias -> full dotted path, from the module's imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    # Conventional numpy alias even without the import in this file.
    aliases.setdefault("np", "numpy")
    return aliases


def _dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted path through import aliases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------


class NoGlobalRngRule(Rule):
    """RPL001 — randomness must come from an injected Generator."""

    id = "RPL001"
    title = "no global RNG state"
    rationale = (
        "Reproducibility of DistCLK runs (paper §4) depends on every "
        "stochastic choice drawing from an injected np.random.Generator; "
        "global RNG state couples unrelated components and an unseeded "
        "default_rng() makes a run unrepeatable."
    )

    #: numpy.random module-level functions that mutate the legacy global
    #: RandomState (or read it): any use is hidden global state.
    LEGACY = frozenset(
        {
            "seed", "rand", "randn", "randint", "random", "random_sample",
            "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
            "normal", "standard_normal", "binomial", "poisson", "exponential",
            "beta", "gamma", "bytes", "random_integers", "get_state",
            "set_state", "vonmises", "laplace", "lognormal", "geometric",
        }
    )

    def check(self, module, config, index):
        tree, path = module.tree, module.path
        aliases = _import_map(tree)
        stdlib_random_aliases = {
            alias
            for alias, target in aliases.items()
            if target == "random" or target.startswith("random.")
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "random" or a.name.startswith("random."):
                        yield self.violation(
                            path, node,
                            "import of the stdlib 'random' module (global "
                            "RNG state); use repro.utils.rng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.violation(
                        path, node,
                        "import from the stdlib 'random' module (global "
                        "RNG state); use repro.utils.rng instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func, aliases)
                if dotted is None:
                    continue
                head, _, fn = dotted.rpartition(".")
                if dotted.startswith("numpy.random.") and fn in self.LEGACY:
                    yield self.violation(
                        path, node,
                        f"np.random.{fn}() uses the legacy global "
                        "RandomState; pass an np.random.Generator instead",
                    )
                elif (
                    dotted in ("numpy.random.default_rng", "default_rng")
                    or dotted.endswith(".default_rng")
                ) and not node.args and not node.keywords:
                    yield self.violation(
                        path, node,
                        "default_rng() without a seed argument is "
                        "unrepeatable; thread a seed or Generator through",
                    )
                elif head in stdlib_random_aliases:
                    yield self.violation(
                        path, node,
                        f"stdlib random.{fn}() uses global RNG state; "
                        "use an injected np.random.Generator",
                    )


class NoWallClockRule(Rule):
    """RPL002 — virtual-time code must not read the wall clock."""

    id = "RPL002"
    title = "no wall-clock reads under virtual time"
    rationale = (
        "The simulator's determinism and budget accounting (PR 1) rest on "
        "all timing flowing from WorkMeter operation counts; one "
        "time.time() in the engine makes runs machine-dependent."
    )

    BANNED = frozenset(
        {
            "time.time", "time.time_ns", "time.monotonic",
            "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
            "time.process_time", "time.process_time_ns", "time.sleep",
            "datetime.datetime.now", "datetime.datetime.utcnow",
            "datetime.datetime.today", "datetime.date.today",
        }
    )

    def check(self, module, config, index):
        tree, path = module.tree, module.path
        aliases = _import_map(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time", "datetime"
            ):
                for a in node.names:
                    if f"{node.module}.{a.name}" in self.BANNED or (
                        node.module == "datetime" and a.name == "datetime"
                    ):
                        yield self.violation(
                            path, node,
                            f"import of wall-clock symbol "
                            f"'{node.module}.{a.name}' in virtual-time "
                            "code; use WorkMeter vsec accounting",
                        )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func, aliases)
                if dotted in self.BANNED:
                    yield self.violation(
                        path, node,
                        f"wall-clock call {dotted}() in virtual-time code; "
                        "time must come from WorkMeter / node clocks",
                    )


class NoRawDistanceRule(Rule):
    """RPL003 — hot loops go through DistView, not instance.dist."""

    id = "RPL003"
    title = "no DistView bypass in operator hot loops"
    rationale = (
        "The engine layer (PR 2) routes hot-loop distance access through "
        "row-cached DistView and distance-sorted candidate rows; raw "
        "instance.dist calls bypass the cache (~3x slower) and invite "
        "scans over unsorted rows, silently corrupting early-break "
        "pruning (cf. Heins et al. 2024 on candidate-list sensitivity)."
    )

    METHODS = frozenset({"dist", "dist_many", "distance_matrix"})
    INSTANCE_PARAMS = frozenset({"instance", "inst"})

    def check(self, module, config, index):
        tree, path = module.tree, module.path
        matrix_ok = config.matrix_ok_for(path)
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(fn, path, matrix_ok)

    def _check_function(self, fn, path, matrix_ok):
        instance_names = {
            arg.arg
            for arg in list(fn.args.args) + list(fn.args.kwonlyargs)
            if arg.arg in self.INSTANCE_PARAMS
        }
        # One pre-pass for names bound from `<expr>.instance`.
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == "instance":
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            instance_names.add(tgt.id)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attr = node.func.attr
                if attr not in self.METHODS:
                    continue
                recv = node.func.value
                if isinstance(recv, ast.Name) and recv.id in instance_names:
                    yield self.violation(
                        path, node,
                        f"raw {recv.id}.{attr}() in an operator hot-loop "
                        "module; route through DistView (view.dist / "
                        "view.row)",
                    )
                elif isinstance(recv, ast.Attribute) and recv.attr == "instance":
                    yield self.violation(
                        path, node,
                        f"raw <...>.instance.{attr}() in an operator "
                        "hot-loop module; route through DistView",
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Attribute
            ):
                if node.value.attr == "matrix" and not matrix_ok:
                    yield self.violation(
                        path, node,
                        "direct distance-matrix indexing in an operator "
                        "hot-loop module; use DistView rows (or list the "
                        "module under [tool.reprolint] matrix-ok)",
                    )


class WireTypeRule(Rule):
    """RPL004 — mp-boundary dataclasses are frozen, slotted, picklable."""

    id = "RPL004"
    title = "wire types frozen/slotted with picklable fields"
    rationale = (
        "Types pickled into worker processes (or rebuilt from wire "
        "tuples) must be immutable value objects: a mutable or unpicklable "
        "field either crashes the spawn path or — worse — ships shared "
        "mutable state across the process boundary."
    )

    def check(self, module, config, index):
        tree, path = module.tree, module.path
        wire_classes = set(config.wire_classes_for(path))
        if not wire_classes:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in wire_classes:
                continue
            deco = self._dataclass_decorator(node)
            if deco is None:
                yield self.violation(
                    path, node,
                    f"wire type {node.name} must be a "
                    "@dataclass(frozen=True, slots=True)",
                )
                continue
            missing = [
                kw
                for kw in ("frozen", "slots")
                if not self._kw_is_true(deco, kw)
            ]
            if missing:
                yield self.violation(
                    path, node,
                    f"wire type {node.name} must set "
                    f"{', '.join(f'{m}=True' for m in missing)} on its "
                    "@dataclass decorator",
                )
            allowed = set(config.picklable_names)
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id.startswith("_")
                ):
                    continue
                bad = self._first_disallowed(stmt.annotation, allowed)
                if bad is not None:
                    name = (
                        stmt.target.id
                        if isinstance(stmt.target, ast.Name)
                        else "<field>"
                    )
                    yield self.violation(
                        path, stmt,
                        f"wire type {node.name}.{name} has non-picklable/"
                        f"mutable annotation component {bad!r}; allowed "
                        "leaves are immutable scalars, tuples, ndarray, "
                        "enums and nested wire types",
                    )

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef):
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "dataclass":
                return deco if isinstance(deco, ast.Call) else ast.Call(
                    func=target, args=[], keywords=[]
                )
        return None

    @staticmethod
    def _kw_is_true(deco: ast.Call, name: str) -> bool:
        for kw in deco.keywords:
            if kw.arg == name:
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                )
        return False

    def _first_disallowed(self, node: ast.AST, allowed: set) -> str | None:
        """Depth-first search for the first disallowed leaf name."""
        if isinstance(node, ast.Constant):
            if node.value is None or node.value is Ellipsis:
                return None
            if isinstance(node.value, str):  # string annotation: parse it
                try:
                    inner = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return node.value
                return self._first_disallowed(inner, allowed)
            return repr(node.value)
        if isinstance(node, ast.Name):
            return None if node.id in allowed else node.id
        if isinstance(node, ast.Attribute):
            return None if node.attr in allowed else node.attr
        if isinstance(node, ast.Subscript):
            bad = self._first_disallowed(node.value, allowed)
            if bad is not None:
                return bad
            return self._first_disallowed(node.slice, allowed)
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                bad = self._first_disallowed(elt, allowed)
                if bad is not None:
                    return bad
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._first_disallowed(
                node.left, allowed
            ) or self._first_disallowed(node.right, allowed)
        return ast.dump(node)


class QueueTimeoutRule(Rule):
    """RPL005 — blocking queue/pipe reads must carry a timeout."""

    id = "RPL005"
    title = "blocking queue reads need a timeout"
    rationale = (
        "A bare queue.get()/recv() blocks forever when the producer died "
        "— the silent-hang class PR 1 eliminated; every blocking read in "
        "the transport layer must bound its wait.  The asyncio face of "
        "the same hang is `await q.get()` outside asyncio.wait_for: a "
        "coroutine parked on a queue whose producer task died waits "
        "forever, so awaited gets must be wrapped in a finite wait_for."
    )

    def check(self, module, config, index):
        tree, path = module.tree, module.path
        guarded = self._wait_for_guarded(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node in guarded:
                continue
            attr = node.func.attr
            if attr == "recv" and not node.args and not node.keywords:
                yield self.violation(
                    path, node,
                    "recv() without a timeout/poll guard blocks forever "
                    "on a dead peer; poll with a deadline first",
                )
            elif attr == "get":
                yield from self._check_get(node, path)

    @staticmethod
    def _wait_for_guarded(tree: ast.Module) -> set:
        """Calls appearing inside the awaitable argument of a
        ``wait_for(...)`` with a finite timeout — bounded by
        construction, so exempt from the timeout checks."""
        guarded: set = set()
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and (
                    (isinstance(node.func, ast.Attribute)
                     and node.func.attr == "wait_for")
                    or (isinstance(node.func, ast.Name)
                        and node.func.id == "wait_for")
                )
                and node.args
            ):
                continue
            timeout = None
            if len(node.args) > 1:
                timeout = node.args[1]
            for kw in node.keywords:
                if kw.arg == "timeout":
                    timeout = kw.value
            if timeout is None or (
                isinstance(timeout, ast.Constant) and timeout.value is None
            ):
                continue
            for sub in ast.walk(node.args[0]):
                if isinstance(sub, ast.Call):
                    guarded.add(sub)
        return guarded

    def _check_get(self, node: ast.Call, path: str):
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        timeout = kwargs.get("timeout")
        if timeout is not None:
            if isinstance(timeout, ast.Constant) and timeout.value is None:
                yield self.violation(
                    path, node,
                    "get(timeout=None) blocks forever; pass a finite "
                    "timeout",
                )
            return
        blocking_kw = kwargs.get("block")
        explicit_blocking = (
            isinstance(blocking_kw, ast.Constant)
            and blocking_kw.value is True
        ) or (
            len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is True
        )
        # `.get()` with no arguments is ambiguous between dict.get and
        # queue.get only in the former's degenerate zero-arg form, which
        # is a TypeError — so zero-arg get is always a blocking queue
        # read.  One non-True argument (dict.get(key[, default]) or
        # queue.get(block, timeout)) is left alone.
        if explicit_blocking or (not node.args and not node.keywords):
            yield self.violation(
                path, node,
                "blocking queue get() without a timeout hangs when the "
                "producer is gone; use get(timeout=...) or get_nowait()",
            )


class NoSilentExceptRule(Rule):
    """RPL006 — no bare or silent exception swallowing."""

    id = "RPL006"
    title = "no bare/silent except"
    rationale = (
        "`except Exception: pass` hides the first symptom of every other "
        "invariant violation; failures must surface, be logged, or be "
        "narrowed to the exact expected exception type."
    )

    BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module, config, index):
        tree, path = module.tree, module.path
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    path, node,
                    "bare 'except:' also swallows KeyboardInterrupt/"
                    "SystemExit; name the exception type",
                )
            elif self._is_broad(node.type) and self._is_silent(node.body):
                yield self.violation(
                    path, node,
                    "silently swallowed broad exception; narrow the type "
                    "or handle/log the failure",
                )

    def _is_broad(self, type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Name):
            return type_node.id in self.BROAD
        if isinstance(type_node, ast.Attribute):
            return type_node.attr in self.BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return False

    @staticmethod
    def _is_silent(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or Ellipsis
            return False
        return True


# ---------------------------------------------------------------------------
# dataflow tier (RPL007–011)


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``fn``'s body except those inside nested
    functions/classes/lambdas (which execute at an unknown time and are
    analyzed as scopes of their own)."""
    stack: list[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue
            stack.append(child)


def _call_tail(node: ast.Call, aliases: dict[str, str]) -> str:
    dotted = dotted_name(node.func, aliases) or dotted_name(node.func) or ""
    return dotted.rsplit(".", 1)[-1]


class NoBlockingAsyncRule(Rule):
    """RPL007 — no blocking calls inside ``async def``."""

    id = "RPL007"
    title = "no blocking calls on the event loop"
    rationale = (
        "A synchronous sleep, queue read, file open or subprocess wait "
        "inside a coroutine stalls the *entire* event loop: every other "
        "job's slice, every stream, every client connection freezes for "
        "the duration.  Use the asyncio equivalent (asyncio.sleep, "
        "asyncio.Queue) or push the call off-loop via asyncio.to_thread "
        "/ run_in_executor."
    )

    BLOCKING = frozenset(
        {
            "time.sleep", "os.system", "os.wait", "os.waitpid",
            "subprocess.run", "subprocess.call", "subprocess.check_call",
            "subprocess.check_output", "subprocess.Popen",
            "socket.create_connection", "socket.socket",
            "urllib.request.urlopen", "input", "open",
        }
    )
    #: Receivers constructed from these classes make `.join()`/`.start()`
    #: blocking (spawn + pickling for Process.start, unbounded or bounded
    #: wall-clock block for join).
    PROCLIKE = frozenset({"Process", "Thread"})

    def check(self, module, config, index):
        for fn, _cls in iter_functions(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            proclike = {
                tgt.id
                for node in _own_nodes(fn)
                if isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _call_tail(node.value, module.aliases) in self.PROCLIKE
                for tgt in node.targets
                if isinstance(tgt, ast.Name)
            }
            for node in _own_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func, module.aliases)
                if dotted in self.BLOCKING:
                    yield self.violation(
                        module.path, node,
                        f"blocking call {dotted}() inside 'async def "
                        f"{fn.name}' stalls the event loop; use the "
                        "asyncio equivalent or asyncio.to_thread",
                    )
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                attr = node.func.attr
                if attr == "get" and self._sync_queue_get(node):
                    yield self.violation(
                        module.path, node,
                        f"synchronous queue get() inside 'async def "
                        f"{fn.name}' blocks the event loop; wrap it in "
                        "asyncio.to_thread (or use an asyncio.Queue)",
                    )
                elif attr in ("join", "start") and isinstance(
                    node.func.value, ast.Name
                ) and node.func.value.id in proclike:
                    yield self.violation(
                        module.path, node,
                        f"blocking {node.func.value.id}.{attr}() inside "
                        f"'async def {fn.name}' stalls the event loop; "
                        "wrap it in asyncio.to_thread",
                    )

    @staticmethod
    def _sync_queue_get(node: ast.Call) -> bool:
        """The sync ``queue.Queue.get(block, timeout)`` signature —
        distinguishable from ``dict.get(key, default)`` (non-bool first
        arg) and ``asyncio.Queue.get()`` (no args)."""
        for kw in node.keywords:
            if kw.arg in ("timeout", "block"):
                return True
        return bool(
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, bool)
        )


class AwaitRmwRule(Rule):
    """RPL008 — no read-modify-write of shared state across an await."""

    id = "RPL008"
    title = "no read-modify-write of shared state across an await"
    rationale = (
        "Every await is a scheduling point: any other coroutine may run "
        "and mutate shared service state between a read and the write "
        "derived from it.  The classic lost-update — check self.jobs, "
        "await something, then write self.jobs based on the stale read — "
        "only bites under a hostile interleaving, which is exactly what "
        "the schedule fuzzer generates.  Hold an asyncio.Lock across the "
        "sequence, restructure to read-after-await, or annotate a "
        "reviewed exception with '# reprolint: atomic-section'."
    )

    def check(self, module, config, index):
        for fn, cls in iter_functions(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            cls_name = cls.name if cls is not None else None
            flow = FunctionFlow(fn, module, index, cls_name)
            if flow.await_count() == 0:
                continue
            by_name: dict[str, list] = {}
            for ev in flow.attribute_events():
                if ev.name and index.shared_state(cls_name, ev.name):
                    by_name.setdefault(ev.name, []).append(ev)
            for name, evs in by_name.items():
                yield from self._check_name(module, fn, flow, name, evs)

    def _check_name(self, module, fn, flow, name, evs):
        reads = [e for e in evs if e.kind == "read" and not e.lock_depth]
        writes = [e for e in evs if e.kind == "write" and not e.lock_depth]
        for r in reads:
            for w in writes:
                if w.position > r.position and w.epoch > r.epoch:
                    if self._atomic(module, fn, r, w):
                        return
                    yield self.violation(
                        module.path, w.node,
                        f"read of shared {name!r} (line "
                        f"{r.node.lineno}) and this write span an "
                        "await without a lock; any interleaved "
                        "coroutine may have mutated it — hold a lock "
                        "or annotate '# reprolint: atomic-section'",
                    )
                    return
        # Cyclic form: a loop whose body crosses an await and both
        # reads and writes the name — iteration i's write races with
        # iteration i+1's read.
        for loop_id, has_await in flow.loop_awaits.items():
            if not has_await:
                continue
            lr = [e for e in reads if e.loop_id == loop_id]
            lw = [e for e in writes if e.loop_id == loop_id]
            if lr and lw and not self._atomic(module, fn, lr[0], lw[0]):
                yield self.violation(
                    module.path, lw[0].node,
                    f"loop body reads and writes shared {name!r} across "
                    "an await; state may shift between iterations — "
                    "hold a lock or annotate "
                    "'# reprolint: atomic-section'",
                )
                return

    @staticmethod
    def _atomic(module, fn, r, w) -> bool:
        lines = {fn.lineno, r.node.lineno, w.node.lineno}
        return bool(lines & module.atomic_lines)


class TaskRetentionRule(Rule):
    """RPL009 — create_task handles are retained and awaited."""

    id = "RPL009"
    title = "no fire-and-forget tasks"
    rationale = (
        "A dropped asyncio.Task handle is a task whose exception vanishes "
        "into 'Task exception was never retrieved' at garbage-collection "
        "time — or never; and a cancelled task that is not awaited may be "
        "destroyed while pending, skipping its finally blocks (the "
        "close() leak this rule was built to catch).  Store every handle, "
        "and after cancel(), await the task (expecting CancelledError) so "
        "cleanup actually runs."
    )

    CREATORS = frozenset({"create_task", "ensure_future"})

    def check(self, module, config, index):
        for fn, cls in iter_functions(module.tree):
            cls_name = cls.name if cls is not None else None
            yield from self._check_fn(module, index, fn, cls_name)

    def _check_fn(self, module, index, fn, cls_name):
        aliases = module.aliases
        # (a) bare-expression create_task: the handle is discarded on
        # the spot.
        for node in _own_nodes(fn):
            if isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ) and _call_tail(node.value, aliases) in self.CREATORS:
                yield self.violation(
                    module.path, node,
                    "create_task() result discarded — a fire-and-forget "
                    "task whose exceptions vanish; store the handle and "
                    "await or cancel-and-await it",
                )
        # (b) locals bound to a new task but never read again.
        created: dict[str, ast.AST] = {}
        for node in _own_nodes(fn):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ) and _call_tail(node.value, aliases) in self.CREATORS:
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    created[node.targets[0].id] = node
        for name, node in created.items():
            loads = [
                n for n in _own_nodes(fn)
                if isinstance(n, ast.Name) and n.id == name
                and isinstance(n.ctx, ast.Load)
            ]
            if not loads:
                yield self.violation(
                    module.path, node,
                    f"task handle {name!r} is never awaited, stored or "
                    "passed on; a dropped handle is a fire-and-forget "
                    "task",
                )
        # (c) cancel() without a subsequent await of the same handle.
        if not isinstance(fn, ast.AsyncFunctionDef):
            return
        flow = FunctionFlow(fn, module, index, cls_name)
        awaited = [
            ev for ev in flow.events if ev.kind == "await_name" and ev.name
        ]
        tasklike = set(created) | {ev.name for ev in awaited} | {
            name
            for node in _own_nodes(fn)
            if isinstance(node, (ast.For, ast.AsyncFor))
            and isinstance(node.target, ast.Name)
            for name in [node.target.id]
            if self._iterates_tasks(node.iter)
        }
        for ev in flow.events:
            if ev.kind != "call" or not ev.name or not ev.name.endswith(
                ".cancel"
            ):
                continue
            recv = ev.name[: -len(".cancel")]
            if recv not in tasklike and not index.is_task_attr(
                cls_name, recv
            ):
                continue
            if any(
                a.name == recv and a.position > ev.position for a in awaited
            ):
                continue
            yield self.violation(
                module.path, ev.node,
                f"{recv}.cancel() without awaiting the cancelled task; "
                "it may be destroyed while pending and its finally "
                "blocks never run — 'await' it and absorb "
                "CancelledError",
            )

    @staticmethod
    def _iterates_tasks(iter_node: ast.expr) -> bool:
        for sub in ast.walk(iter_node):
            if isinstance(sub, ast.Attribute) and "task" in sub.attr.lower():
                return True
            if isinstance(sub, ast.Name) and "task" in sub.id.lower():
                return True
        return False


class DeterminismTaintRule(Rule):
    """RPL010 — nondeterministic values must not reach persisted state."""

    id = "RPL010"
    title = "determinism taint must not reach results or the wire"
    rationale = (
        "The service's contract is that a job with seed S is bit-identical "
        "to solve(rng=S).  Wall-clock reads, os.urandom, id() and "
        "unordered set iteration are all fine for *bookkeeping* (latency "
        "metrics, log lines) but the moment one flows into a wire type, a "
        "JobRecord result or a persisted run file, reproducibility is "
        "gone and no test that compares two runs can tell you why."
    )

    PERSIST_TAILS = frozenset(
        {"run_to_json", "save_jobs", "save_run", "save_trace", "write_trace"}
    )
    SINK_ATTRS = frozenset({"result"})

    def check(self, module, config, index):
        wire_names = index.wire_type_names()
        for classes in config.wire_types.values():
            wire_names |= set(classes)
        for fn, _cls in iter_functions(module.tree):
            env = TaintEnv(module.aliases)
            yield from self._walk(fn.body, env, wire_names, module)

    def _walk(self, stmts, env, wire_names, module):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for value in self._stmt_exprs(stmt):
                yield from self._check_sinks(value, env, wire_names, module)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                if value is None:
                    continue
                tainted = env.expr_tainted(value) or env.is_unordered(value)
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if isinstance(stmt, ast.AugAssign):
                    tainted = tainted or env.expr_tainted(stmt.target)
                for target in targets:
                    if tainted and isinstance(target, ast.Attribute) and \
                            target.attr in self.SINK_ATTRS:
                        name = dotted_name(target) or target.attr
                        yield self.violation(
                            module.path, stmt,
                            f"nondeterministic value assigned to {name!r} "
                            "(a persisted result field); results must be "
                            "pure functions of the instance and seed",
                        )
                env.assign(targets, tainted)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if env.is_unordered(stmt.iter):
                    env.assign([stmt.target], True)
                yield from self._walk(stmt.body, env, wire_names, module)
                yield from self._walk(stmt.orelse, env, wire_names, module)
            elif isinstance(stmt, ast.While):
                yield from self._walk(stmt.body, env, wire_names, module)
                yield from self._walk(stmt.orelse, env, wire_names, module)
            elif isinstance(stmt, ast.If):
                yield from self._walk(stmt.body, env, wire_names, module)
                yield from self._walk(stmt.orelse, env, wire_names, module)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from self._walk(stmt.body, env, wire_names, module)
            elif isinstance(stmt, ast.Try):
                yield from self._walk(stmt.body, env, wire_names, module)
                for handler in stmt.handlers:
                    yield from self._walk(
                        handler.body, env, wire_names, module)
                yield from self._walk(stmt.orelse, env, wire_names, module)
                yield from self._walk(
                    stmt.finalbody, env, wire_names, module)

    @staticmethod
    def _stmt_exprs(stmt):
        """Expressions evaluated by a simple statement (for sink scan)."""
        if isinstance(stmt, ast.Expr):
            return [stmt.value]
        if isinstance(stmt, (ast.Assign, ast.AugAssign)) or (
            isinstance(stmt, ast.AnnAssign) and stmt.value is not None
        ):
            return [stmt.value]
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            return [stmt.value]
        return []

    def _check_sinks(self, expr, env, wire_names, module):
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node, module.aliases)
            sink = None
            if tail in wire_names:
                sink = f"wire type {tail}"
            elif tail in self.PERSIST_TAILS:
                sink = f"persistence call {tail}()"
            elif tail == "append" and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Attribute) \
                    and node.func.value.attr == "incumbents":
                sink = "the incumbents record"
            if sink is None:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if env.expr_tainted(arg) or env.is_unordered(arg):
                    yield self.violation(
                        module.path, node,
                        f"nondeterministic value flows into {sink}; "
                        "wall-clock/urandom/id()/set-order data must "
                        "stay out of persisted state (sort or derive "
                        "from the seeded RNG instead)",
                    )
                    break


class CancelSwallowRule(Rule):
    """RPL011 — async except handlers must not swallow CancelledError."""

    id = "RPL011"
    title = "never swallow CancelledError"
    rationale = (
        "asyncio cancellation is cooperative: CancelledError must "
        "propagate for cancel()/timeout/shutdown to terminate a "
        "coroutine.  A handler that catches it (explicitly, bare, or via "
        "BaseException) and does not re-raise produces unkillable tasks "
        "— close() hangs forever on them.  'except Exception' is fine "
        "(CancelledError derives from BaseException since 3.8); the one "
        "sanctioned swallow is the reap pattern: awaiting a task you "
        "just cancelled yourself."
    )

    def check(self, module, config, index):
        for fn, _cls in iter_functions(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            cancels = [
                (node.lineno, dotted_name(node.func.value))
                for node in _own_nodes(fn)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "cancel"
            ]
            for node in _own_nodes(fn):
                if isinstance(node, ast.Try):
                    for handler in node.handlers:
                        if not self._catches_cancelled(handler.type):
                            continue
                        if self._reraises(handler.body):
                            continue
                        if self._is_reap(node, cancels):
                            continue
                        yield self.violation(
                            module.path, handler,
                            "handler swallows asyncio.CancelledError — "
                            "the task becomes uncancellable; re-raise "
                            "it (cleanup, then 'raise'), or narrow the "
                            "except to the exceptions you mean",
                        )
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if self._suppresses_cancelled(item.context_expr):
                            yield self.violation(
                                module.path, item.context_expr,
                                "contextlib.suppress over "
                                "CancelledError makes the task "
                                "uncancellable; re-raise instead",
                            )

    def _catches_cancelled(self, type_node) -> bool:
        if type_node is None:
            return True  # bare except catches everything
        if isinstance(type_node, (ast.Name, ast.Attribute)):
            tail = getattr(type_node, "id", None) or getattr(
                type_node, "attr", None)
            return tail in ("CancelledError", "BaseException")
        if isinstance(type_node, ast.Tuple):
            return any(self._catches_cancelled(e) for e in type_node.elts)
        return False

    @staticmethod
    def _reraises(body) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return True
        return False

    @staticmethod
    def _is_reap(try_node: ast.Try, cancels) -> bool:
        """The sanctioned swallow: every await in the try body is a bare
        await of a handle that was ``.cancel()``ed earlier in the
        function — reaping your own cancellation."""
        awaited: list[str] = []
        for stmt in try_node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Await):
                    continue
                value = sub.value
                if isinstance(value, ast.Call):
                    tail = (dotted_name(value.func) or "").rsplit(
                        ".", 1)[-1]
                    if tail in ("wait_for", "shield") and value.args:
                        value = value.args[0]
                name = dotted_name(value)
                if name is None:
                    return False  # awaiting something unreapable
                awaited.append(name)
        if not awaited:
            return False
        cancelled_before = {
            recv for lineno, recv in cancels
            if recv is not None and lineno < try_node.lineno
        }
        return all(name in cancelled_before for name in awaited)

    def _suppresses_cancelled(self, expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        tail = (dotted_name(expr.func) or "").rsplit(".", 1)[-1]
        if tail != "suppress":
            return False
        return any(
            (dotted_name(arg) or "").rsplit(".", 1)[-1] == "CancelledError"
            for arg in expr.args
        )


ALL_RULES: tuple[Rule, ...] = (
    NoGlobalRngRule(),
    NoWallClockRule(),
    NoRawDistanceRule(),
    WireTypeRule(),
    QueueTimeoutRule(),
    NoSilentExceptRule(),
    NoBlockingAsyncRule(),
    AwaitRmwRule(),
    TaskRetentionRule(),
    DeterminismTaintRule(),
    CancelSwallowRule(),
)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in ALL_RULES)
