"""Cross-run observability reports: compare two traces side by side.

A single trace is summarized by :func:`repro.obs.summarize_trace`; this
module answers the next question — *did the change move the time?* —
by lining up per-phase virtual time, span totals, and engine counters
of two JSONL traces (e.g. before/after an optimization, or two branch
runs from CI artifacts).
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Union

from ..obs.export import TraceData
from .reporting import format_table
from .runio import load_trace

__all__ = ["compare_traces", "compare_trace_files"]


def _phase_totals(trace: TraceData) -> dict:
    """``{phase: total vsec}`` summed over nodes."""
    totals: dict = defaultdict(float)
    for span in trace.spans_named("phase"):
        phase = span.name.split(".", 1)[1] if "." in span.name else span.name
        totals[phase] += span.vdur
    return dict(totals)


def _span_totals(trace: TraceData) -> dict:
    """``{span name: (count, wall, vsec)}`` over all spans."""
    totals: dict = defaultdict(lambda: [0, 0.0, 0.0])
    for span in trace.spans:
        entry = totals[span.name]
        entry[0] += 1
        entry[1] += span.wall
        entry[2] += span.vdur
    return {k: tuple(v) for k, v in totals.items()}


def _counter_totals(trace: TraceData, prefix: str = "engine.") -> dict:
    """``{counter name: total over all label series}``."""
    return {
        name: sum(series.values())
        for name, series in trace.counters.items()
        if name.startswith(prefix)
    }


def _delta_pct(a: float, b: float) -> str:
    if a == 0:
        return "-" if b == 0 else "new"
    return f"{(b - a) / a * 100.0:+.1f}%"


def compare_traces(
    before: TraceData,
    after: TraceData,
    label_a: str = "before",
    label_b: str = "after",
) -> str:
    """Side-by-side comparison of two traces, as monospace text.

    Three sections: virtual time per phase, per-span-name totals
    (count and vsec), and engine counters.  Each row carries a relative
    delta so regressions stand out without mental arithmetic.
    """
    parts = []

    pa, pb = _phase_totals(before), _phase_totals(after)
    phases = sorted(set(pa) | set(pb))
    if phases:
        rows = [
            [p, f"{pa.get(p, 0.0):.3f}", f"{pb.get(p, 0.0):.3f}",
             _delta_pct(pa.get(p, 0.0), pb.get(p, 0.0))]
            for p in phases
        ]
        rows.append([
            "total", f"{sum(pa.values()):.3f}", f"{sum(pb.values()):.3f}",
            _delta_pct(sum(pa.values()), sum(pb.values())),
        ])
        parts.append(format_table(
            ["phase", label_a, label_b, "delta"], rows,
            title="virtual seconds per phase (all nodes)",
        ))

    sa, sb = _span_totals(before), _span_totals(after)
    names = sorted(set(sa) | set(sb))
    if names:
        rows = []
        for name in names:
            ca, _, va = sa.get(name, (0, 0.0, 0.0))
            cb, _, vb = sb.get(name, (0, 0.0, 0.0))
            rows.append([name, ca, cb, f"{va:.3f}", f"{vb:.3f}",
                         _delta_pct(va, vb)])
        parts.append(format_table(
            ["span", f"n_{label_a}", f"n_{label_b}",
             f"vsec_{label_a}", f"vsec_{label_b}", "delta"],
            rows, title="span totals",
        ))

    ca, cb = _counter_totals(before), _counter_totals(after)
    names = sorted(set(ca) | set(cb))
    if names:
        rows = [
            [name, int(ca.get(name, 0)), int(cb.get(name, 0)),
             _delta_pct(ca.get(name, 0), cb.get(name, 0))]
            for name in names
        ]
        parts.append(format_table(
            ["counter", label_a, label_b, "delta"], rows,
            title="engine counters",
        ))

    if not parts:
        return "both traces are empty"
    return "\n\n".join(parts)


def compare_trace_files(
    path_a: Union[str, Path], path_b: Union[str, Path]
) -> str:
    """:func:`compare_traces` on two JSONL trace files, labelled by stem."""
    return compare_traces(
        load_trace(path_a),
        load_trace(path_b),
        label_a=Path(path_a).stem,
        label_b=Path(path_b).stem,
    )
