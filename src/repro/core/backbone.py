"""Backbone edge fixing (Bachem & Wottawa's *partial reduction*).

The paper's related-work section describes a speed-up technique where
"edges that occurred previously on good tours were protected in
subsequent LK iterations, resulting in a runtime reduction of about
10-50% while keeping the tour quality constant."  The distributed
algorithm is a natural host: every node sees a stream of good tours (its
own bests and its neighbours' broadcasts), whose shared edges form a
*backbone* that LK need not re-examine.

This module computes backbones from tour collections; the EA node
(``NodeConfig.backbone_support > 0``) maintains an elite pool and passes
the backbone to the LK engine as fixed edges.  The
``bench_ablation_backbone`` bench measures the runtime/quality trade-off.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

from ..tsp.tour import Tour

__all__ = ["edge_counts", "backbone_edges", "ElitePool"]


def edge_counts(tours: Iterable[Tour]) -> Counter:
    """Count how many tours contain each undirected edge."""
    counts: Counter = Counter()
    for tour in tours:
        counts.update(tour.edge_set())
    return counts


def backbone_edges(tours: list[Tour], min_support: float = 1.0) -> set:
    """Edges present in at least ``min_support`` fraction of the tours.

    Returns a set of *directed* pairs (both orientations) ready for the
    LK engine's ``fixed`` parameter.  With fewer than two tours there is
    no evidence of a backbone and the result is empty.
    """
    tours = list(tours)
    if len(tours) < 2:
        return set()
    if not (0.0 < min_support <= 1.0):
        raise ValueError("min_support must be in (0, 1]")
    threshold = int(np.ceil(min_support * len(tours)))
    out: set = set()
    for (a, b), c in edge_counts(tours).items():
        if c >= threshold:
            out.add((a, b))
            out.add((b, a))
    return out


class ElitePool:
    """Bounded pool of the best distinct tours seen by a node.

    Keeps at most ``capacity`` tours ordered by length; duplicates (same
    cyclic tour) are not stored twice.
    """

    def __init__(self, capacity: int = 6):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = capacity
        self._tours: list[Tour] = []

    def add(self, tour: Tour) -> bool:
        """Insert a snapshot of the tour; returns True if it entered."""
        if any(t.length == tour.length and t == tour for t in self._tours):
            return False
        if (
            len(self._tours) >= self.capacity
            and tour.length >= self._tours[-1].length
        ):
            return False
        self._tours.append(tour.copy())
        self._tours.sort(key=lambda t: t.length)
        del self._tours[self.capacity:]
        return True

    def tours(self) -> list[Tour]:
        return list(self._tours)

    def backbone(self, min_support: float) -> set:
        """Backbone of the current pool (see :func:`backbone_edges`)."""
        return backbone_edges(self._tours, min_support)

    def __len__(self) -> int:
        return len(self._tours)
