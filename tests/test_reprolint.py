"""Fixture-snippet tests for the reprolint rule set.

Each RPL rule gets at least one snippet it must fire on and one it must
stay silent on, written into a tmp tree at paths inside the rule's
default scope.  The suppression syntax and the CLI exit-code contract
are covered at the end.
"""

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import Config, lint_file, lint_paths  # noqa: E402
from tools.reprolint.config import load_config  # noqa: E402
from tools.reprolint.rules import ALL_RULES, rule_ids  # noqa: E402


def lint_snippet(tmp_path, relpath, source):
    """Write ``source`` at ``relpath`` under a tmp root and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(path, config=Config(), root=tmp_path)


def ids_of(violations):
    return [v.rule_id for v in violations]


class TestRPL001GlobalRng:
    def test_fires_on_stdlib_random(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import random
            v = random.random()
        """)
        assert ids_of(out) == ["RPL001", "RPL001"]  # import + call

    def test_fires_on_legacy_numpy_global(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import numpy as np
            np.random.seed(0)
            v = np.random.randint(10)
        """)
        assert ids_of(out) == ["RPL001", "RPL001"]

    def test_fires_on_unseeded_default_rng(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            from numpy.random import default_rng
            rng = default_rng()
        """)
        assert ids_of(out) == ["RPL001"]

    def test_silent_on_injected_generator(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import numpy as np

            def pick(rng: np.random.Generator, n: int) -> int:
                return int(rng.integers(n))

            seeded = np.random.default_rng(42)
        """)
        assert out == []

    def test_silent_inside_allowed_scope(self, tmp_path):
        # utils/rng.py is the one blessed home of RNG plumbing.
        out = lint_snippet(tmp_path, "src/repro/utils/rng.py", """\
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert out == []


class TestRPL002WallClock:
    def test_fires_on_time_time(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/x.py", """\
            import time
            t0 = time.time()
        """)
        assert ids_of(out) == ["RPL002"]

    def test_fires_on_datetime_now_and_from_import(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import datetime
            from time import perf_counter
            stamp = datetime.datetime.now()
        """)
        assert ids_of(out) == ["RPL002", "RPL002"]

    def test_silent_on_workmeter_accounting(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/x.py", """\
            def advance(meter, ops: int) -> None:
                meter.tick(ops)
        """)
        assert out == []

    def test_silent_outside_virtual_time_scope(self, tmp_path):
        # The mp backend legitimately paces on the wall clock.
        out = lint_snippet(tmp_path, "src/repro/distributed/mp_backend.py", """\
            import time
            t0 = time.monotonic()
        """)
        assert out == []


class TestRPL003RawDistance:
    def test_fires_on_instance_dist_param(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/two_opt.py", """\
            def scan(tour, instance):
                return instance.dist(0, 1)
        """)
        assert ids_of(out) == ["RPL003"]

    def test_fires_on_tour_instance_chain(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/or_opt.py", """\
            def scan(tour):
                return tour.instance.dist(0, 1)
        """)
        assert ids_of(out) == ["RPL003"]

    def test_fires_on_assigned_instance_and_matrix_indexing(self, tmp_path):
        out = lint_snippet(
            tmp_path, "src/repro/localsearch/three_opt.py", """\
            def scan(tour):
                inst2 = tour.instance
                a = inst2.dist_many(0, [1, 2])
                b = inst2.matrix[0, 1]
                return a, b
        """)
        assert ids_of(out) == ["RPL003", "RPL003"]

    def test_silent_on_distview(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/localsearch/two_opt.py", """\
            def scan(tour, view):
                rows = view.rows
                return rows[0][1] + view.dist(2, 3)
        """)
        assert out == []

    def test_silent_outside_hot_loop_modules(self, tmp_path):
        # Setup/analysis code may use instance.dist freely.
        out = lint_snippet(tmp_path, "src/repro/analysis/quality.py", """\
            def gap(instance, a, b):
                return instance.dist(a, b)
        """)
        assert out == []

    def test_matrix_ok_waives_subscripts_in_kernels_only(self, tmp_path):
        # kernels.py is the sanctioned matrix-gather module: matrix
        # subscripts pass there, but instance.dist stays banned.
        src = """\
            import numpy as np

            def gather(instance, view, cmat):
                d = view.matrix[np.arange(3)[:, None], cmat]
                return d + instance.dist(0, 1)
        """
        out = lint_snippet(tmp_path, "src/repro/localsearch/kernels.py", src)
        assert ids_of(out) == ["RPL003"]  # only the instance.dist call
        # The same source in any other hot-loop module fires both halves.
        out = lint_snippet(tmp_path, "src/repro/localsearch/two_opt.py", src)
        assert ids_of(out) == ["RPL003", "RPL003"]

    def test_matrix_ok_pyproject_override(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            matrix-ok = ["src/repro/localsearch/three_opt.py"]
        """))
        cfg = load_config(tmp_path)
        assert cfg.matrix_ok_for("src/repro/localsearch/three_opt.py")
        assert not cfg.matrix_ok_for("src/repro/localsearch/kernels.py")


class TestRPL004WireTypes:
    def test_fires_on_missing_slots(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Message:
                sender: int
        """)
        assert ids_of(out) == ["RPL004"]

    def test_fires_on_plain_class(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            class Message:
                pass
        """)
        assert ids_of(out) == ["RPL004"]

    def test_fires_on_mutable_field_annotation(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Message:
                payload: dict
        """)
        assert ids_of(out) == ["RPL004"]
        assert "dict" in out[0].message

    def test_silent_on_conforming_wire_type(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            from dataclasses import dataclass
            from typing import Optional

            @dataclass(frozen=True, slots=True)
            class Message:
                sender: int
                length: Optional[int]
                order: "tuple[int, ...]"
        """)
        assert out == []

    def test_only_configured_classes_checked(self, tmp_path):
        # Non-wire helpers in the same file are out of scope.
        out = lint_snippet(tmp_path, "src/repro/distributed/message.py", """\
            class ScratchBuffer:
                data: dict
        """)
        assert out == []


class TestRPL005QueueTimeout:
    def test_fires_on_bare_get(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(q):
                return q.get()
        """)
        assert ids_of(out) == ["RPL005"]

    def test_fires_on_block_true_and_timeout_none(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(q):
                a = q.get(True)
                b = q.get(block=True)
                c = q.get(timeout=None)
                return a, b, c
        """)
        assert ids_of(out) == ["RPL005", "RPL005", "RPL005"]

    def test_fires_on_bare_recv(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(conn):
                return conn.recv()
        """)
        assert ids_of(out) == ["RPL005"]

    def test_silent_on_timeout_and_nowait_and_dict_get(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/distributed/backend.py", """\
            def pump(q, table):
                a = q.get(timeout=0.5)
                b = q.get_nowait()
                c = table.get("key", 0)
                return a, b, c
        """)
        assert out == []

    def test_fires_on_awaited_get_in_service_package(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/loop.py", """\
            async def pump(q):
                return await q.get()
        """)
        assert ids_of(out) == ["RPL005"]

    def test_silent_on_wait_for_wrapped_get(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/loop.py", """\
            import asyncio

            async def pump(q):
                a = await asyncio.wait_for(q.get(), timeout=1.0)
                b = await asyncio.wait_for(q.get(), 1.0)
                return a, b
        """)
        assert out == []

    def test_fires_when_wait_for_timeout_is_none(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/service/loop.py", """\
            import asyncio

            async def pump(q):
                return await asyncio.wait_for(q.get(), timeout=None)
        """)
        assert ids_of(out) == ["RPL005"]

    def test_service_scope_out_of_reach_elsewhere(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/analysis/x.py", """\
            async def pump(q):
                return await q.get()
        """)
        assert out == []


class TestRPL006SilentExcept:
    def test_fires_on_bare_except(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            def f():
                try:
                    g()
                except:
                    pass
        """)
        assert ids_of(out) == ["RPL006"]

    def test_fires_on_silent_broad_except(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            def f():
                try:
                    g()
                except Exception:
                    pass
        """)
        assert ids_of(out) == ["RPL006"]

    def test_fires_on_broad_tuple(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            def f():
                for _ in range(3):
                    try:
                        g()
                    except (ValueError, Exception):
                        continue
        """)
        assert ids_of(out) == ["RPL006"]

    def test_silent_on_narrow_or_handled(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import logging

            def f():
                try:
                    g()
                except KeyError:
                    pass
                try:
                    g()
                except Exception:
                    logging.exception("g failed")
        """)
        assert out == []


class TestSuppression:
    def test_line_suppression(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import time
            t0 = time.time()  # reprolint: disable=RPL002
        """)
        assert out == []

    def test_line_suppression_is_per_rule(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            import time
            t0 = time.time()  # reprolint: disable=RPL001
        """)
        assert ids_of(out) == ["RPL002"]

    def test_file_suppression(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", """\
            # reprolint: disable-file=RPL002
            import time
            t0 = time.time()
            t1 = time.monotonic()
        """)
        assert out == []

    def test_syntax_error_is_rpl000(self, tmp_path):
        out = lint_snippet(tmp_path, "src/repro/core/x.py", "def f(:\n")
        assert ids_of(out) == ["RPL000"]


class TestEngineAndConfig:
    def test_every_rule_has_id_title_rationale(self):
        seen = set()
        for rule in ALL_RULES:
            assert rule.id.startswith("RPL") and len(rule.id) == 6
            assert rule.title and rule.rationale
            assert rule.id not in seen
            seen.add(rule.id)
        assert rule_ids() == tuple(sorted(rule_ids()))

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "src/repro/core").mkdir(parents=True)
        (tmp_path / "src/repro/core/a.py").write_text("import random\n")
        (tmp_path / "src/repro/core/b.py").write_text("X = 1\n")
        out = lint_paths([tmp_path / "src"], config=Config(), root=tmp_path)
        assert ids_of(out) == ["RPL001"]

    def test_pyproject_overrides_and_unknown_key_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent("""\
            [tool.reprolint]
            exclude = ["generated/"]
            [tool.reprolint.rules.RPL002]
            include = ["src/custom/"]
        """))
        cfg = load_config(tmp_path)
        assert "generated/" in cfg.exclude
        assert cfg.scope_for("RPL002").include == ("src/custom/",)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint]\nexclue = []\n"
        )
        with pytest.raises(ValueError, match="unknown key"):
            load_config(tmp_path)

    def test_repo_tree_is_clean(self):
        # The acceptance bar: the shipped tree lints clean.
        violations = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "scripts", REPO_ROOT / "examples"],
            root=REPO_ROOT,
        )
        assert violations == [], "\n".join(v.render() for v in violations)


class TestCLI:
    def test_exit_codes(self, tmp_path):
        from tools.reprolint.__main__ import main

        (tmp_path / "src").mkdir()
        (tmp_path / "src/clean.py").write_text("X = 1\n")
        assert main(["--root", str(tmp_path), str(tmp_path / "src")]) == 0
        (tmp_path / "src/dirty.py").write_text("import random\n")
        assert main(["--root", str(tmp_path), str(tmp_path / "src")]) == 1

    def test_list_rules(self, capsys):
        from tools.reprolint.__main__ import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in rule_ids():
            assert rid in out
