"""Compare a bench-smoke result against the committed baseline.

    python scripts/check_bench_regression.py BASELINE CURRENT \
        [--max-slowdown 0.15]

Both files are ``BENCH_ci.json`` documents from
``scripts/run_bench_smoke.py``.  Each gated metric carries a
``direction``: for ``higher`` (rates) the current value must not fall
more than ``--max-slowdown`` below the baseline; for ``lower``
(durations) it must not rise more than that above it.  A metric present
in the baseline but missing from the current run fails too — silently
dropping a measurement must not pass the gate.  Exit status 1 on any
regression, 0 otherwise; ``check`` values (tour lengths, message
counts) are reported when they drift but do not gate, since they track
determinism, not speed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != 1:
        raise SystemExit(f"error: {path}: unsupported format "
                         f"{doc.get('format')!r}")
    return doc


def compare(baseline: dict, current: dict, max_slowdown: float) -> list:
    """Return a list of ``(name, base, cur, change, regressed)`` rows."""
    rows = []
    base_metrics = baseline.get("metrics") or {}
    cur_metrics = current.get("metrics") or {}
    for name, base in sorted(base_metrics.items()):
        cur = cur_metrics.get(name)
        if cur is None:
            rows.append((name, base["value"], None, "missing", True))
            continue
        b, c = float(base["value"]), float(cur["value"])
        direction = base.get("direction", "lower")
        if b == 0:
            change = 0.0
        elif direction == "higher":
            change = (b - c) / b  # fractional slowdown
        else:
            change = (c - b) / b
        rows.append((name, b, c, change, change > max_slowdown))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=0.15,
                        help="fractional slowdown tolerance (default 0.15)")
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    current = _load(args.current)
    rows = compare(baseline, current, args.max_slowdown)
    if not rows:
        print("error: baseline has no gated metrics")
        return 1

    failed = False
    print(f"bench regression gate (max slowdown "
          f"{args.max_slowdown * 100:.0f}%):")
    for name, base, cur, change, regressed in rows:
        if cur is None:
            print(f"  FAIL {name}: in baseline ({base}) but missing "
                  "from current run")
            failed = True
            continue
        verdict = "FAIL" if regressed else "ok"
        print(f"  {verdict:4s} {name}: {base:g} -> {cur:g} "
              f"({change * 100:+.1f}% slowdown)")
        failed = failed or regressed

    base_checks = baseline.get("checks") or {}
    cur_checks = current.get("checks") or {}
    for name, base in sorted(base_checks.items()):
        cur = cur_checks.get(name)
        if cur != base:
            print(f"  note {name}: {base} -> {cur} "
                  "(determinism drift, not gated)")

    if failed:
        print("REGRESSION: at least one metric exceeded the slowdown gate")
        return 1
    print("all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
