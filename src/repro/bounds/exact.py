"""Exact TSP solvers for small instances.

Used by tests to validate heuristics against ground truth:

* :func:`held_karp_exact` — the O(n^2 2^n) dynamic program, vectorized over
  subsets with NumPy; practical to n ≈ 16.
* :func:`brute_force` — O((n-1)!/2) enumeration, practical to n ≈ 10; used
  to validate the DP itself.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

__all__ = ["held_karp_exact", "brute_force"]

_MAX_DP_N = 18


def held_karp_exact(instance) -> tuple[int, np.ndarray]:
    """Optimal tour by Held-Karp dynamic programming.

    Returns ``(optimal_length, order)`` with ``order[0] == 0``.
    """
    n = instance.n
    if n > _MAX_DP_N:
        raise ValueError(f"held_karp_exact limited to n <= {_MAX_DP_N}, got {n}")
    d = instance.distance_matrix().astype(np.int64)

    # dp[mask, j]: cost of a path 0 -> ... -> j visiting exactly the cities
    # in mask (mask over cities 1..n-1, bit k <-> city k+1), ending at j.
    m = n - 1
    size = 1 << m
    INF = np.iinfo(np.int64).max // 4
    dp = np.full((size, m), INF, dtype=np.int64)
    parent = np.full((size, m), -1, dtype=np.int16)
    for j in range(m):
        dp[1 << j, j] = d[0, j + 1]

    for mask in range(1, size):
        members = [j for j in range(m) if mask >> j & 1]
        if len(members) < 2:
            continue
        for j in members:
            pmask = mask ^ (1 << j)
            prev = [k for k in range(m) if pmask >> k & 1]
            costs = dp[pmask, prev] + d[np.array(prev) + 1, j + 1]
            k = int(np.argmin(costs))
            dp[mask, j] = costs[k]
            parent[mask, j] = prev[k]

    full = size - 1
    totals = dp[full] + d[1:, 0]
    j = int(np.argmin(totals))
    best = int(totals[j])

    # Backtrack.
    order = [0]
    mask = full
    path = []
    while j >= 0:
        path.append(j + 1)
        pj = int(parent[mask, j])
        mask ^= 1 << j
        j = pj
    order.extend(reversed(path))
    return best, np.array(order, dtype=np.intp)


def brute_force(instance) -> tuple[int, np.ndarray]:
    """Optimal tour by exhaustive enumeration (tiny instances only)."""
    n = instance.n
    if n > 11:
        raise ValueError(f"brute_force limited to n <= 11, got {n}")
    d = instance.distance_matrix()
    best = None
    best_perm = None
    for perm in permutations(range(1, n)):
        # Fix direction: avoid counting each cycle twice.
        if perm[0] > perm[-1]:
            continue
        length = d[0, perm[0]] + d[perm[-1], 0]
        for a, b in zip(perm, perm[1:]):
            length += d[a, b]
        if best is None or length < best:
            best = int(length)
            best_perm = perm
    return best, np.array((0,) + best_perm, dtype=np.intp)
