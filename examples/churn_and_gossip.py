"""P2P dynamics: node churn and epidemic gossip (paper §1.2 motivation).

The paper argues for a P2P design precisely because "nodes can join and
leave at any time" and cites epidemic communication (DREAM); its
evaluation, however, is a static 8-node broadcast network.  This example
runs the dynamic scenario: two nodes crash mid-run, two fresh nodes hot-
join, and improvements spread by push-gossip instead of neighbour
broadcast.

Run:  python examples/churn_and_gossip.py
"""

from repro import solve
from repro.tsp import generators
from repro.analysis import format_table

BUDGET = 3.0


def main() -> None:
    instance = generators.drilling(150, rng=21)
    print(f"instance: {instance.name} (fl-class), n={instance.n}, "
          f"{BUDGET} vsec per node\n")

    static = solve(instance, budget_vsec_per_node=BUDGET, n_nodes=8, rng=7)

    churned = solve(
        instance, budget_vsec_per_node=BUDGET, n_nodes=8,
        churn=[
            (BUDGET * 0.4, "leave", 3),   # two nodes crash...
            (BUDGET * 0.5, "leave", 6),
            (BUDGET * 0.45, "join", 8),   # ...two fresh ones hot-join
            (BUDGET * 0.55, "join", 9),
        ],
        rng=7,
    )

    gossip = solve(
        instance, budget_vsec_per_node=BUDGET, n_nodes=8,
        dissemination="gossip", gossip_fanout=2, rng=7,
    )

    rows = [
        ("static broadcast (paper setup)", static.best_length,
         static.network_stats.tour_messages),
        ("churn: 2 leave, 2 join", churned.best_length,
         churned.network_stats.tour_messages),
        ("gossip push (fanout 2)", gossip.best_length,
         gossip.network_stats.tour_messages),
    ]
    print(format_table(["scenario", "best length", "tour messages"], rows))

    print("\nchurned run per-node fates:")
    for node_id in sorted(churned.reasons):
        print(f"  node {node_id}: {churned.reasons[node_id]:<8} "
              f"(clock {churned.clocks[node_id]:.2f} vsec)")


if __name__ == "__main__":
    main()
