"""Asymmetric TSP support via the symmetric embedding.

The paper (§1) defines both STSP and ATSP but evaluates only symmetric
instances; this module closes the gap with the classical Jonker-Volgenant
transformation: an ATSP on ``n`` cities becomes an STSP on ``2n`` cities
(each city i splits into an *out* node i and an *in* node i+n):

* ``d(i, i+n) = -M`` — the zero-cost "ghost" edge tying the pair (shifted
  by a large constant to keep weights non-negative);
* ``d(i+n, j) = c(i, j)`` for i != j — the original arc costs;
* everything else is forbidden (large weight).

Any optimal symmetric tour alternates out/in nodes and maps back to an
optimal directed tour with cost ``sym_cost + n * M``.  This makes every
solver in the library — LK, CLK, the distributed algorithm — an ATSP
solver for moderate n.
"""

from __future__ import annotations

import numpy as np

from .instance import TSPInstance
from .tour import Tour

__all__ = ["atsp_to_stsp", "directed_tour_from_symmetric", "atsp_tour_cost"]


def atsp_to_stsp(costs: np.ndarray, name: str = "atsp") -> tuple:
    """Embed an ATSP cost matrix into a symmetric instance.

    Returns ``(instance, offset)`` where ``offset = n * M`` must be added
    to a symmetric tour length to recover the directed cost (M is the
    ghost-edge shift).

    The input must be a square matrix with zero diagonal; asymmetric
    entries are the point.
    """
    c = np.asarray(costs, dtype=np.int64)
    n = c.shape[0]
    if c.ndim != 2 or c.shape[1] != n:
        raise ValueError(f"cost matrix must be square, got {c.shape}")
    if np.any(np.diag(c) != 0):
        raise ValueError("diagonal must be zero")
    if n < 3:
        raise ValueError("need at least 3 cities")

    # The -M ghost shift, realized with non-negative weights: ghosts
    # cost 0 and every real arc is shifted by +M, with M large enough
    # that maximizing ghost-edge usage always wins.  A tour uses 2n
    # edges; each skipped ghost replaces one ghost with one (+M) arc, so
    # M > n * max(c) makes all n ghosts mandatory in any optimum.
    # Forbidden pairs (out-out, in-in) get a weight no tour can afford.
    shift = int(c.max()) * n + 1
    big = (2 * n + 2) * shift
    m = np.full((2 * n, 2 * n), big, dtype=np.int64)
    # ghost edges (i, i+n), cost 0
    for i in range(n):
        m[i, i + n] = 0
        m[i + n, i] = 0
    # arcs: in-node of i to out-node of j carries c[i, j] + shift
    for i in range(n):
        for j in range(n):
            if i != j:
                m[i + n, j] = c[i, j] + shift
                m[j, i + n] = c[i, j] + shift
    np.fill_diagonal(m, 0)
    inst = TSPInstance(
        edge_weight_type="EXPLICIT",
        matrix=m,
        name=f"{name}-sym{2 * n}",
        comment=f"symmetric embedding of ATSP {name} (n={n})",
    )
    # directed cost = symmetric cost + offset (n arcs carry +shift each)
    return inst, -n * shift


def directed_tour_from_symmetric(tour: Tour, n: int) -> np.ndarray:
    """Recover the directed city order from a symmetric-embedding tour.

    Raises ValueError when the tour uses a forbidden edge (i.e. it does
    not alternate out/in nodes), which signals the symmetric solver did
    not reach a feasible ATSP solution.
    """
    order = [int(c) for c in tour.order]
    if len(order) != 2 * n:
        raise ValueError("tour is not over the 2n embedding")
    # Walk so that each out-node is immediately followed by its in-node.
    # The tour may run in either direction; try both.
    for seq in (order, order[::-1]):
        for start in range(2 * n):
            if seq[start] < n and seq[(start + 1) % (2 * n)] == seq[start] + n:
                rotated = seq[start:] + seq[:start]
                cities = rotated[0::2]
                ghosts = rotated[1::2]
                if all(g == c + n for c, g in zip(cities, ghosts)):
                    return np.array(cities, dtype=np.intp)
    raise ValueError("symmetric tour does not encode a directed tour")


def atsp_tour_cost(costs: np.ndarray, order: np.ndarray) -> int:
    """Directed cost of visiting ``order`` cyclically under ``costs``."""
    c = np.asarray(costs)
    order = np.asarray(order, dtype=np.intp)
    nxt = np.roll(order, -1)
    return int(c[order, nxt].sum())
