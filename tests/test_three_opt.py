"""Tests for the 3-opt local search."""

import numpy as np

from repro.bounds import held_karp_exact
from repro.localsearch import three_opt, two_opt
from repro.tsp import generators
from repro.tsp.tour import random_tour
from repro.utils.work import WorkMeter


class TestThreeOpt:
    def test_valid_and_consistent(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        before = t.length
        gain = three_opt(t)
        assert t.is_valid()
        assert t.length == t.recompute_length() == before - gain
        assert gain > 0

    def test_never_worse_than_two_opt_start(self, rng):
        # From the same start, 3-opt's result is at least 2-opt's.
        wins = 0
        for seed in range(5):
            inst = generators.uniform(60, rng=seed + 30)
            start = random_tour(inst, np.random.default_rng(seed))
            t3 = start.copy()
            t2 = start.copy()
            three_opt(t3)
            two_opt(t2)
            wins += t3.length <= t2.length
        assert wins >= 4

    def test_finds_optimum_small(self):
        inst = generators.uniform(10, rng=77)
        opt, _ = held_karp_exact(inst)
        t = random_tour(inst, np.random.default_rng(0))
        three_opt(t, neighbor_k=9)
        assert t.length == opt

    def test_finds_segment_exchange(self):
        """A pure segment reorder (type 4) that 2-opt cannot express
        without intermediate worsening."""
        from repro.tsp.instance import TSPInstance

        # Three tight clusters on a line; the tour visits them in the
        # wrong order (A C B); only a segment exchange fixes it cheaply.
        a = np.array([[0, 0], [0, 10], [10, 0], [10, 10]], dtype=float)
        b = a + [5000, 0]
        c = a + [10000, 0]
        coords = np.vstack([a, c, b])  # note: C before B
        inst = TSPInstance(coords=coords)
        t = random_tour(inst, np.random.default_rng(3))
        three_opt(t, neighbor_k=11)
        two = random_tour(inst, np.random.default_rng(3))
        two_opt(two, neighbor_k=11)
        assert t.length <= two.length
        assert t.is_valid() and t.length == t.recompute_length()

    def test_idempotent(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        three_opt(t)
        assert three_opt(t) == 0

    def test_tiny_instance_noop(self):
        inst = generators.uniform(5, rng=0)
        t = random_tour(inst, np.random.default_rng(0))
        assert three_opt(t) == 0

    def test_budget_interruptible(self, rng):
        inst = generators.uniform(150, rng=8)
        t = random_tour(inst, rng)
        meter = WorkMeter(budget_ops=1500)
        three_opt(t, meter=meter)
        assert t.is_valid()
        assert t.length == t.recompute_length()

    def test_explicit_instance(self, explicit_instance, rng):
        t = random_tour(explicit_instance, rng)
        three_opt(t, neighbor_k=6)
        assert t.is_valid()
        assert t.length == t.recompute_length()
