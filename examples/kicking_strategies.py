"""Compare the four double-bridge kicking strategies (paper §2.1, Fig. 2).

Runs the sequential Chained LK with each of Random / Geometric / Close /
Random-walk kicks on a drilling-plate instance (the fl-class where the
choice matters most) and prints the anytime comparison.

Run:  python examples/kicking_strategies.py
"""

import numpy as np

from repro.localsearch import KICK_STRATEGIES, chained_lk
from repro.tsp import generators
from repro.analysis import ascii_chart, average_traces, format_series

BUDGET_VSEC = 4.0


def main() -> None:
    instance = generators.drilling(150, rng=7)
    print(f"instance: {instance.name} (fl-class), n={instance.n}, "
          f"budget {BUDGET_VSEC} vsec\n")

    times = np.linspace(0.25, BUDGET_VSEC, 12)
    curves = {}
    finals = {}
    for kick in KICK_STRATEGIES:
        res = chained_lk(instance, budget_vsec=BUDGET_VSEC, kick=kick, rng=1)
        curves[kick] = average_traces([res.trace], times)
        finals[kick] = res.length
        print(f"  {kick:<12} final length {res.length}  "
              f"({res.kicks} kicks, {res.improvements} improvements)")

    print("\ntour length over time (lower is better):")
    print(format_series(times, curves))
    print()
    print(ascii_chart(times, curves, title="anytime curves by kick strategy"))

    best = min(finals, key=finals.get)
    print(f"\nbest strategy on this run: {best}")
    print("(the paper finds Random-walk best overall, Random best on "
          "uniform instances, Geometric worst on small ones)")


if __name__ == "__main__":
    main()
