"""Failure-injection and robustness tests.

What happens when components are fed degenerate, hostile, or boundary
inputs: the library should raise clear errors or degrade gracefully,
never return a corrupt tour.
"""

import numpy as np
import pytest

from repro.core import solve
from repro.core.node import EANode, NodeConfig
from repro.distributed.message import Message, MessageKind
from repro.localsearch import LKConfig, chained_lk, lin_kernighan
from repro.tsp import generators
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import Tour, random_tour


class TestDegenerateGeometry:
    def test_collinear_cities(self):
        coords = np.stack([np.arange(20) * 100.0, np.zeros(20)], axis=1)
        inst = TSPInstance(coords=coords, name="line20")
        res = chained_lk(inst, max_kicks=5, rng=0)
        assert res.tour.is_valid()
        # The optimal line tour is 2 * span.
        assert res.length == 2 * 1900

    def test_nearly_coincident_cities(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0, 1000, size=(10, 2))
        coords = np.vstack([base, base + 0.01])  # pairs almost on top
        inst = TSPInstance(coords=coords, name="twins")
        t = random_tour(inst, rng)
        lin_kernighan(t)
        assert t.is_valid()
        assert t.length == t.recompute_length()

    def test_all_equal_distance_matrix(self):
        n = 12
        m = np.ones((n, n), dtype=np.int64) * 7
        np.fill_diagonal(m, 0)
        inst = TSPInstance(edge_weight_type="EXPLICIT", matrix=m)
        t = random_tour(inst, np.random.default_rng(1))
        gain = lin_kernighan(t)
        assert gain == 0  # every tour has identical length
        assert t.length == 7 * n

    def test_minimum_size_instance(self):
        inst = generators.uniform(3, rng=0)
        t = Tour.identity(inst)
        lin_kernighan(t)
        assert t.is_valid()

    def test_four_city_kick_impossible_handled(self):
        # n=4 cannot host 4 distinct cuts with nonempty segments beyond
        # the trivial one; CLK must still terminate.
        inst = generators.uniform(5, rng=0)
        res = chained_lk(inst, max_kicks=3, rng=0)
        assert res.tour.is_valid()


class TestHostileMessages:
    def test_node_survives_duplicate_messages(self, small_instance):
        node = EANode(0, small_instance, NodeConfig(inner_kicks=1), rng=0)
        _, cand = node.compute(10.0)
        node.select(cand, [])
        msg = Message(
            MessageKind.TOUR, sender=1, length=cand.length,
            order=np.asarray(cand.order),
        )
        out = node.select(node.s_best.copy(), [msg, msg, msg])
        assert node.s_best.is_valid()
        assert not out.improved  # equal-length received tours ignored

    def test_malformed_received_tour_raises(self, small_instance):
        node = EANode(0, small_instance, NodeConfig(inner_kicks=1), rng=0)
        _, cand = node.compute(10.0)
        node.select(cand, [])
        bad = Message(
            MessageKind.TOUR, sender=1, length=1,
            order=np.zeros(small_instance.n, dtype=np.int32),
        )
        with pytest.raises(ValueError, match="permutation"):
            node.select(node.s_best.copy(), [bad])


class TestBudgetEdges:
    def test_tiny_budget_still_returns_valid_tour(self, small_instance):
        res = chained_lk(small_instance, budget_vsec=1e-6, rng=0)
        assert res.tour.is_valid()
        assert res.length == res.tour.recompute_length()

    def test_distributed_tiny_budget(self, small_instance):
        res = solve(small_instance, budget_vsec_per_node=1e-6, n_nodes=2,
                    topology="ring", rng=0)
        assert res.best_tour.is_valid()

    def test_zero_kicks(self, small_instance):
        res = chained_lk(small_instance, max_kicks=0, rng=0)
        assert res.kicks == 0
        assert res.tour.is_valid()


class TestConfigValidation:
    def test_lk_breadth_never_zero(self):
        # Non-positive breadth levels are now rejected at construction
        # (they used to be silently clamped to 1).
        with pytest.raises(ValueError, match="breadth"):
            LKConfig(breadth=(0, -1))
        # Levels beyond the configured tuple stay greedy.
        assert LKConfig(breadth=(5, 3)).breadth_at(7) == 1

    def test_solve_rejects_unknown_kick(self, small_instance):
        with pytest.raises(KeyError, match="choices"):
            solve(small_instance, budget_vsec_per_node=0.1, kick="tornado",
                  rng=0)

    def test_solve_rejects_unknown_topology(self, small_instance):
        with pytest.raises(KeyError, match="choices"):
            solve(small_instance, budget_vsec_per_node=0.1,
                  topology="moebius", rng=0)
