"""Run persistence: save and reload experiment results as JSON.

Long experiments (the paper's are 10^4-10^5 CPU seconds each) should not
be re-run to re-plot; this module serializes the result objects of both
solvers — sequential CLK and distributed runs — with their traces, and
reloads them for the analysis layer.  Tours round-trip exactly; event
logs keep their timestamps and kinds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..core.events import EventKind, EventLog
from ..distributed.network import NetworkStats
from ..distributed.simulator import SimulationResult
from ..localsearch.chained_lk import ChainedLKResult
from ..localsearch.engine import OpStats
from ..tsp.tour import Tour

__all__ = [
    "run_to_json",
    "run_from_json",
    "save_run",
    "load_run",
    "save_jobs",
    "load_jobs",
    "save_trace",
    "load_trace",
]

_FORMAT_VERSION = 1


def _tour_to_json(tour: Tour) -> dict:
    return {
        "order": [int(c) for c in tour.order],
        "length": int(tour.length),
    }


def _events_to_json(log: EventLog) -> list:
    return [
        {"vsec": e.vsec, "kind": e.kind.value, "value": e.value}
        for e in log
    ]


def _events_from_json(node_id: int, data: list) -> EventLog:
    log = EventLog(node_id)
    for rec in data:
        log.record(rec["vsec"], EventKind(rec["kind"]), rec["value"])
    return log


def run_to_json(result, instance_name: str = "") -> dict:
    """Result object -> JSON-safe document (the on-disk form).

    Split out of :func:`save_run` so results can also cross process
    boundaries without touching disk — the service's process backend
    ships this doc through a multiprocessing queue and the parent
    rebuilds with :func:`run_from_json`.
    """
    if isinstance(result, ChainedLKResult):
        doc = {
            "format": _FORMAT_VERSION,
            "type": "clk",
            "instance": instance_name,
            "tour": _tour_to_json(result.tour),
            "kicks": result.kicks,
            "improvements": result.improvements,
            "work_vsec": result.work_vsec,
            "hit_target": result.hit_target,
            "trace": [[float(t), int(l)] for t, l in result.trace],
            "op_stats": result.op_stats.to_json(),
        }
    elif isinstance(result, SimulationResult):
        doc = {
            "format": _FORMAT_VERSION,
            "type": "distributed",
            "instance": instance_name,
            "tour": _tour_to_json(result.best_tour),
            "best_node": result.best_node,
            "best_found_at": result.best_found_at,
            "reasons": {str(k): v for k, v in result.reasons.items()},
            "clocks": {str(k): float(v) for k, v in result.clocks.items()},
            "events": {
                str(k): _events_to_json(v)
                for k, v in result.event_logs.items()
            },
            "network": {
                "broadcasts": result.network_stats.broadcasts,
                "gossip_pushes": result.network_stats.gossip_pushes,
                "messages": result.network_stats.messages,
                "tour_messages": result.network_stats.tour_messages,
                "notification_messages":
                    result.network_stats.notification_messages,
                "delivered": result.network_stats.delivered,
                "dropped": result.network_stats.dropped,
                "broadcast_log": [
                    [int(s), float(t)]
                    for s, t in result.network_stats.broadcast_log
                ],
                "gossip_log": [
                    [int(s), float(t)]
                    for s, t in result.network_stats.gossip_log
                ],
            },
            "global_trace": [[float(t), int(l)] for t, l in
                             result.global_trace],
            "op_stats": {
                str(k): v.to_json() for k, v in result.op_stats.items()
            },
        }
    else:
        raise TypeError(f"cannot serialize {type(result).__name__}")
    return doc


def run_from_json(doc: dict, instance):
    """JSON document (:func:`run_to_json`) -> result object.

    Returns a :class:`ChainedLKResult` or :class:`SimulationResult`
    equivalent to the serialized one (tours and traces round-trip
    exactly).  The tour is re-scored against ``instance`` and must match
    the saved length — the cheap end-to-end check that the caller paired
    the doc with the right instance.
    """
    if doc.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported run format: {doc.get('format')!r}")
    tour = Tour(instance, np.array(doc["tour"]["order"], dtype=np.intp))
    if tour.length != doc["tour"]["length"]:
        raise ValueError(
            "saved tour length does not match the instance "
            f"({doc['tour']['length']} vs {tour.length}); wrong instance?"
        )
    if doc["type"] == "clk":
        return ChainedLKResult(
            tour=tour,
            kicks=doc["kicks"],
            improvements=doc["improvements"],
            work_vsec=doc["work_vsec"],
            hit_target=doc["hit_target"],
            trace=[(t, l) for t, l in doc.get("trace") or []],
            # Older run files predate engine telemetry, and files written
            # with observability disabled may carry explicit nulls;
            # either way default to zeros.
            op_stats=OpStats.from_json(doc.get("op_stats")),
        )
    if doc["type"] == "distributed":
        network = doc["network"]
        # ``x.get(k, default)`` is not enough here: a writer with obs
        # disabled emits the key with a null value, so absent *and* None
        # must both fall back (the `or` idiom below covers both).
        stats = NetworkStats(
            broadcasts=network["broadcasts"],
            gossip_pushes=network.get("gossip_pushes") or 0,
            messages=network["messages"],
            tour_messages=network["tour_messages"],
            notification_messages=network["notification_messages"],
            # Older run files predate the conservation counters.
            delivered=network.get("delivered") or 0,
            dropped=network.get("dropped") or 0,
            broadcast_log=[
                (s, t) for s, t in network.get("broadcast_log") or []
            ],
            gossip_log=[
                (s, t) for s, t in network.get("gossip_log") or []
            ],
        )
        return SimulationResult(
            best_tour=tour,
            best_node=doc["best_node"],
            best_found_at=doc["best_found_at"],
            reasons={int(k): v for k, v in doc["reasons"].items()},
            clocks={int(k): v for k, v in doc["clocks"].items()},
            event_logs={
                int(k): _events_from_json(int(k), v)
                for k, v in doc["events"].items()
            },
            network_stats=stats,
            global_trace=[(t, l) for t, l in doc.get("global_trace") or []],
            op_stats={
                int(k): OpStats.from_json(v)
                for k, v in (doc.get("op_stats") or {}).items()
            },
        )
    raise ValueError(f"unknown run type {doc['type']!r}")


def save_run(result, path: Union[str, Path], instance_name: str = "") -> None:
    """Serialize a :class:`ChainedLKResult` or :class:`SimulationResult`."""
    Path(path).write_text(json.dumps(run_to_json(result, instance_name),
                                     indent=1))


def load_run(path: Union[str, Path], instance):
    """Reload a saved run against its instance (see :func:`run_from_json`)."""
    return run_from_json(json.loads(Path(path).read_text()), instance)


def save_jobs(records, path: Union[str, Path]) -> None:
    """Persist service job records as a JSON document.

    ``records`` is an iterable of :class:`repro.service.jobs.JobRecord`;
    the file captures each job's lifecycle (status, tenant, charge,
    incumbent stream, final tour) so a service run can be audited or
    re-plotted after the process exits.
    """
    doc = {
        "format": _FORMAT_VERSION,
        "type": "jobs",
        "jobs": [r.to_json() for r in records],
    }
    Path(path).write_text(json.dumps(doc, indent=1))


def load_jobs(path: Union[str, Path]) -> list:
    """Reload job records saved by :func:`save_jobs` as a list of dicts.

    Job records deliberately reload as plain dicts, not
    :class:`JobRecord` objects — the consumer is the analysis layer,
    which only reads them.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported jobs format: {doc.get('format')!r}")
    if doc.get("type") != "jobs":
        raise ValueError(f"not a jobs file: type={doc.get('type')!r}")
    return doc["jobs"]


def save_trace(tracer, path: Union[str, Path]) -> None:
    """Export an observability tracer's spans + metrics as JSONL.

    Thin persistence front-end over :func:`repro.obs.export.write_jsonl`
    so run artefacts and trace artefacts are saved through the same
    module (and the same tolerance rules on reload).
    """
    from ..obs.export import write_jsonl

    write_jsonl(tracer, path)


def load_trace(path: Union[str, Path]):
    """Reload a JSONL trace as a :class:`repro.obs.export.TraceData`."""
    from ..obs.export import read_jsonl

    return read_jsonl(path)
