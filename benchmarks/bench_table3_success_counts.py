"""Paper Table 3: runs finding the optimum, per kicking strategy.

    "Number of CLK runs that found the optimum within a given time
    bound.  For CLK, the limit was set to 10^4 seconds and to 10^3
    seconds for the distributed variant with 8 nodes solving in
    parallel."

Here: best-known registry lengths play the optimum's role; budgets are
the scaled protocol from ``_common``.  The paper's shape to reproduce:
DistCLK's success counts dominate CLK's almost everywhere (the paper has
a single exception cell, fl1577/Random), and fl-class instances are
where CLK fails outright.
"""

from _common import (
    emit,
    KICKS,
    KICK_LABELS,
    N_RUNS,
    TABLE3_INSTANCES,
    print_banner,
    reference,
    run_clk,
    run_dist,
    seeds,
)
from repro.analysis import format_table


#: Success counting needs enough kicks per node for plateau drift to
#: reach the target at all; double the default budget mapping (budgets
#: stay equal-total-CPU on both sides).
BUDGET_SCALE = 2.0


def _experiment():
    from _common import clk_budget

    rows = []
    dominance_ok = 0
    cells = 0
    for name in TABLE3_INSTANCES:
        target, kind = reference(name)
        budget = BUDGET_SCALE * clk_budget(name)
        row = [name]
        for kick in KICKS:
            clk_hits = sum(
                run_clk(name, kick, s, budget=budget,
                        target=target).hit_target
                for s in seeds(1000 + hash(name) % 100, N_RUNS)
            )
            dist_hits = sum(
                run_dist(name, kick, s, budget=budget / 8,
                         target=target).hit_target()
                for s in seeds(2000 + hash(name) % 100, N_RUNS)
            )
            row.append(f"{clk_hits}/{N_RUNS}")
            row.append(f"{dist_hits}/{N_RUNS}")
            cells += 1
            dominance_ok += dist_hits >= clk_hits
        rows.append(row)
    return rows, dominance_ok, cells


def test_table3_success_counts(once):
    rows, dominance_ok, cells = once(_experiment)
    print_banner(
        "Table 3: runs that found the best-known length "
        f"(out of {N_RUNS}; target role = paper's optimum)",
        "CLK budget = 8x the DistCLK per-node budget (equal total CPU; "
        "the paper used 10x).",
    )
    headers = ["instance"]
    for kick in KICKS:
        headers += [f"{KICK_LABELS[kick]} CLK", f"{KICK_LABELS[kick]} Dist"]
    emit(format_table(headers, rows))
    emit(
        f"\nshape check: DistCLK >= CLK successes in {dominance_ok}/{cells} "
        "cells (paper: all but one cell; at Python scale the single long "
        "CLK drift chain is relatively stronger, see EXPERIMENTS.md)"
    )
    # Reproduction target: DistCLK at least ties CLK in most cells.
    assert dominance_ok >= int(0.6 * cells)
