"""reprolint configuration: baked-in defaults + ``[tool.reprolint]`` overrides.

Every rule is scoped by path — the invariants are *regional* (wall-clock
reads are fine in the supervisor, banned in the simulator), so the
configuration maps rule IDs to include/exclude path fragments.  Paths
are matched as POSIX-style substrings against the linted file's path
relative to the project root, which keeps the config robust to where the
tool is invoked from.

Overrides come from ``pyproject.toml``::

    [tool.reprolint]
    exclude = ["tests/fixtures"]

    [tool.reprolint.rules.RPL002]
    include = ["src/repro/localsearch/", "src/repro/core/"]
    exclude = ["src/repro/localsearch/debug.py"]

Only ``include`` / ``exclude`` per rule and the global ``exclude`` /
``wire-types`` / ``matrix-ok`` keys are recognized; unknown keys raise
so typos cannot silently disable a rule.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

if sys.version_info >= (3, 11):
    import tomllib
else:  # pragma: no cover - py3.10 fallback
    tomllib = None

__all__ = ["Config", "RuleScope", "load_config", "DEFAULT_SCOPES"]


@dataclass(frozen=True)
class RuleScope:
    """Path scoping for one rule: matched iff any include fragment hits
    and no exclude fragment does.  An empty include list means
    "everywhere (minus excludes)"."""

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def matches(self, posix_path: str) -> bool:
        if any(frag in posix_path for frag in self.exclude):
            return False
        if not self.include:
            return True
        return any(frag in posix_path for frag in self.include)


#: Default per-rule scoping — the repo's invariant map.  See
#: docs/CHECKS.md for the rationale behind each region.
DEFAULT_SCOPES: dict[str, RuleScope] = {
    # Global RNG state is banned everywhere except the one module whose
    # job is to own seeding (utils/rng.py) and the test suite (tests may
    # exercise determinism by constructing generators ad hoc).
    "RPL001": RuleScope(
        include=(),
        exclude=("utils/rng.py", "tests/", "tools/"),
    ),
    # Wall-clock reads are banned in everything that runs under virtual
    # time: the local-search engine, the core EA node/driver, and the
    # discrete-event simulator.  The mp backend and supervision are the
    # wall-clock domain by design, and analysis/normalization.py
    # calibrates vsec against real time — all outside this scope.
    # src/repro/obs/ is the sanctioned exception inside the include
    # fragments' reach (docs/OBSERVABILITY.md): spans measure wall time
    # *about* the virtual-time code without letting it read the clock,
    # so the tracer owns the perf_counter calls and nothing else does.
    # src/repro/divide/ runs entirely under virtual time too: region
    # solvers are metered sessions and the repair pass charges a
    # WorkMeter, so wall-clock reads there would silently skew the
    # phase accounting the divide.* spans report.
    "RPL002": RuleScope(
        include=(
            "src/repro/localsearch/",
            "src/repro/core/",
            "src/repro/distributed/simulator.py",
            "src/repro/divide/",
        ),
        exclude=("src/repro/obs/",),
    ),
    # Operator hot-loop modules must route distance access through
    # DistView (row caches); raw instance.dist calls there bypass the
    # row cache and, worse, invite unsorted-row candidate scans.
    # kernels.py is in scope too — its scalar paths obey the same
    # contract — but carries a documented matrix-indexing exception
    # (Config.matrix_ok below): vectorized gather over view.matrix IS
    # its job, while instance.dist stays banned there like everywhere.
    # The boundary-repair module hosts the divide pipeline's hot loop
    # (stitching scans + the restricted 2-opt/or-opt pass), so it obeys
    # the same DistView discipline as the operator modules.
    "RPL003": RuleScope(
        include=(
            "src/repro/localsearch/two_opt.py",
            "src/repro/localsearch/or_opt.py",
            "src/repro/localsearch/three_opt.py",
            "src/repro/localsearch/lin_kernighan.py",
            "src/repro/localsearch/kernels.py",
            "src/repro/divide/repair.py",
        ),
    ),
    # Wire-type hygiene applies to the modules whose dataclasses cross
    # the multiprocessing boundary (see Config.wire_types).
    "RPL004": RuleScope(
        include=(
            "src/repro/distributed/message.py",
            "src/repro/core/node.py",
            "src/repro/localsearch/lin_kernighan.py",
            "src/repro/divide/partition.py",
        ),
    ),
    # Blocking queue reads without a timeout are the hang class PR 1
    # eliminated; scoped to the real-process transport layer and the
    # asyncio service package (where `await q.get()` outside a finite
    # asyncio.wait_for is the same hang in coroutine clothing).
    "RPL005": RuleScope(
        include=("src/repro/distributed/", "src/repro/service/"),
    ),
    # Silent exception swallowing is banned everywhere we lint.
    "RPL006": RuleScope(include=(), exclude=("tools/",)),
    # The dataflow tier (RPL007–011) guards the asyncio service layer —
    # the one package whose correctness depends on what happens *between*
    # statements: blocking calls on the event loop, read-modify-writes
    # spanning awaits, lost task handles, determinism taint flowing into
    # persisted records, and swallowed CancelledError.  Scoped to
    # src/repro/service/ because that is where the event loop lives; the
    # rest of the codebase is synchronous and covered by RPL001–006.
    "RPL007": RuleScope(include=("src/repro/service/",)),
    "RPL008": RuleScope(include=("src/repro/service/",)),
    "RPL009": RuleScope(include=("src/repro/service/",)),
    "RPL010": RuleScope(include=("src/repro/service/",)),
    "RPL011": RuleScope(include=("src/repro/service/",)),
}

#: Dataclasses that cross the mp_backend boundary (pickled into worker
#: processes or reconstructed from wire tuples), per module fragment.
DEFAULT_WIRE_TYPES: dict[str, tuple[str, ...]] = {
    "distributed/message.py": ("Message",),
    "core/node.py": ("NodeConfig",),
    "localsearch/lin_kernighan.py": ("LKConfig",),
    # Regions ship into the divide scheduler's pool workers.
    "divide/partition.py": ("Region",),
}

#: Field annotations accepted on wire types: immutable scalars, tuples,
#: numpy arrays (snapshotted, write-locked payloads), enums and nested
#: wire types.  Mutable containers (list/dict/set) are rejected — shared
#: mutable state across process boundaries is exactly the bug class this
#: rule guards against.
#: Modules allowed to index ``view.matrix`` directly inside the RPL003
#: scope.  The vector kernel tier's whole purpose is batched NumPy
#: gathers over the dense matrix (docs/ALGORITHMS.md, "Scan-kernel
#: tiers"), so the matrix-subscript half of RPL003 would flag every
#: line of it; the instance.dist half still applies in full.  This is a
#: scoped, reviewable exception — not a suppression comment in the file.
DEFAULT_MATRIX_OK: tuple[str, ...] = (
    "src/repro/localsearch/kernels.py",
)

DEFAULT_PICKLABLE_NAMES: tuple[str, ...] = (
    "int",
    "float",
    "str",
    "bool",
    "bytes",
    "None",
    "Optional",
    "Union",
    "tuple",
    "Tuple",
    "frozenset",
    "ndarray",  # matches np.ndarray / numpy.ndarray leaves
    "MessageKind",
    "LKConfig",
)


@dataclass
class Config:
    """Resolved reprolint configuration."""

    scopes: dict[str, RuleScope] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )
    #: Path fragments excluded from linting entirely.
    exclude: tuple[str, ...] = ("__pycache__", ".git", "tests/fixtures")
    wire_types: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_WIRE_TYPES)
    )
    picklable_names: tuple[str, ...] = DEFAULT_PICKLABLE_NAMES
    #: Path fragments where RPL003's matrix-subscript check is waived
    #: (vectorized kernels gather from the dense matrix by design).
    matrix_ok: tuple[str, ...] = DEFAULT_MATRIX_OK

    def scope_for(self, rule_id: str) -> RuleScope:
        return self.scopes.get(rule_id, RuleScope())

    def matrix_ok_for(self, posix_path: str) -> bool:
        """Whether direct matrix indexing is sanctioned at this path."""
        return any(frag in posix_path for frag in self.matrix_ok)

    def wire_classes_for(self, posix_path: str) -> tuple[str, ...]:
        names: list[str] = []
        for fragment, classes in self.wire_types.items():
            if fragment in posix_path:
                names.extend(classes)
        return tuple(names)


def _as_fragments(value: Any, key: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(v, str) for v in value
    ):
        raise ValueError(f"[tool.reprolint] {key} must be a list of strings")
    return tuple(value)


def load_config(root: Path | None = None) -> Config:
    """Load defaults merged with ``[tool.reprolint]`` from pyproject.toml."""
    config = Config()
    root = root or Path.cwd()
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return config
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    section = data.get("tool", {}).get("reprolint")
    if not section:
        return config
    for key, value in section.items():
        if key == "exclude":
            config.exclude = config.exclude + _as_fragments(value, "exclude")
        elif key == "rules":
            for rule_id, scope_spec in value.items():
                base = config.scopes.get(rule_id, RuleScope())
                unknown = set(scope_spec) - {"include", "exclude"}
                if unknown:
                    raise ValueError(
                        f"[tool.reprolint.rules.{rule_id}] unknown keys "
                        f"{sorted(unknown)}"
                    )
                config.scopes[rule_id] = RuleScope(
                    include=_as_fragments(
                        scope_spec.get("include", list(base.include)),
                        f"rules.{rule_id}.include",
                    ),
                    exclude=_as_fragments(
                        scope_spec.get("exclude", list(base.exclude)),
                        f"rules.{rule_id}.exclude",
                    ),
                )
        elif key == "wire-types":
            for fragment, classes in value.items():
                config.wire_types[fragment] = _as_fragments(
                    classes, f"wire-types.{fragment}"
                )
        elif key == "matrix-ok":
            config.matrix_ok = _as_fragments(value, "matrix-ok")
        else:
            raise ValueError(f"[tool.reprolint] unknown key {key!r}")
    return config


def iter_python_files(
    paths: Iterable[Path], exclude: tuple[str, ...]
) -> list[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(
        p for p in out if not any(frag in p.as_posix() for frag in exclude)
    )
