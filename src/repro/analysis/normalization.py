"""DIMACS-style machine normalization.

For its Table 2 the paper normalizes running times to a 500 MHz Alpha by
running the DIMACS challenge's benchmark code on the local machine and
scaling by the measured ratio.  We reproduce the mechanism: a fixed
micro-benchmark (greedy tour construction + 2-opt on a canned instance)
is timed on the host, and times are rescaled by the ratio to a recorded
reference duration.

In the virtual-time world this matters when comparing *wall-clock* runs
(e.g. the multiprocessing backend) across machines; virtual seconds are
machine-independent by construction, with factor 1.0.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["NormalizationFactor", "measure_machine_factor", "normalize_times"]

#: Reference duration of the micro-benchmark (seconds) on the project's
#: reference machine; plays the role of DIMACS's Alpha measurements.
REFERENCE_SECONDS = 1.25

#: Benchmark workload size.
_BENCH_N = 600


@dataclass(frozen=True)
class NormalizationFactor:
    """Multiplier mapping local seconds to reference-machine seconds."""

    factor: float
    local_seconds: float
    reference_seconds: float

    def apply(self, seconds: float) -> float:
        return seconds * self.factor


def _benchmark_workload() -> None:
    """Fixed deterministic workload: NN construction + 2-opt sweeps."""
    rng = np.random.default_rng(123456789)
    coords = rng.uniform(0, 10_000, size=(_BENCH_N, 2))
    d = np.hypot(
        coords[:, None, 0] - coords[None, :, 0],
        coords[:, None, 1] - coords[None, :, 1],
    )
    visited = np.zeros(_BENCH_N, dtype=bool)
    order = [0]
    visited[0] = True
    for _ in range(_BENCH_N - 1):
        row = d[order[-1]].copy()
        row[visited] = np.inf
        nxt = int(np.argmin(row))
        order.append(nxt)
        visited[nxt] = True
    order = np.array(order)
    for _sweep in range(2):
        for i in range(1, _BENCH_N - 2):
            j = i + 1
            a, b = order[i - 1], order[i]
            c, e = order[j], order[(j + 1) % _BENCH_N]
            if d[a, c] + d[b, e] < d[a, b] + d[c, e]:
                order[i : j + 1] = order[i : j + 1][::-1]


def measure_machine_factor(repeats: int = 3) -> NormalizationFactor:
    """Time the canned workload; return the local-to-reference factor."""
    best = np.inf
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        _benchmark_workload()
        best = min(best, time.perf_counter() - t0)
    return NormalizationFactor(
        factor=REFERENCE_SECONDS / best,
        local_seconds=best,
        reference_seconds=REFERENCE_SECONDS,
    )


def normalize_times(seconds, factor: NormalizationFactor) -> np.ndarray:
    """Apply a measured factor to an array of wall-clock durations."""
    return np.asarray(seconds, dtype=np.float64) * factor.factor
