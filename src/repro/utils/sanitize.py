"""Runtime sanitizer: cheap-to-write, expensive-to-run invariant checks.

Activated by the environment variable ``REPRO_SANITIZE=1`` (read once,
at first query; see :func:`sanitize_enabled`).  When on, the engine and
simulator re-verify after every operator call and scheduling step the
invariants the static layer (``tools/reprolint``) can only guard
syntactically:

* a tour is still a permutation with a consistent position inverse, and
  its incrementally-maintained length matches an O(n) recomputation —
  catching any operator whose gain accounting drifted from the moves it
  actually applied;
* candidate rows satisfy the distance-sorted-row invariant (no self,
  no duplicates, distances non-decreasing) — the precondition of every
  early-break candidate scan;
* the simulator's message conservation holds: every enqueued copy is
  either delivered, dropped, or still in flight.

Violations raise :class:`SanitizeError` (an ``AssertionError`` subclass,
so ``pytest.raises(AssertionError)`` also catches it) with enough
context to locate the offending operator.  The checks multiply run time
by a small constant; CI runs tier-1 once under the flag, and it is the
first switch to flip when a distributed run produces a suspect tour.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = [
    "SanitizeError",
    "sanitize_enabled",
    "set_sanitize",
    "check_tour",
    "check_candidate_rows",
    "check_message_conservation",
]


class SanitizeError(AssertionError):
    """A runtime invariant check failed under REPRO_SANITIZE=1."""


_enabled: Optional[bool] = None


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value.

    The environment is read once and cached so hot paths pay a single
    global load per check site; tests toggle via :func:`set_sanitize`.
    """
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
            "", "0", "false", "off", "no",
        )
    return _enabled


def set_sanitize(enabled: Optional[bool]) -> None:
    """Override (or, with ``None``, reset to re-read the environment)."""
    global _enabled
    _enabled = enabled


def check_tour(tour, context: str = "", atol: int = 0) -> None:
    """Assert ``tour`` is a valid permutation with truthful length.

    ``atol`` admits a tolerance on the length comparison for callers
    with non-integral weights; the repo's TSPLIB distances are all
    integral, so the default is exact.
    """
    where = f" after {context}" if context else ""
    n = tour.n
    counts = np.bincount(tour.order, minlength=n)
    if tour.order.shape != (n,) or np.any(counts != 1):
        raise SanitizeError(
            f"tour corrupted{where}: order is not a permutation of 0..{n - 1}"
        )
    if not np.array_equal(tour.position[tour.order], np.arange(n)):
        raise SanitizeError(
            f"tour corrupted{where}: position[] is not the inverse of order[]"
        )
    actual = tour.recompute_length()
    if abs(actual - tour.length) > atol:
        raise SanitizeError(
            f"length accounting drifted{where}: incremental length "
            f"{tour.length} vs recomputed {actual} "
            f"(delta {tour.length - actual:+d})"
        )


def check_candidate_rows(instance, rows, context: str = "") -> None:
    """Assert every candidate row satisfies the sorted-row invariant.

    Rows must contain distinct cities, never the city itself, ordered by
    non-decreasing instance distance — the precondition for the
    operators' early-break scans (``d(u, v) >= gain -> stop``).  One
    exception: a row may repeat its last distinct entry as trailing
    padding (variable-degree providers like the union graph pad short
    rows with their farthest neighbour to reach rectangular shape).
    """
    where = f" in {context}" if context else ""
    arr = np.asarray(rows)
    if arr.ndim != 2:
        raise SanitizeError(
            f"candidate rows{where}: expected a 2-D array, got {arr.shape}"
        )
    for i in range(arr.shape[0]):
        row = arr[i]
        if np.any(row == i):
            raise SanitizeError(
                f"candidate row {i}{where} contains the city itself"
            )
        j = len(row)
        while j > 1 and row[j - 1] == row[j - 2]:
            j -= 1  # strip the trailing-padding repeats
        core = row[:j]
        if len(np.unique(core)) != len(core):
            raise SanitizeError(
                f"candidate row {i}{where} contains duplicate cities"
            )
        d = np.asarray(instance.dist_many(i, row))
        if np.any(np.diff(d) < 0):
            k = int(np.argmax(np.diff(d) < 0))
            raise SanitizeError(
                f"candidate row {i}{where} violates the distance-sorted "
                f"invariant at offset {k}: d(i, row[{k}])={int(d[k])} > "
                f"d(i, row[{k + 1}])={int(d[k + 1])}"
            )


def check_message_conservation(network, context: str = "") -> None:
    """Assert the simulated network lost no messages.

    Every enqueued copy must be accounted for:
    ``sent == delivered + dropped + in-flight``.  The simulator never
    drops, so ``dropped`` stays 0 there; the counter exists so future
    lossy latency models keep the identity checkable.
    """
    where = f" in {context}" if context else ""
    stats = network.stats
    in_flight = sum(network.pending(node_id) for node_id in network.topology)
    expected = stats.delivered + stats.dropped + in_flight
    if stats.messages != expected:
        raise SanitizeError(
            f"message conservation violated{where}: sent={stats.messages} "
            f"!= delivered={stats.delivered} + dropped={stats.dropped} "
            f"+ in_flight={in_flight}"
        )
