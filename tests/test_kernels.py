"""Vectorized kernel tier: bit-identical parity with the row tier.

The engine's hard contract (docs/ALGORITHMS.md, "Scan-kernel tiers") is
that ``kernel="vector"`` selects the *same move sequence* as the row
reference — identical tours, identical OpStats counters, identical
WorkMeter charges — under every provider, threshold configuration, and
budget.  These tests pin the hybrid dispatch constants to 0 so the
NumPy batch paths run on every scan (the shipped thresholds route most
scans to the reference loop, which would make parity vacuous), and also
run once at the shipped defaults.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import solve
from repro.localsearch import LKConfig, kernels
from repro.localsearch.engine import (
    DistView,
    KERNELS,
    OpStats,
    resolve_kernel,
    run_pipeline,
)
from repro.localsearch.lin_kernighan import lin_kernighan
from repro.localsearch.or_opt import or_opt
from repro.localsearch.two_opt import two_opt
from repro.tsp import generators, get_candidate_set
from repro.tsp.candidates import ExplicitCandidates
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import random_tour
from repro.utils.rng import ensure_rng
from repro.utils.sanitize import set_sanitize
from repro.utils.work import WorkMeter


@pytest.fixture
def force_vector_paths(monkeypatch):
    """Pin all hybrid dispatch thresholds to 0: every scan vectorizes."""
    monkeypatch.setattr(kernels, "SMALL_WINDOW", 0)
    monkeypatch.setattr(kernels, "PREFIX", 0)
    monkeypatch.setattr(kernels, "OR_MIN_WIDTH", 0)
    monkeypatch.setattr(kernels, "LK_MIN_WINDOW", 0)


def _run_op(op, inst, provider, seed, budget=None, prefer_rows=True, **kw):
    """Run ``op`` under both kernels from the same start tour; return
    {kernel: (order, length, OpStats, meter.ops)} snapshots."""
    start = random_tour(inst, ensure_rng(seed))
    view = DistView(inst, prefer_rows=prefer_rows)
    out = {}
    for kern in ("row", "vector"):
        tour = start.copy()
        stats = OpStats()
        meter = WorkMeter(budget_ops=budget) if budget else WorkMeter()
        op(tour, candidates=provider, meter=meter, stats=stats, view=view,
           kernel=kern, **kw)
        out[kern] = (tour.order.tolist(), tour.length, stats, meter.ops)
    return out


class TestMoveParity:
    @pytest.mark.parametrize("provider_name,k", [
        ("knn", 6), ("knn", 16), ("quadrant", 8), ("alpha", 5),
    ])
    def test_two_opt_and_or_opt_across_providers(
        self, force_vector_paths, provider_name, k
    ):
        inst = generators.uniform(140, rng=98 + k).materialize()
        provider = get_candidate_set(provider_name, k=k)
        for op, kw in ((two_opt, {}), (or_opt, {"max_seg": 3})):
            for seed in (1, 5):
                out = _run_op(op, inst, provider, seed, **kw)
                assert out["row"] == out["vector"], (
                    f"{op.__name__} diverged: {provider_name} k={k} "
                    f"seed={seed}"
                )

    def test_uneven_row_widths(self, force_vector_paths, rng):
        # Explicit provider re-sorted by distance, then quadrant rows
        # (naturally uneven widths) — the padded-matrix mask path.
        inst = generators.uniform(90, rng=17).materialize()
        arr = np.stack([
            rng.choice(
                [c for c in range(inst.n) if c != i], size=7, replace=False
            )
            for i in range(inst.n)
        ])
        provider = ExplicitCandidates(arr, assume_sorted=False)
        out = _run_op(two_opt, inst, provider, seed=3)
        assert out["row"] == out["vector"]
        quad = get_candidate_set("quadrant", k=10)
        widths = {len(r) for r in quad.row_lists(inst)}
        out = _run_op(or_opt, inst, quad, seed=3, max_seg=3)
        assert out["row"] == out["vector"]
        assert len(widths) >= 1  # uneven or not, parity held above

    @pytest.mark.parametrize("budget", [150, 1200, 9000])
    def test_meter_interruption_parity(self, force_vector_paths, budget):
        # An exhausted meter must stop both tiers at the same move with
        # the same total charge.
        inst = generators.uniform(160, rng=31).materialize()
        provider = get_candidate_set("knn", k=10)
        for op in (two_opt, or_opt):
            out = _run_op(op, inst, provider, seed=9, budget=budget)
            assert out["row"] == out["vector"]

    def test_matrix_free_gather_fallback(self, force_vector_paths):
        # prefer_rows=False leaves DistView.matrix None: the kernels
        # must fall back to gather()/gather_pairs() coordinate math.
        inst = generators.uniform(80, rng=23)
        provider = get_candidate_set("knn", k=8)
        for op in (two_opt, or_opt):
            out = _run_op(op, inst, provider, seed=2, prefer_rows=False)
            assert out["row"] == out["vector"]

    def test_shipped_thresholds_also_bit_identical(self):
        # No monkeypatching: the production hybrid dispatch.
        assert kernels.SMALL_WINDOW > 0  # make vacuity visible
        inst = generators.uniform(200, rng=77).materialize()
        provider = get_candidate_set("knn", k=12)
        for op in (two_opt, or_opt):
            out = _run_op(op, inst, provider, seed=4)
            assert out["row"] == out["vector"]

    def test_lin_kernighan_sweep_parity(self, force_vector_paths):
        inst = generators.uniform(120, rng=55).materialize()
        for pname, budget in itertools.product(
            ("knn", "quadrant"), (None, 4000)
        ):
            provider = get_candidate_set(pname, k=8)
            outs = {}
            for kern in ("row", "vector"):
                tour = random_tour(inst, ensure_rng(6))
                meter = (
                    WorkMeter(budget_ops=budget) if budget else WorkMeter()
                )
                stats = OpStats()
                lin_kernighan(tour, candidates=provider, meter=meter,
                              stats=stats, kernel=kern)
                outs[kern] = (tour.order.tolist(), tour.length, stats,
                              meter.ops)
            assert outs["row"] == outs["vector"], (pname, budget)


class TestInt64GainArithmetic:
    def test_gains_beyond_int32_stay_exact(self, force_vector_paths, rng):
        # Weights near INT32_MAX: a two-edge gain expression overflows
        # int32 arithmetic; the kernels must compute it in int64 and
        # still match the (pure-Python int) reference bit for bit.
        n = 40
        w = rng.integers(2**30, 2**31 + 2**29, size=(n, n), dtype=np.int64)
        m = np.triu(w, 1)
        m = m + m.T
        inst = TSPInstance(matrix=m, edge_weight_type="EXPLICIT",
                           name="huge40")
        assert int(m.max()) > 2**31 - 1
        provider = get_candidate_set("knn", k=8)
        for op in (two_opt, or_opt):
            out = _run_op(op, inst, provider, seed=13)
            assert out["row"] == out["vector"]
        cd, _lists, _valid = kernels._candidate_distances(
            inst, provider, DistView(inst)
        )
        assert cd.dtype == np.int64

    def test_candidate_distances_are_int64_on_geometric(self):
        inst = generators.uniform(50, rng=3).materialize()
        provider = get_candidate_set("knn", k=6)
        cd, _lists, _valid = kernels._candidate_distances(
            inst, provider, DistView(inst)
        )
        assert cd.dtype == np.int64


class TestSanitizedVectorRuns:
    def test_vector_kernels_pass_runtime_sanitizer(self, force_vector_paths):
        set_sanitize(True)
        try:
            inst = generators.uniform(100, rng=44).materialize()
            provider = get_candidate_set("knn", k=8)
            for op in (two_opt, or_opt):
                out = _run_op(op, inst, provider, seed=8)
                assert out["row"] == out["vector"]
        finally:
            set_sanitize(None)


class TestKernelSelection:
    def test_resolve_kernel_defaults_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel(None) == "row"
        assert resolve_kernel("vector") == "vector"
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        assert resolve_kernel(None) == "vector"
        assert resolve_kernel("scalar") == "scalar"  # explicit beats env
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("simd")

    def test_lkconfig_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            LKConfig(kernel="turbo")
        assert LKConfig(kernel="vector").kernel in KERNELS

    def test_run_pipeline_threads_kernel_and_shares_view(self):
        from repro.obs import Tracer, use_tracer

        inst = generators.uniform(70, rng=21).materialize()
        tours = {}
        for kern in ("row", "vector"):
            tracer = Tracer(enabled=True)
            tour = random_tour(inst, ensure_rng(5))
            with use_tracer(tracer):
                run_pipeline(tour, ("two_opt", "or_opt"), candidates="knn",
                             kernel=kern)
            tours[kern] = (tour.order.tolist(), tour.length)
            for op_name in ("two_opt", "or_opt"):
                assert tracer.metrics.counter_value(
                    "engine.kernel_calls", op=op_name, kernel=kern
                ) == 1
        assert tours["row"] == tours["vector"]

    def test_driver_solve_kernel_override(self):
        inst = generators.uniform(60, rng=9).materialize()
        results = [
            solve(inst, budget_vsec_per_node=0.05, n_nodes=2,
                  kernel=kern, rng=1)
            for kern in ("row", "vector")
        ]
        assert results[0].best_length == results[1].best_length
        assert (results[0].best_tour.order.tolist()
                == results[1].best_tour.order.tolist())


class TestCandidateMatrixForm:
    def test_matrix_agrees_with_row_lists_and_pads(self):
        inst = generators.uniform(60, rng=12).materialize()
        provider = get_candidate_set("quadrant", k=10)
        rows = provider.row_lists(inst)
        cmat, mask = provider.matrix(inst)
        assert cmat.shape == mask.shape
        assert cmat.shape[1] == max(len(r) for r in rows)
        for i, row in enumerate(rows):
            assert cmat[i, : len(row)].tolist() == row
            assert mask[i, : len(row)].all()
            assert not mask[i, len(row):].any()
        assert not cmat.flags.writeable
        assert not mask.flags.writeable

    def test_distview_gather_matches_scalar(self):
        inst = generators.uniform(40, rng=8)
        dense = DistView(inst)
        sparse = DistView(inst, prefer_rows=False)  # matrix is None
        js = np.array([1, 5, 9, 20], dtype=np.intp)
        for view in (dense, sparse):
            got = view.gather(3, js)
            assert got.dtype == np.int64
            assert got.tolist() == [inst.dist(3, int(j)) for j in js]
            pairs = view.gather_pairs(np.array([2, 7]), np.array([11, 0]))
            assert pairs.tolist() == [inst.dist(2, 11), inst.dist(7, 0)]
