"""All-solver tournament with significance testing.

    python scripts/tournament.py [INSTANCE] [--budget V] [--runs K]

Runs every solver family in the library — sequential CLK, DistCLK (1 and
8 nodes), LKH-style, multilevel, tour merging — K times each on one
instance with a common work budget, and reports mean/best quality plus
pairwise Mann-Whitney significance against the paper's algorithm
(DistCLK-8).  A compact way to see the whole repository's cast on stage
at once; the per-table benches remain the paper-faithful protocol.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import format_table
from repro.analysis.statistics import compare_runs
from repro.baselines import lkh_style, multilevel_clk, tour_merging
from repro.cli import resolve_instance
from repro.core import solve
from repro.localsearch import chained_lk
from repro.utils.rng import ensure_rng, spawn_rngs


def run_tournament(instance, budget: float, runs: int, rng=0) -> dict:
    """Return {solver name: [final lengths]} for the common budget."""
    rngs = spawn_rngs(ensure_rng(rng), runs)

    def distclk(nodes):
        def go(r):
            return solve(
                instance,
                budget_vsec_per_node=budget / nodes,
                n_nodes=nodes,
                topology="hypercube" if nodes > 1 else {0: ()},
                c_v=8, c_r=10**9, free_init=True,
                rng=r,
            ).best_length
        return go

    solvers = {
        "ABCC-CLK": lambda r: chained_lk(
            instance, budget_vsec=budget, free_init=True, rng=r).length,
        "DistCLK-8": distclk(8),
        "DistCLK-1": distclk(1),
        "LKH-style": lambda r: lkh_style(
            instance, budget_vsec=budget, rng=r).length,
        "MLC-LK": lambda r: multilevel_clk(
            instance, budget_vsec=budget, rng=r).length,
        "TM-CLK": lambda r: tour_merging(
            instance, n_tours=6, clk_kicks=instance.n // 2,
            budget_vsec=budget, rng=r).length,
    }
    return {
        name: [fn(r) for r in rngs] for name, fn in solvers.items()
    }


def report(results: dict) -> str:
    champion = "DistCLK-8"
    rows = []
    for name, lengths in sorted(results.items(),
                                key=lambda kv: np.mean(kv[1])):
        row = [name, f"{np.mean(lengths):.0f}", min(lengths)]
        if name == champion:
            row.append("-")
        else:
            cmp = compare_runs(results[champion], lengths)
            tag = "better" if cmp.effect < 0 else "worse"
            row.append(
                f"{champion} {tag} (p={cmp.p_value:.3g}"
                f"{', sig' if cmp.significant else ''})"
            )
        rows.append(row)
    return format_table(
        ["solver", "mean length", "best", "vs DistCLK-8"], rows,
        title="tournament (lower is better)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("instance", nargs="?", default="fl300")
    parser.add_argument("--budget", type=float, default=16.0,
                        help="total vsec per solver")
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    instance = resolve_instance(args.instance)
    print(f"instance {instance.name} (n={instance.n}), "
          f"budget {args.budget} vsec, {args.runs} runs per solver\n")
    results = run_tournament(instance, args.budget, args.runs, args.seed)
    print(report(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
