"""Tour-quality metrics.

The paper reports quality as percentage above the optimum or, where no
optimum is known, above the Held-Karp lower bound (Tables 4 and 5); and
success as the number of runs out of 10 that reached the optimum
(Table 3).  These helpers centralize those computations.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

__all__ = [
    "excess_percent",
    "mean_excess_percent",
    "success_count",
    "reference_length",
]


def excess_percent(length: float, reference: float) -> float:
    """Percentage above a reference length (0.0 == at the reference)."""
    if reference <= 0:
        raise ValueError("reference length must be positive")
    return (length / reference - 1.0) * 100.0


def mean_excess_percent(lengths: Iterable[float], reference: float) -> float:
    """Average excess over a set of run results (the paper's table cells)."""
    arr = np.asarray(list(lengths), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no lengths given")
    return float(np.mean(arr / reference - 1.0) * 100.0)


def success_count(lengths: Iterable[float], target: float) -> int:
    """Number of runs that reached the target (paper Table 3 cells)."""
    return int(sum(1 for x in lengths if x <= target))


def reference_length(name: str) -> tuple[Optional[float], str]:
    """Best reference for a testbed instance: ``(value, kind)``.

    Prefers the best-known length ('optimum' role); falls back to the
    cached Held-Karp bound ('hk'), mirroring the paper's convention.
    Returns ``(None, 'none')`` when neither is cached.
    """
    from ..tsp import registry

    bk = registry.best_known(name)
    if bk is not None:
        return float(bk), "optimum"
    hk = registry.hk_bound(name)
    if hk is not None:
        return hk, "hk"
    return None, "none"
