"""Tests for ASCII instance/tour plotting."""

import pytest

from repro.analysis import plot_instance, plot_tour
from repro.localsearch import chained_lk
from repro.tsp.tour import Tour


class TestPlotInstance:
    def test_dimensions(self, small_instance):
        out = plot_instance(small_instance, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 11  # header + grid
        assert all(len(line) <= 40 for line in lines[1:])

    def test_city_glyphs_present(self, small_instance):
        out = plot_instance(small_instance)
        assert out.count("o") >= 1
        assert small_instance.name in out

    def test_requires_coords(self, explicit_instance):
        with pytest.raises(ValueError, match="coordinates"):
            plot_instance(explicit_instance)


class TestPlotTour:
    def test_renders_edges_and_cities(self, small_instance):
        res = chained_lk(small_instance, max_kicks=3, rng=0)
        out = plot_tour(res.tour, width=50, height=12)
        assert "." in out  # edges drawn
        assert "o" in out
        assert str(res.length) in out

    def test_degenerate_collinear(self):
        import numpy as np
        from repro.tsp.instance import TSPInstance

        coords = np.stack([np.arange(10) * 10.0, np.zeros(10)], axis=1)
        inst = TSPInstance(coords=coords)
        t = Tour.identity(inst)
        out = plot_tour(t, width=30, height=5)
        assert "o" in out
