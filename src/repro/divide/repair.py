"""Boundary repair: stitch region tours, then fix the seams locally.

Region solvers never see an edge that crosses a region border, so the
concatenation of their tours is provably suboptimal exactly at the
boundaries.  Repair happens in two stages:

1. **Stitching** splices the region cycles into one global tour.  The
   greedy splice walks regions in partition (DFS) order — spatially
   adjacent — and for each region rotates its cycle to open at the city
   nearest the current path end, choosing the orientation that breaks
   the region's longer incident edge.  The result is compared against
   plain concatenation and the better one wins, which gives the merge
   an unconditional guarantee: **never worse than naive concatenation**
   (the property tests pin this).
2. **Bounded local search** runs 2-opt/Or-opt restricted to the union
   graph of the stitched tour's edges and the partition's cross-region
   boundary edges (via :func:`~repro.baselines.tour_merging.
   union_candidate_lists` — the tour-merging machinery).  Candidate
   rows stay distance-sorted, so early-break pruning holds; the pass is
   metered, so repair cost is an explicit, budgeted vsec line item.

This module is in RPL003 scope: all distance reads go through
:class:`~repro.localsearch.engine.DistView`.
"""

from __future__ import annotations

import numpy as np

from ..baselines.tour_merging import union_candidate_lists
from ..localsearch.engine import DistView, OpStats, run_pipeline
from ..tsp.candidates import ExplicitCandidates
from ..tsp.tour import Tour
from ..utils.work import WorkMeter
from .partition import Partition

__all__ = [
    "naive_concatenation",
    "stitch_tours",
    "boundary_candidate_lists",
    "boundary_repair",
    "DEFAULT_REPAIR_OPS",
]

DEFAULT_REPAIR_OPS = ("two_opt", "or_opt")


def naive_concatenation(partition: Partition, results: list) -> Tour:
    """Region tours laid end to end in region order — the merge baseline."""
    order = np.concatenate(
        [np.asarray(r.order, dtype=np.intp) for r in results]
    )
    return Tour(partition.instance, order)


def stitch_tours(partition: Partition, results: list,
                 view: DistView | None = None) -> Tour:
    """Greedy orientation-aware splice of the region cycles.

    Walks regions in partition order; each region's cycle is opened at
    the city nearest the current path end (ties break toward the lower
    city id) and traversed in the direction that breaks the longer of
    that city's two cycle edges.  Deterministic; returns the better of
    the splice and :func:`naive_concatenation`, so stitching can only
    help.
    """
    instance = partition.instance
    if view is None:
        view = DistView(instance)
    pieces: list[np.ndarray] = []
    for result in results:
        cycle = np.asarray(result.order, dtype=np.intp)
        if not pieces:
            pieces.append(cycle)
            continue
        tail = int(pieces[-1][-1])
        d = np.asarray(view.gather(tail, cycle.astype(np.int64)))
        p = int(np.lexsort((cycle, d))[0])
        m = cycle.shape[0]
        prev_city = int(cycle[(p - 1) % m])
        next_city = int(cycle[(p + 1) % m])
        rot = np.roll(cycle, -p)
        # Keep the shorter of the entry city's two cycle edges inside
        # the path: break the longer one by picking the direction.
        if view.dist(int(cycle[p]), next_city) > view.dist(
            prev_city, int(cycle[p])
        ):
            rot = np.roll(rot[::-1], 1)  # entry city stays first
        pieces.append(rot)
    stitched = Tour(instance, np.concatenate(pieces))
    naive = naive_concatenation(partition, results)
    return stitched if stitched.length <= naive.length else naive


def boundary_candidate_lists(tour: Tour, partition: Partition) -> np.ndarray:
    """Distance-sorted padded rows: tour edges ∪ boundary edges."""
    return union_candidate_lists(
        tour.instance, [tour], extra_edges=partition.boundary_edges
    )


def boundary_repair(
    tour: Tour,
    partition: Partition,
    *,
    meter: WorkMeter | None = None,
    budget_vsec: float | None = None,
    ops=DEFAULT_REPAIR_OPS,
    kernel: str | None = None,
    stats: OpStats | None = None,
) -> int:
    """Bounded cross-boundary local search on ``tour``, in place.

    Candidate edges are exactly the stitched tour's own edges plus the
    partition's boundary graph — the moves the region solvers could not
    make.  Returns the total gain; the meter (or ``budget_vsec``) bounds
    the work.
    """
    if meter is None:
        meter = (
            WorkMeter.with_vsec_budget(budget_vsec)
            if budget_vsec is not None
            else WorkMeter()
        )
    rows = boundary_candidate_lists(tour, partition)
    candidates = ExplicitCandidates(rows, assume_sorted=True)
    return run_pipeline(
        tour, ops, candidates=candidates, meter=meter,
        stats=stats, kernel=kernel,
    )
