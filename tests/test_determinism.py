"""Cross-component determinism: identical seeds give identical runs.

The whole experimental methodology rests on this — virtual time plus
seeded RNG streams must make every solver bit-reproducible, and
different components must not perturb each other's streams.
"""

import numpy as np

from repro.baselines import lkh_style, multilevel_clk, tour_merging
from repro.core import solve
from repro.localsearch import chained_lk
from repro.tsp import generators


def _fresh_instance(seed=77):
    # New object each time: shared caches must not affect outcomes.
    return generators.clustered(50, rng=seed)


class TestSeedDeterminism:
    def test_clk_identical_across_fresh_instances(self):
        a = chained_lk(_fresh_instance(), max_kicks=12, rng=5)
        b = chained_lk(_fresh_instance(), max_kicks=12, rng=5)
        assert a.length == b.length
        assert a.trace == b.trace
        assert np.array_equal(a.tour.order, b.tour.order)

    def test_solve_identical_across_fresh_instances(self):
        a = solve(_fresh_instance(), budget_vsec_per_node=0.4, n_nodes=4,
                  rng=6)
        b = solve(_fresh_instance(), budget_vsec_per_node=0.4, n_nodes=4,
                  rng=6)
        assert a.best_length == b.best_length
        assert a.global_trace == b.global_trace
        assert a.reasons == b.reasons

    def test_baselines_deterministic(self):
        inst = _fresh_instance()
        assert (lkh_style(inst, budget_vsec=0.8, rng=1).length
                == lkh_style(inst, budget_vsec=0.8, rng=1).length)
        assert (multilevel_clk(inst, rng=2).length
                == multilevel_clk(inst, rng=2).length)
        assert (tour_merging(inst, n_tours=3, clk_kicks=5, rng=3).length
                == tour_merging(inst, n_tours=3, clk_kicks=5, rng=3).length)

    def test_interleaving_does_not_perturb_streams(self):
        """Running another seeded solver in between must not change a
        run's outcome (no hidden global RNG)."""
        inst = _fresh_instance()
        first = chained_lk(inst, max_kicks=8, rng=9).length
        solve(inst, budget_vsec_per_node=0.2, n_nodes=2, topology="ring",
              rng=123)  # interloper
        second = chained_lk(inst, max_kicks=8, rng=9).length
        assert first == second

    def test_numpy_global_seed_irrelevant(self):
        inst = _fresh_instance()
        np.random.seed(1)
        a = chained_lk(inst, max_kicks=6, rng=4).length
        np.random.seed(2)
        b = chained_lk(inst, max_kicks=6, rng=4).length
        assert a == b
