"""Minimum 1-trees with node penalties.

A *1-tree* (Held & Karp) is a spanning tree on cities ``1..n-1`` plus the
two cheapest edges incident to the special city ``0``.  Its weight under
penalized distances ``d(i,j) + pi[i] + pi[j]`` minus ``2 * sum(pi)`` lower
bounds the optimal tour length for any penalty vector ``pi``; maximizing
over ``pi`` gives the Held-Karp bound (see :mod:`repro.bounds.held_karp`).

The same machinery computes Helsgaun's *alpha-nearness* values used by the
LKH-style baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

__all__ = ["OneTree", "minimum_one_tree"]


@dataclass(frozen=True)
class OneTree:
    """A minimum 1-tree under penalized distances.

    Attributes
    ----------
    edges:
        ``(n, 2)`` int array of the 1-tree's edges (tree edges plus the two
        special edges at city 0).
    degrees:
        ``(n,)`` degree of each city in the 1-tree.  A 1-tree with all
        degrees equal to 2 is an optimal tour.
    weight:
        Total penalized weight of the edges.
    bound:
        Held-Karp style lower bound: ``weight - 2 * pi.sum()``.
    """

    edges: np.ndarray
    degrees: np.ndarray
    weight: float
    bound: float


def _penalized_matrix(instance, pi: np.ndarray) -> np.ndarray:
    d = instance.distance_matrix().astype(np.float64)
    return d + pi[:, None] + pi[None, :]


def minimum_one_tree(instance, pi: np.ndarray | None = None,
                     special: int = 0) -> OneTree:
    """Minimum 1-tree of the instance under node penalties ``pi``.

    Uses a dense MST (O(n^2) memory), appropriate for the testbed sizes;
    the special city's two cheapest incident edges complete the 1-tree.
    """
    n = instance.n
    if pi is None:
        pi = np.zeros(n)
    pi = np.asarray(pi, dtype=np.float64)
    if pi.shape != (n,):
        raise ValueError(f"pi must have shape ({n},)")
    w = _penalized_matrix(instance, pi)

    rest = np.delete(np.arange(n), special)
    sub = w[np.ix_(rest, rest)]
    # scipy MST treats 0 as "no edge"; shift weights to be strictly positive.
    shift = sub.min() - 1.0
    mst = minimum_spanning_tree(sub - shift).tocoo()
    tree_edges = np.stack([rest[mst.row], rest[mst.col]], axis=1)
    tree_weight = float(mst.data.sum() + shift * len(mst.data))

    # Two cheapest edges incident to the special city.
    ws = w[special].copy()
    ws[special] = np.inf
    nearest = np.argpartition(ws, 2)[:2]
    nearest = nearest[np.argsort(ws[nearest], kind="stable")]
    e1, e2 = int(nearest[0]), int(nearest[1])
    special_weight = float(ws[e1] + ws[e2])

    edges = np.vstack([tree_edges, [[special, e1], [special, e2]]]).astype(np.intp)
    degrees = np.bincount(edges.ravel(), minlength=n)
    weight = tree_weight + special_weight
    bound = weight - 2.0 * float(pi.sum())
    return OneTree(edges=edges, degrees=degrees, weight=weight, bound=bound)
