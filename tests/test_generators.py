"""Tests for the synthetic instance generators."""

import numpy as np
import pytest

from repro.tsp import generators as G


ALL_COORD_GENERATORS = [
    G.uniform, G.clustered, G.drilling, G.grid_pcb, G.country, G.pla_rows
]


class TestCommonProperties:
    @pytest.mark.parametrize("gen", ALL_COORD_GENERATORS)
    def test_size_and_validity(self, gen):
        inst = gen(80, rng=5)
        assert inst.n == 80
        assert inst.coords.shape == (80, 2)
        assert np.all(np.isfinite(inst.coords))

    @pytest.mark.parametrize("gen", ALL_COORD_GENERATORS)
    def test_deterministic_per_seed(self, gen):
        a = gen(50, rng=9)
        b = gen(50, rng=9)
        np.testing.assert_array_equal(a.coords, b.coords)

    @pytest.mark.parametrize("gen", ALL_COORD_GENERATORS)
    def test_different_seeds_differ(self, gen):
        a = gen(50, rng=1)
        b = gen(50, rng=2)
        assert not np.array_equal(a.coords, b.coords)

    @pytest.mark.parametrize("gen", ALL_COORD_GENERATORS)
    def test_no_duplicate_points(self, gen):
        inst = gen(150, rng=3)
        rounded = {tuple(np.round(c, 6)) for c in inst.coords}
        assert len(rounded) == inst.n


class TestStructure:
    def test_clustered_is_clumpier_than_uniform(self):
        # Mean nearest-neighbour distance is much smaller for clusters.
        from scipy.spatial import cKDTree

        u = G.uniform(300, rng=0)
        c = G.clustered(300, rng=0, n_clusters=8, spread=0.02)
        def mean_nn(inst):
            t = cKDTree(inst.coords)
            d, _ = t.query(inst.coords, k=2)
            return d[:, 1].mean()
        assert mean_nn(c) < 0.5 * mean_nn(u)

    def test_drilling_has_equal_length_edges(self):
        # Regular blocks create repeated nearest-neighbour distances.
        inst = G.drilling(200, rng=1)
        from scipy.spatial import cKDTree

        t = cKDTree(inst.coords)
        d, _ = t.query(inst.coords, k=2)
        nn = np.round(d[:, 1], 3)
        # The most common nearest-neighbour distance covers many cities.
        _, counts = np.unique(nn, return_counts=True)
        assert counts.max() >= 0.3 * inst.n

    def test_grid_pcb_snapped_to_pitch(self):
        inst = G.grid_pcb(150, rng=2, pitch=50.0)
        # Most coordinates lie on the routing grid (dedupe may jitter a few).
        on_grid = np.isclose(inst.coords % 50.0, 0.0).all(axis=1)
        assert on_grid.mean() > 0.9

    def test_pla_rows_uses_ceil_2d(self):
        assert G.pla_rows(60, rng=0).edge_weight_type == "CEIL_2D"

    def test_country_nonuniform_density(self):
        # Cell-occupancy dispersion on a fixed grid is far higher for the
        # country generator than for uniform points.
        def dispersion(inst, cells=6):
            lo = inst.coords.min(axis=0)
            span = inst.coords.max(axis=0) - lo + 1e-9
            ij = np.floor((inst.coords - lo) / span * cells).clip(0, cells - 1)
            flat = (ij[:, 0] * cells + ij[:, 1]).astype(int)
            counts = np.bincount(flat, minlength=cells * cells)
            return counts.var() / max(counts.mean(), 1e-9)

        c = dispersion(G.country(400, rng=4))
        u = dispersion(G.uniform(400, rng=4))
        assert c > 2.0 * u


class TestRandomMatrix:
    def test_symmetric_valid(self):
        inst = G.random_matrix(20, rng=7)
        assert inst.edge_weight_type == "EXPLICIT"
        m = inst.matrix
        assert np.array_equal(m, m.T)
        assert np.all(np.diag(m) == 0)
        off_diag = m[~np.eye(20, dtype=bool)]
        assert off_diag.min() >= 1

    def test_max_weight_respected(self):
        inst = G.random_matrix(15, rng=1, max_weight=10)
        assert inst.matrix.max() <= 10
