"""Array-based tour representation.

A :class:`Tour` stores a Hamiltonian cycle as

* ``order`` — ``order[k]`` is the k-th city visited, and
* ``position`` — inverse permutation, ``position[order[k]] == k``.

This is the classic array representation used by 2-opt/LK codes: ``next`` /
``prev`` are O(1), "is b between a and c" is O(1), and a 2-opt move reverses
the shorter of the two segments (O(n) worst case, fast in practice).  The
tour maintains its length incrementally; :meth:`recompute_length` is the
independent check used by tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

__all__ = ["Tour", "random_tour"]


class Tour:
    """A mutable Hamiltonian cycle over the cities of a TSP instance."""

    __slots__ = ("instance", "order", "position", "length", "n", "_iota")

    def __init__(self, instance, order: Iterable[int], length: Optional[int] = None):
        self.instance = instance
        self.n = instance.n
        arr = np.array(list(order) if not isinstance(order, np.ndarray) else order,
                       dtype=np.intp)
        if arr.shape != (self.n,):
            raise ValueError(f"tour must have {self.n} cities, got {arr.shape}")
        self.order = arr
        self.position = np.empty(self.n, dtype=np.intp)
        # Read-only 0..n-1 ramp; sliced instead of re-allocated in the
        # position updates of every reversal (hot path).
        self._iota = np.arange(self.n, dtype=np.intp)
        self._iota.setflags(write=False)
        self.position[arr] = self._iota
        if np.any(np.bincount(arr, minlength=self.n) != 1):
            raise ValueError("order is not a permutation of 0..n-1")
        self.length = int(length) if length is not None else self.recompute_length()

    # -- construction helpers -------------------------------------------------

    def copy(self) -> "Tour":
        """Deep copy (shares only the immutable instance)."""
        t = Tour.__new__(Tour)
        t.instance = self.instance
        t.n = self.n
        t.order = self.order.copy()
        t.position = self.position.copy()
        t.length = self.length
        t._iota = self._iota  # immutable, shared
        return t

    @classmethod
    def identity(cls, instance) -> "Tour":
        return cls(instance, np.arange(instance.n, dtype=np.intp))

    # -- queries ---------------------------------------------------------------

    def next(self, city: int) -> int:
        """Successor of ``city`` along the tour."""
        p = self.position[city] + 1
        if p == self.n:
            p = 0
        return int(self.order[p])

    def prev(self, city: int) -> int:
        """Predecessor of ``city`` along the tour."""
        return int(self.order[self.position[city] - 1])

    def between(self, a: int, b: int, c: int) -> bool:
        """True iff b lies strictly within the oriented arc a -> c."""
        pa, pb, pc = self.position[a], self.position[b], self.position[c]
        if pa < pc:
            return pa < pb < pc
        return pb > pa or pb < pc

    def edges(self) -> np.ndarray:
        """``(n, 2)`` array of tour edges, each row (city, successor)."""
        return np.stack([self.order, np.roll(self.order, -1)], axis=1)

    def edge_set(self) -> set:
        """Set of frozenset-free normalized (min, max) edge tuples."""
        nxt = np.roll(self.order, -1)
        lo = np.minimum(self.order, nxt)
        hi = np.maximum(self.order, nxt)
        return set(zip(lo.tolist(), hi.tolist()))

    def recompute_length(self) -> int:
        """O(n) length recomputation from scratch (ground truth)."""
        return self.instance.tour_length(self.order)

    def is_valid(self) -> bool:
        """Permutation and position-inverse invariants hold."""
        if np.any(np.bincount(self.order, minlength=self.n) != 1):
            return False
        return bool(np.all(self.position[self.order] == np.arange(self.n)))

    # -- mutation ----------------------------------------------------------------

    def reverse_segment(self, i: int, j: int) -> int:
        """Reverse tour positions ``i..j`` inclusive (indices mod n).

        Reverses whichever of the two complementary segments is shorter, so
        the amortized cost of 2-opt style moves stays low.  Does *not*
        touch ``length``; callers apply the delta themselves.  Returns the
        number of element swaps performed (work-accounting hook).
        """
        n = self.n
        i %= n
        j %= n
        inner = (j - i) % n + 1
        if inner > n - inner:
            # Reversing positions j+1..i-1 yields the same cyclic tour.
            i, j = (j + 1) % n, (i - 1) % n
            inner = n - inner
        order, position = self.order, self.position
        swaps = inner // 2
        if not swaps:
            return 0
        if i <= j:
            # Contiguous segment: vectorized reversal.
            order[i : j + 1] = order[i : j + 1][::-1]
            position[order[i : j + 1]] = self._iota[i : j + 1]
            return swaps
        # Wrapped segment: same reversal through a modular index vector
        # (one fancy-indexed assignment instead of a per-element loop).
        idx = np.arange(i, i + inner) % n
        order[idx] = order[idx][::-1]
        position[order[idx]] = idx
        return swaps

    def two_opt_move(self, a: int, b: int, c: int, d: int, delta: int) -> None:
        """Apply the 2-opt move removing edges (a,b), (c,d); adding (a,c), (b,d).

        Requires ``b == next(a)`` and ``d == next(c)``.  ``delta`` is the
        (signed) change in tour length computed by the caller.
        """
        self.reverse_segment(self.position[b], self.position[c])
        self.length += delta

    def double_bridge(self, cuts: Iterable[int]) -> None:
        """Apply a double-bridge move at the three given cut positions.

        ``cuts`` are three distinct positions ``0 < p1 < p2 < p3 < n``; the
        tour splits into segments A=[0,p1), B=[p1,p2), C=[p2,p3), D=[p3,n)
        and is reassembled as **A D C B** — the Martin-Otto-Felten double
        bridge, which deletes all four boundary edges and adds four new
        ones without reversing any segment.  (The often-seen ``A C B D``
        reassembly keeps the D->A edge and is only a 3-exchange.)
        """
        p1, p2, p3 = sorted(int(c) for c in cuts)
        n = self.n
        if not (0 < p1 < p2 < p3 < n):
            raise ValueError(f"invalid double-bridge cuts {(p1, p2, p3)} for n={n}")
        order = self.order
        a, b, c, d = order[:p1], order[p1:p2], order[p2:p3], order[p3:]
        # Old boundary edges.
        inst = self.instance
        old = (
            inst.dist(order[p1 - 1], order[p1])
            + inst.dist(order[p2 - 1], order[p2])
            + inst.dist(order[p3 - 1], order[p3])
            + inst.dist(order[-1], order[0])
        )
        new_order = np.concatenate([a, d, c, b])
        new = (
            inst.dist(a[-1], d[0])
            + inst.dist(d[-1], c[0])
            + inst.dist(c[-1], b[0])
            + inst.dist(b[-1], a[0])
        )
        self.order = new_order
        self.position[new_order] = self._iota
        self.length += int(new - old)

    # -- misc ----------------------------------------------------------------------

    def canonical_order(self) -> np.ndarray:
        """Order rotated to start at city 0, in the direction where the
        smaller-indexed neighbour of 0 comes second.  Two tours describe the
        same cycle iff their canonical orders are equal."""
        start = int(self.position[0])
        rolled = np.roll(self.order, -start)
        if rolled[1] > rolled[-1]:
            rolled = np.roll(rolled[::-1], 1)
        return rolled

    def __eq__(self, other) -> bool:
        if not isinstance(other, Tour):
            return NotImplemented
        return np.array_equal(self.canonical_order(), other.canonical_order())

    def __hash__(self):  # tours are mutable; identity hash like list
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tour(n={self.n}, length={self.length})"


def random_tour(instance, rng: np.random.Generator) -> Tour:
    """Uniformly random tour."""
    return Tour(instance, rng.permutation(instance.n))
