"""CLI: ``python -m tools.reprolint [paths...]``.

Exit status 0 when clean, 1 when violations were found, 2 on usage
errors — the contract the CI static-analysis job and the pre-commit
hook rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import load_config
from .engine import lint_paths
from .rules import ALL_RULES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="repo-specific reproducibility/invariant linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--root", default=".",
        help="project root holding pyproject.toml (default: cwd)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    root = Path(args.root)
    try:
        config = load_config(root)
    except ValueError as exc:
        print(f"reprolint: bad configuration: {exc}", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    violations = lint_paths(paths, config=config, root=root)
    for v in violations:
        print(v.render())
    if violations:
        print(
            f"reprolint: {len(violations)} violation(s) "
            f"(suppress with '# reprolint: disable=<ID>'; "
            "rationale: docs/CHECKS.md)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head` closed the pipe
        sys.exit(0)
