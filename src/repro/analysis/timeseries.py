"""Anytime curves: tour length as a function of CPU time.

Every solver in the library emits a *trace* — a list of ``(vsec, length)``
pairs recorded at improvements.  A trace defines a right-continuous step
function; this module samples, averages and compares such step functions,
which is what the paper's Figures 2/3 and its time-to-quality statements
are made of.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "value_at",
    "sample",
    "average_traces",
    "time_to_target",
    "merge_min",
]


def value_at(trace: Sequence, t: float) -> Optional[float]:
    """Step-function value of a trace at time ``t``.

    ``None`` before the first recorded point (no tour existed yet).
    """
    best = None
    for vsec, length in trace:
        if vsec > t:
            break
        best = length
    return best


def sample(trace: Sequence, times: Iterable[float]) -> np.ndarray:
    """Sample a trace at the given times; NaN before the first point."""
    times = np.asarray(list(times), dtype=np.float64)
    out = np.full(times.shape, np.nan)
    for k, t in enumerate(times):
        v = value_at(trace, float(t))
        if v is not None:
            out[k] = v
    return out


def average_traces(traces: Sequence[Sequence], times: Iterable[float]) -> np.ndarray:
    """Average several runs' step functions at common sample times.

    Runs that have no tour yet at a sample time are excluded from that
    time's average (the paper's averages over 10 runs behave the same
    way); all-NaN columns stay NaN.
    """
    times = np.asarray(list(times), dtype=np.float64)
    rows = np.stack([sample(tr, times) for tr in traces])
    with np.errstate(invalid="ignore"):
        return np.nanmean(rows, axis=0)


def time_to_target(trace: Sequence, target: float) -> Optional[float]:
    """First time the trace reaches ``target`` or better; None if never."""
    for vsec, length in trace:
        if length <= target:
            return float(vsec)
    return None


def merge_min(traces: Sequence[Sequence]) -> list:
    """Merge traces into the running minimum across all of them.

    Used to build a network-wide best curve from per-node improvement
    logs (per-node time axis, as the paper plots 'CPU time per node').
    """
    events = sorted(
        (float(v), int(l)) for tr in traces for v, l in tr
    )
    out: list = []
    best = None
    for vsec, length in events:
        if best is None or length < best:
            best = length
            out.append((vsec, length))
    return out
