"""JSONL trace export/import.

One JSON object per line: a ``meta`` header, every span in recording
order, then every metric series (counters, gauges, histograms).  JSONL
keeps traces greppable, appendable, and loadable without holding the
whole document in memory at once; :class:`TraceData` is the in-memory
read-side, shared by ``python -m repro trace summarize`` and
:mod:`repro.analysis.obs_report`.

Readers are tolerant the same way :mod:`repro.analysis.runio` is: a
trace written with observability disabled (or by an older version) may
carry no spans and no metrics at all — every accessor degrades to empty
collections rather than raising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from .metrics import Histogram
from .tracer import Span, Tracer

__all__ = ["TraceData", "write_jsonl", "read_jsonl"]

_FORMAT_VERSION = 1


@dataclass
class TraceData:
    """Read-side of one exported trace."""

    spans: list = field(default_factory=list)
    #: name -> {label_key(tuple of (k, v)): value}
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    #: name -> {label_key: Histogram}
    hists: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def spans_named(self, prefix: str) -> list:
        """Spans whose name matches ``prefix`` exactly or as a dotted
        prefix (``"phase"`` matches ``phase.optimize``)."""
        dotted = prefix + "."
        return [
            s for s in self.spans
            if s.name == prefix or s.name.startswith(dotted)
        ]

    def children(self, span: Span) -> list:
        return [s for s in self.spans if s.parent == span.index]


def write_jsonl(tracer: Tracer, path: Union[str, Path]) -> None:
    """Export a tracer's spans and metrics as JSONL."""
    lines = [json.dumps({
        "t": "meta",
        "format": _FORMAT_VERSION,
        "enabled": tracer.enabled,
        "n_spans": len(tracer.spans),
    })]
    for span in tracer.spans:
        lines.append(json.dumps(span.to_json()))
    metrics = tracer.metrics
    for name, series in sorted(metrics.counters.items()):
        for key, value in sorted(series.items()):
            lines.append(json.dumps({
                "t": "counter", "name": name,
                "labels": dict(key), "value": value,
            }))
    for name, series in sorted(metrics.gauges.items()):
        for key, value in sorted(series.items()):
            lines.append(json.dumps({
                "t": "gauge", "name": name,
                "labels": dict(key), "value": value,
            }))
    for name, series in sorted(metrics.hists.items()):
        for key, hist in sorted(series.items()):
            doc = {"t": "hist", "name": name, "labels": dict(key)}
            doc.update(hist.to_json())
            lines.append(json.dumps(doc))
    Path(path).write_text("\n".join(lines) + "\n")


def _span_from_json(doc: dict) -> Span:
    span = Span(
        index=int(doc["i"]),
        name=doc["name"],
        labels=dict(doc.get("labels") or {}),
        parent=doc.get("parent"),
        depth=int(doc.get("depth", 0)),
    )
    span.wall = float(doc.get("wall") or 0.0)
    span.v0 = doc.get("v0")
    span.v1 = doc.get("v1")
    return span


def read_jsonl(path: Union[str, Path]) -> TraceData:
    """Load an exported trace; tolerant of empty / metric-free files."""
    data = TraceData()
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(
                f"{path}:{lineno}: not valid JSONL ({err})"
            ) from err
        kind = doc.get("t")
        if kind == "meta":
            if doc.get("format") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace format: {doc.get('format')!r}"
                )
            data.meta = doc
        elif kind == "span":
            data.spans.append(_span_from_json(doc))
        elif kind == "counter":
            key = tuple(sorted((doc.get("labels") or {}).items()))
            data.counters.setdefault(doc["name"], {})[key] = doc["value"]
        elif kind == "gauge":
            key = tuple(sorted((doc.get("labels") or {}).items()))
            data.gauges.setdefault(doc["name"], {})[key] = doc["value"]
        elif kind == "hist":
            key = tuple(sorted((doc.get("labels") or {}).items()))
            data.hists.setdefault(doc["name"], {})[key] = \
                Histogram.from_json(doc)
        # Unknown record kinds are skipped: forward compatibility.
    return data
