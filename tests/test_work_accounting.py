"""Work-accounting semantics the methodology depends on."""

import pytest

from repro.localsearch import ChainedLK, LinKernighan
from repro.tsp import generators
from repro.tsp.tour import random_tour
from repro.utils.work import OPS_PER_VSEC, WorkMeter

import numpy as np


class TestMeterIsTheOnlyClock:
    def test_lk_consumes_measurable_work(self):
        inst = generators.uniform(80, rng=2)
        t = random_tour(inst, np.random.default_rng(0))
        m = WorkMeter()
        LinKernighan(inst).optimize(t, m)
        assert m.ops > inst.n  # real work happened
        assert m.vsec == pytest.approx(m.ops / OPS_PER_VSEC)

    def test_same_run_same_ops(self):
        """Work is a function of the computation: identical runs consume
        identical operation counts."""
        inst = generators.uniform(60, rng=3)

        def run():
            m = WorkMeter()
            solver = ChainedLK(inst, rng=11)
            tour = solver.initial_tour(m)
            for _ in range(5):
                cand = solver.step(tour, m)
                if cand.length <= tour.length:
                    tour = cand
            return m.ops, tour.length

        assert run() == run()

    def test_budget_stops_near_limit(self):
        inst = generators.uniform(150, rng=4)
        solver = ChainedLK(inst, rng=0)
        res = solver.run(budget_vsec=0.5)
        # Overshoot is bounded by one move's work, far below 2x.
        assert 0.5 <= res.work_vsec < 1.0

    def test_reversal_work_counted(self):
        """Segment reversals tick the meter (they are the dominant real
        cost of array-based LK), so bigger instances cost more ops for
        the same number of improvements."""
        small = generators.uniform(40, rng=5)
        big = generators.uniform(400, rng=5)
        ops = {}
        for inst in (small, big):
            t = random_tour(inst, np.random.default_rng(1))
            m = WorkMeter()
            LinKernighan(inst).optimize(t, m)
            ops[inst.n] = m.ops / inst.n  # per-city work
        assert ops[400] > ops[40]
