"""Tests for 1-trees, the Held-Karp bound, and exact solvers."""

import numpy as np
import pytest

from repro.bounds import (
    brute_force,
    held_karp_bound,
    held_karp_exact,
    minimum_one_tree,
)
from repro.tsp import generators


class TestExact:
    def test_dp_matches_brute_force(self):
        for seed in range(5):
            inst = generators.uniform(8, rng=seed)
            dp, dp_order = held_karp_exact(inst)
            bf, _ = brute_force(inst)
            assert dp == bf
            assert inst.tour_length(dp_order) == dp

    def test_dp_on_clustered(self):
        inst = generators.clustered(10, rng=1, n_clusters=3)
        dp, order = held_karp_exact(inst)
        bf, _ = brute_force(inst)
        assert dp == bf
        assert sorted(order.tolist()) == list(range(10))

    def test_dp_on_explicit_matrix(self):
        inst = generators.random_matrix(9, rng=2)
        dp, order = held_karp_exact(inst)
        bf, _ = brute_force(inst)
        assert dp == bf

    def test_size_limits(self):
        inst = generators.uniform(25, rng=0)
        with pytest.raises(ValueError, match="limited"):
            held_karp_exact(inst)
        with pytest.raises(ValueError, match="limited"):
            brute_force(generators.uniform(12, rng=0))

    def test_square_exact(self, square_instance):
        opt, _ = brute_force(square_instance)
        assert opt == 400


class TestOneTree:
    def test_structure(self, small_instance):
        t = minimum_one_tree(small_instance)
        n = small_instance.n
        assert t.edges.shape == (n, 2)  # n-2 tree edges + 2 special
        assert t.degrees.sum() == 2 * n
        assert t.degrees[0] == 2  # special node always degree 2

    def test_lower_bounds_optimum(self):
        for seed in range(4):
            inst = generators.uniform(10, rng=seed)
            opt, _ = held_karp_exact(inst)
            t = minimum_one_tree(inst)
            assert t.bound <= opt + 1e-9

    def test_penalties_shift_bound_not_above_opt(self):
        inst = generators.uniform(10, rng=3)
        opt, _ = held_karp_exact(inst)
        rng = np.random.default_rng(0)
        for _ in range(5):
            pi = rng.normal(0, 50, size=inst.n)
            t = minimum_one_tree(inst, pi)
            assert t.bound <= opt + 1e-6

    def test_bad_pi_shape_raises(self, small_instance):
        with pytest.raises(ValueError, match="shape"):
            minimum_one_tree(small_instance, np.zeros(3))


class TestHeldKarpAscent:
    def test_improves_on_plain_one_tree(self):
        inst = generators.uniform(30, rng=5)
        plain = minimum_one_tree(inst).bound
        ascent = held_karp_bound(inst, max_iterations=80).bound
        assert ascent >= plain

    def test_stays_below_optimum(self):
        for seed in range(3):
            inst = generators.uniform(11, rng=seed)
            opt, _ = held_karp_exact(inst)
            res = held_karp_bound(inst, max_iterations=120)
            assert res.bound <= opt + 1e-6
            # and should be tight-ish (HK bound typically within 1-2%)
            assert res.bound >= 0.9 * opt

    def test_tour_detection(self):
        # Cities on a circle: the 1-tree of the optimal penalties is the tour.
        angles = np.linspace(0, 2 * np.pi, 13)[:-1]
        coords = 1000 * np.stack([np.cos(angles), np.sin(angles)], axis=1) + 2000
        from repro.tsp.instance import TSPInstance

        inst = TSPInstance(coords=coords)
        res = held_karp_bound(inst, max_iterations=60)
        opt, _ = held_karp_exact(inst)
        assert res.bound >= 0.99 * opt

    def test_result_fields(self, small_instance):
        res = held_karp_bound(small_instance, max_iterations=10)
        assert res.pi.shape == (small_instance.n,)
        assert res.iterations <= 10
        assert res.one_tree.degrees.sum() == 2 * small_instance.n
