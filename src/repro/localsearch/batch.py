"""Batched best-of-N kick execution for Chained LK.

The CLK loop spends nearly all of its time in the kick → LK-pass chain, and
successive chains started from the same incumbent are independent — which
makes the stage embarrassingly parallel.  :class:`BatchKickRunner` fans N
such chains out (each with its own :class:`numpy.random.SeedSequence`-derived
stream), and the caller keeps the best resulting tour.

Two backends share one chain implementation (:func:`run_chain`):

* ``process`` — a ``concurrent.futures`` process pool with the *spawn*
  start method.  Workers rebuild the instance from a minimal payload
  (:meth:`TSPInstance.to_payload`), so no fork-shared caches or global RNG
  state can leak from the parent; every acceleration structure (distance
  matrix, neighbour lists) is reconstructed deterministically in the child.
* ``inline`` — the same chains executed sequentially in-process.  Used on
  machines without spare cores, inside daemonic workers (the mp backend's
  node processes may not spawn children), as the recovery path when the
  pool dies mid-batch, and by tests to prove the pool leaks no state
  (pool and inline must produce identical results for identical seeds).

Virtual time: each chain runs against its own :class:`WorkMeter` pre-charged
with the parent's position, so span timestamps line up, and the caller
ticks the parent meter by the *sum* of chain deltas — the batch is charged
exactly what running its chains serially would cost (the paper's per-node
CPU-second accounting does not get cheaper by using more cores).

This module deliberately never imports ``time`` (RPL002): wall-clock
speedup is the benches' business; in-process accounting stays virtual.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from ..tsp.tour import Tour
from ..utils.work import WorkMeter
from .engine import OpStats

__all__ = ["BATCH_BACKENDS", "BatchChainResult", "BatchKickRunner", "run_chain"]

#: Recognised values for ``batch_backend`` config fields.
BATCH_BACKENDS = ("process", "inline")


@dataclass(frozen=True, slots=True)
class BatchChainResult:
    """Parent-side outcome of one kick chain."""

    #: Index of the chain within its batch (ties broken by lowest index).
    chain: int
    #: Final tour order of the chain (city permutation).
    order: np.ndarray
    #: Final tour length.
    length: int
    #: Elementary operations the chain consumed (meter delta).
    ops: int


def run_chain(solver, tour: Tour, n_kicks: int, rng, meter: WorkMeter,
              fixed=None, target=None) -> Tour:
    """``n_kicks`` kick → LK steps from ``tour`` with chain-local acceptance.

    The one chain implementation both backends execute: each step kicks the
    chain's incumbent and re-optimizes, keeping the candidate iff it is no
    worse.  ``rng`` is the chain's private stream; ``meter`` is the chain's
    private work meter (budget-checked at step granularity).
    """
    best = tour
    for _ in range(max(1, int(n_kicks))):
        if meter.exhausted():
            break
        if target is not None and best.length <= target:
            break
        cand = solver.step(best, meter, fixed=fixed, rng=rng)
        if cand.length <= best.length:
            best = cand
    return best


# -- process-pool worker ------------------------------------------------------

#: Per-worker solver, built once by :func:`_init_worker` (spawn context, so
#: this global starts as None in every child and never aliases the parent's).
_WORKER_SOLVER = None


def _init_worker(payload: dict, kick: str, lk_config) -> None:
    """Build the worker's private ChainedLK from the instance payload.

    Runs once per worker process.  The instance is rebuilt from defining
    data only (coords/matrix), so distance-matrix and neighbour caches are
    fresh, child-local constructions — nothing is inherited from the
    parent.  The solver's own rng is seeded but never drawn from: every
    chain carries its own SeedSequence.
    """
    global _WORKER_SOLVER
    from ..tsp.instance import TSPInstance
    from .chained_lk import ChainedLK

    instance = TSPInstance.from_payload(payload)
    _WORKER_SOLVER = ChainedLK(instance, kick=kick, lk_config=lk_config, rng=0)


def _chain_task(spec: tuple) -> tuple:
    """Run one chain in a pool worker; returns a plain picklable tuple.

    ``spec`` is ``(chain, order, length, n_kicks, seed_seq, start_ops,
    budget_ops, fixed, target, crash)``.  ``crash`` is the fault-injection
    hook: when set the worker dies abruptly (``os._exit``), which the
    parent observes as :class:`BrokenProcessPool` — the supervision tests'
    ``kill_at`` idiom at pool granularity.
    """
    (chain, order, length, n_kicks, seed_seq, start_ops, budget_ops,
     fixed, target, crash) = spec
    if crash:  # pragma: no cover - exercised via the pool, not in-process
        os._exit(1)
    solver = _WORKER_SOLVER
    assert solver is not None, "pool worker used before initialization"
    stats0 = solver.stats.copy()
    tour = Tour(solver.instance, np.asarray(order, dtype=np.intp), int(length))
    meter = WorkMeter(budget_ops=budget_ops)
    meter.ops = int(start_ops)
    best = run_chain(solver, tour, n_kicks, np.random.default_rng(seed_seq),
                     meter, fixed=fixed, target=target)
    delta = solver.stats - stats0
    return (
        int(chain),
        np.asarray(best.order, dtype=np.int32),
        int(best.length),
        int(meter.ops - start_ops),
        delta.to_json(),
    )


# -- parent-side runner -------------------------------------------------------


class BatchKickRunner:
    """Executes batches of kick chains for one :class:`ChainedLK`.

    Owns the (lazily created) process pool.  A pool that breaks mid-batch
    is dropped, the whole batch is re-run inline — chains are deterministic
    given their seeds, so the recovery result is identical to what the pool
    would have produced — and a fresh pool is spawned for the next batch.
    """

    def __init__(self, instance, kick: str, lk_config, width: int,
                 backend: str = "process"):
        if width < 1:
            raise ValueError(f"batch width must be >= 1, got {width}")
        if backend not in BATCH_BACKENDS:
            raise ValueError(
                f"unknown batch backend {backend!r}; choices: {BATCH_BACKENDS}"
            )
        self.instance = instance
        self.kick = kick
        self.lk_config = lk_config
        self.width = int(width)
        self.backend = backend
        #: Batches whose pool broke and were recovered inline.
        self.pool_failures = 0
        #: Test hook: chain indices whose *next* pool task kills its worker.
        self.inject_crash_chains: set[int] = set()
        self._executor: ProcessPoolExecutor | None = None
        self._pool_disabled = False

    # -- pool lifecycle ------------------------------------------------------

    #: Broken pools tolerated before a runner stops respawning them.  One
    #: break can be bad luck (OOM-killed worker); repeated breaks mean the
    #: environment cannot sustain a pool (e.g. a caller without the
    #: ``__main__`` guard the spawn start method requires) and retrying
    #: would pay pool startup + failure on every batch.
    MAX_POOL_FAILURES = 2

    def _pool_allowed(self) -> bool:
        if self.backend != "process" or self.width < 2:
            return False
        if self._pool_disabled:
            return False
        # Daemonic processes (the mp backend's node workers) may not spawn
        # children; fall back to inline chains there.
        return not mp.current_process().daemon

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._executor is None and self._pool_allowed():
            self._executor = ProcessPoolExecutor(
                max_workers=min(self.width, os.cpu_count() or 1),
                mp_context=mp.get_context("spawn"),
                initializer=_init_worker,
                initargs=(self.instance.to_payload(), self.kick,
                          self.lk_config),
            )
        return self._executor

    def close(self) -> None:
        """Shut down the pool (idempotent); a later batch respawns it."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- batch execution -----------------------------------------------------

    def run_batch(self, solver, best: Tour, meter: WorkMeter, n_kicks: int,
                  seeds, fixed=None, target=None) -> list[BatchChainResult]:
        """Run one chain per seed from ``best``; returns all chain results.

        ``solver`` is the parent :class:`ChainedLK` (used directly by the
        inline path; the pool path merges worker stat deltas into it so
        telemetry totals are backend-independent).  The parent ``meter`` is
        *read* here (chains start from its position and share its budget)
        but never ticked — the caller charges the summed chain ops.
        """
        start_ops = int(meter.ops)
        budget_ops = meter.budget_ops
        order32 = np.asarray(best.order, dtype=np.int32)
        specs = [
            (i, order32, int(best.length), int(n_kicks), seed, start_ops,
             budget_ops, fixed, target, i in self.inject_crash_chains)
            for i, seed in enumerate(seeds)
        ]
        self.inject_crash_chains = set()

        executor = self._ensure_executor()
        if executor is not None:
            try:
                futures = [executor.submit(_chain_task, s) for s in specs]
                raw = [f.result() for f in futures]
            except BrokenProcessPool:
                # A worker died mid-batch.  Drop the pool and recompute the
                # whole batch inline: chains are deterministic given their
                # seeds, so recovery is result-identical, just slower.
                self.pool_failures += 1
                if self.pool_failures >= self.MAX_POOL_FAILURES:
                    self._pool_disabled = True
                self.close()
            else:
                results = []
                for chain, order, length, ops, stats_json in raw:
                    solver.stats.merge(OpStats.from_json(stats_json))
                    results.append(BatchChainResult(
                        chain=int(chain),
                        order=np.asarray(order, dtype=np.intp),
                        length=int(length),
                        ops=int(ops),
                    ))
                return results
        return self._run_inline(solver, specs)

    def _run_inline(self, solver, specs) -> list[BatchChainResult]:
        """Sequential in-process execution of a batch (the reference path)."""
        results = []
        for (chain, order, length, n_kicks, seed, start_ops, budget_ops,
             fixed, target, _crash) in specs:
            tour = Tour(solver.instance, np.asarray(order, dtype=np.intp),
                        int(length))
            meter = WorkMeter(budget_ops=budget_ops)
            meter.ops = int(start_ops)
            chain_best = run_chain(solver, tour, n_kicks,
                                   np.random.default_rng(seed), meter,
                                   fixed=fixed, target=target)
            results.append(BatchChainResult(
                chain=int(chain),
                order=np.asarray(chain_best.order, dtype=np.intp),
                length=int(chain_best.length),
                ops=int(meter.ops - start_ops),
            ))
        return results
