"""TCP front end: protocol roundtrips against a live in-process server."""

import asyncio

import pytest

from repro.service import ServiceClient, ServiceServer, SolverService

pytestmark = pytest.mark.service

JOB = dict(seed=4, budget_vsec_per_node=0.2, n_nodes=2,
           params={"topology": "ring"})


def run(coro):
    return asyncio.run(coro)


async def _with_server(fn):
    server = ServiceServer(SolverService(backend="sim"), port=0)
    await server.start()
    try:
        client = ServiceClient(port=server.port, timeout=60)
        return await fn(client, server)
    finally:
        await server.close()


class TestServer:
    def test_ping(self):
        async def body(client, _server):
            return await client.ping()

        assert run(_with_server(body))

    def test_submit_stream_result_roundtrip(self):
        async def body(client, _server):
            job_id = await client.submit({"spec": "uniform:50:3"}, **JOB)
            streamed = [doc async for doc in client.stream(job_id)]
            result = await client.result(job_id, timeout=60)
            status = await client.status(job_id)
            stats = await client.stats()
            return job_id, streamed, result, status, stats

        job_id, streamed, result, status, stats = run(_with_server(body))
        assert job_id == "job-0001"
        assert status["status"] == "done"
        lengths = [doc["length"] for doc in streamed]
        assert lengths and lengths == sorted(lengths, reverse=True)
        assert result["tour"]["length"] == lengths[-1]
        assert len(result["tour"]["order"]) == 50
        assert stats["store"]["entries"] == 1

    def test_cancel_over_wire(self):
        async def body(client, _server):
            job_id = await client.submit(
                {"spec": "uniform:200:1"}, seed=1,
                budget_vsec_per_node=5.0, n_nodes=4)
            cancelled = await client.cancel(job_id)
            # result for a cancelled job is a server-side error.
            with pytest.raises(RuntimeError):
                await client.result(job_id, timeout=60)
            return cancelled, await client.status(job_id)

        cancelled, status = run(_with_server(body))
        assert cancelled
        assert status["status"] == "cancelled"

    def test_tenant_policy_over_wire(self):
        async def body(client, server):
            await client.set_tenant("vip", max_concurrency=3, priority=-1)
            policy = server.service.queue.policy("vip")
            return policy.max_concurrency, policy.priority

        assert run(_with_server(body)) == (3, -1)

    def test_bad_requests_keep_server_alive(self):
        async def body(client, _server):
            with pytest.raises(RuntimeError):
                await client.status("job-9999")  # unknown id
            with pytest.raises(RuntimeError):
                await client.submit({"spec": "nonsense:spec"})
            with pytest.raises(RuntimeError):
                await client._request({"op": "frobnicate"})
            return await client.ping()  # still serving

        assert run(_with_server(body))

    def test_duplicate_submits_share_store_across_connections(self):
        async def body(client, _server):
            await client.submit({"spec": "uniform:50:3"}, tenant="a", **JOB)
            await client.submit({"spec": "uniform:50:3"}, tenant="b", **JOB)
            return (await client.stats())["store"]

        store = run(_with_server(body))
        assert store["entries"] == 1
        assert store["hits"] == 1


class TestClientDisconnect:
    """A peer that vanishes mid-conversation must cost the server only
    that one connection: the handler unwinds, its task leaves
    ``_conn_tasks``, and everyone else keeps being served."""

    def test_drop_mid_stream(self):
        async def body(client, server):
            job_id = await client.submit(
                {"spec": "uniform:150:1"}, seed=1,
                budget_vsec_per_node=2.0, n_nodes=2,
                params={"topology": "ring"})
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(
                b'{"op": "stream", "job_id": "%s"}\n' % job_id.encode())
            await writer.drain()
            # Take one incumbent line, then vanish without reading the
            # rest of the stream.
            first = await asyncio.wait_for(reader.readline(), timeout=60)
            assert first
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            # The server must still answer other clients and finish the
            # job; the dead handler must drain out of _conn_tasks.
            alive = await client.ping()
            await client.result(job_id, timeout=60)
            for _ in range(100):
                if not server._conn_tasks:
                    break
                await asyncio.sleep(0.05)
            return alive, len(server._conn_tasks)

        alive, leftover = run(_with_server(body))
        assert alive is True
        assert leftover == 0

    def test_drop_mid_request(self):
        async def body(client, server):
            # Half a request — bytes but no newline — then vanish: the
            # handler sees a truncated line at EOF, fails to parse it,
            # and must not be able to reply to the closed socket.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b'{"op": "stat')
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            alive = await client.ping()
            for _ in range(100):
                if not server._conn_tasks:
                    break
                await asyncio.sleep(0.05)
            return alive, len(server._conn_tasks)

        alive, leftover = run(_with_server(body))
        assert alive is True
        assert leftover == 0

    def test_drop_before_any_bytes(self):
        async def body(client, server):
            # Connect-and-leave: readline returns b"" and the handler
            # must treat the empty line as "no request", not an error.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return await client.ping()

        assert run(_with_server(body)) is True
