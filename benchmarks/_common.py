"""Shared benchmark infrastructure.

Every bench file reproduces one table or figure of the paper.  All runs
use the virtual-time engine, so results are deterministic; budgets are
the paper's protocol scaled to the Python engine (DESIGN.md §2):

* ``CLK_BUDGET_VSEC`` plays the paper's 10^4-CPU-second CLK limit
  (doubled for the 'large' size class, standing in for the paper's 10x).
* The distributed runs get ``clk_budget / N_NODES`` **per node** — equal
  *total* CPU, which is the abstract's claim ("better tours ... given
  the same total amount of computation time").  The paper's own protocol
  used 1/10 per node; at Python-engine scale that leaves too few EA
  iterations per node to exercise the algorithm, so the equal-total
  protocol is used and noted on each table.
* The paper's ``c_v = 64 / c_r = 256`` assume ~10^3 EA iterations per
  node; the scaled runs see tens, so the distributed runs here default
  to ``c_v = 8`` with restarts off (see :data:`SCALED_CR`).
* Initialization (construction + first full LK pass) is uncharged on
  both sides (``free_init``): it is ~0.01% of the paper's budgets but
  ~25% of a scaled node budget, and the 8-node variant would pay it 8x —
  charging it would measure bootstrap cost, not cooperation.
* The paper's 10 runs per configuration become :data:`N_RUNS`
  (override with the ``REPRO_BENCH_RUNS`` environment variable).
"""

from __future__ import annotations

import functools
import os

from repro.analysis import reference_length
from repro.core import solve
from repro.localsearch import LKConfig, chained_lk
from repro.tsp import registry
from repro.utils.rng import ensure_rng, spawn_rngs

#: Runs per configuration (paper: 10).
N_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))

#: CLK budget for small instances, in virtual seconds (paper: 10^4 s).
CLK_BUDGET_VSEC = float(os.environ.get("REPRO_BENCH_CLK_VSEC", "32"))

#: Node count of the distributed setup (paper: 8, hypercube).
N_NODES = 8

#: Scaled perturbation-escalation threshold (paper: c_v = 64 at ~10^3
#: iterations/node; ~8 at the tens-of-iterations scale here).
SCALED_CV = 8
#: Restarts are disabled by default at bench scale: a restart re-runs the
#: initial construction + full LK pass, which costs ~0.1% of a node's
#: budget in the paper but ~25% here — the cost structure does not scale
#: down (DESIGN.md §2).  The variator case-study bench re-enables them.
SCALED_CR = 10**9

#: LK engine settings shared by every compared algorithm in the benches
#: (slightly leaner than the library default; both sides of every
#: comparison use the same engine, as both sides of the paper's use
#: linkern).
BENCH_LK = LKConfig(neighbor_k=7, breadth=(4, 2), max_depth=40)

#: Small testbed used by the success-count experiments (paper Table 3
#: uses the instances below fnl4461).
TABLE3_INSTANCES = ("C100", "E100", "fl150", "pr200", "pcb250", "fl300")

#: Full testbed in Table 4/5 order.
FULL_TESTBED = tuple(e.name for e in registry.testbed())

KICKS = ("random", "geometric", "close", "random_walk")

#: Paper-facing labels.
KICK_LABELS = {
    "random": "Random",
    "geometric": "Geometric",
    "close": "Close",
    "random_walk": "Random-Walk",
}


def clk_budget(name: str) -> float:
    """Sequential CLK budget for a testbed instance."""
    entry = next(e for e in registry.testbed() if e.name == name)
    return CLK_BUDGET_VSEC * (2.0 if entry.size_class == "large" else 1.0)


def dist_budget_per_node(name: str) -> float:
    """DistCLK per-node budget: equal total CPU with the CLK budget."""
    return clk_budget(name) / N_NODES


@functools.lru_cache(maxsize=None)
def reference(name: str) -> tuple[float, str]:
    """(reference length, kind) for an instance; computes a quick
    fallback reference when the registry cache is empty."""
    ref, kind = reference_length(name)
    if ref is not None:
        return ref, kind
    inst = registry.get_instance(name)
    res = chained_lk(inst, budget_vsec=clk_budget(name),
                     lk_config=BENCH_LK, rng=987)
    return float(res.length), "fallback-clk"


def run_clk(name: str, kick: str, seed, budget: float | None = None,
            target: float | None = None):
    """One sequential CLK run on a testbed instance."""
    inst = registry.get_instance(name)
    return chained_lk(
        inst,
        budget_vsec=budget if budget is not None else clk_budget(name),
        kick=kick,
        lk_config=BENCH_LK,
        target_length=int(target) if target is not None else None,
        free_init=True,
        rng=seed,
    )


def run_dist(name: str, kick: str, seed, n_nodes: int = N_NODES,
             budget: float | None = None, target: float | None = None,
             **kwargs):
    """One distributed run on a testbed instance (scaled c_v/c_r)."""
    inst = registry.get_instance(name)
    topology = kwargs.pop("topology", "hypercube" if n_nodes > 1 else {0: ()})
    kwargs.setdefault("c_v", SCALED_CV)
    kwargs.setdefault("c_r", SCALED_CR)
    kwargs.setdefault("lk_config", BENCH_LK)
    kwargs.setdefault("free_init", True)
    return solve(
        inst,
        budget_vsec_per_node=(
            budget if budget is not None else dist_budget_per_node(name)
        ),
        n_nodes=n_nodes,
        kick=kick,
        topology=topology,
        target_length=int(target) if target is not None else None,
        rng=seed,
        **kwargs,
    )


def seeds(base: int, k: int = N_RUNS) -> list:
    """k deterministic independent seeds for repeated runs."""
    return spawn_rngs(ensure_rng(base), k)


#: Report buffer: conftest's pytest_terminal_summary flushes it after the
#: run, so bench tables survive pytest's output capture.
REPORT_LINES: list[str] = []


def emit(*args) -> None:
    """print()-alike that also records the line for the session report."""
    text = " ".join(str(a) for a in args)
    for line in text.split("\n"):
        REPORT_LINES.append(line)
    print(text)


def print_banner(title: str, note: str = "") -> None:
    bar = "=" * max(len(title), 60)
    emit(f"\n{bar}\n{title}")
    if note:
        emit(note)
    emit(bar)
