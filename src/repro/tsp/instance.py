"""TSP instance representation.

A :class:`TSPInstance` bundles coordinates (or an explicit weight matrix),
the TSPLIB edge-weight type, and lazily-built acceleration structures
(distance matrix, k-nearest-neighbour lists).  Instances are immutable from
the solver's point of view; all solvers share one instance object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from . import distances as _dist
from . import neighbors as _neighbors

__all__ = ["TSPInstance"]

#: Above this size a full distance matrix (n^2 int64) is not built eagerly.
_DENSE_LIMIT = 7000


@dataclass
class TSPInstance:
    """A symmetric TSP instance.

    Parameters
    ----------
    coords:
        ``(n, 2)`` float array of city coordinates.  ``None`` only for
        ``EXPLICIT`` instances.
    edge_weight_type:
        One of :data:`repro.tsp.distances.EDGE_WEIGHT_TYPES`.
    name:
        Instance name (TSPLIB ``NAME`` field or generator tag).
    matrix:
        Explicit ``(n, n)`` integer weight matrix for ``EXPLICIT`` instances.
    comment:
        Free-text provenance (e.g. generator parameters).
    """

    coords: Optional[np.ndarray] = None
    edge_weight_type: str = "EUC_2D"
    name: str = "unnamed"
    matrix: Optional[np.ndarray] = None
    comment: str = ""

    _matrix_cache: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _matrix_rows: Optional[list] = field(default=None, repr=False, compare=False)
    _dist_fn: Optional[Callable[[int, int], int]] = field(
        default=None, repr=False, compare=False
    )
    _neighbor_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.edge_weight_type == "EXPLICIT":
            if self.matrix is None:
                raise ValueError("EXPLICIT instances require a weight matrix")
            m = np.asarray(self.matrix, dtype=np.int64)
            if m.ndim != 2 or m.shape[0] != m.shape[1]:
                raise ValueError(f"matrix must be square, got {m.shape}")
            if not np.array_equal(m, m.T):
                raise ValueError("matrix must be symmetric")
            if np.any(np.diag(m) != 0):
                raise ValueError("matrix diagonal must be zero")
            self.matrix = m
            self._matrix_cache = m
        else:
            if self.coords is None:
                raise ValueError("coordinate instances require coords")
            if self.edge_weight_type not in _dist.EDGE_WEIGHT_TYPES:
                raise ValueError(
                    f"unknown edge weight type {self.edge_weight_type!r}"
                )
            c = np.asarray(self.coords, dtype=np.float64)
            if c.ndim != 2 or c.shape[1] != 2:
                raise ValueError(f"coords must have shape (n, 2), got {c.shape}")
            c.setflags(write=False)
            self.coords = c
        if self.n < 3:
            raise ValueError(f"need at least 3 cities, got {self.n}")

    # -- basic properties ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of cities."""
        if self.coords is not None:
            return int(self.coords.shape[0])
        assert self.matrix is not None  # __post_init__ enforces one of the two
        return int(self.matrix.shape[0])

    @property
    def is_geometric(self) -> bool:
        """True when city coordinates exist (enables KD-tree neighbours)."""
        return self.coords is not None and self.edge_weight_type != "GEO"

    # -- distances ----------------------------------------------------------

    def dist(self, i: int, j: int) -> int:
        """Distance between cities ``i`` and ``j``."""
        m = self._matrix_cache
        if m is not None:
            return int(m[i, j])
        if self._dist_fn is None:
            assert self.coords is not None  # EXPLICIT always has _matrix_cache
            self._dist_fn = _dist.distance_closure(self.coords, self.edge_weight_type)
        return self._dist_fn(i, j)

    def dist_many(self, i: int, js: np.ndarray) -> np.ndarray:
        """Vectorized distances from ``i`` to an index array ``js``."""
        m = self._matrix_cache
        if m is not None:
            return m[i, np.asarray(js, dtype=np.intp)]
        assert self.coords is not None  # EXPLICIT always has _matrix_cache
        return _dist.row_distances(self.coords, i, js, self.edge_weight_type)

    def dist_pairs(self, is_: np.ndarray, js: np.ndarray) -> np.ndarray:
        """Elementwise distances ``d(is_[t], js[t])``, always int64.

        The matrix-free gather primitive behind ``DistView.gather_pairs``
        (vectorized kernels on instances above the dense limit).
        """
        m = self._matrix_cache
        if m is not None:
            return m[np.asarray(is_, dtype=np.intp), np.asarray(js, dtype=np.intp)]
        assert self.coords is not None  # EXPLICIT always has _matrix_cache
        return _dist.pair_distances(self.coords, is_, js, self.edge_weight_type)

    def distance_matrix(self) -> np.ndarray:
        """Full ``(n, n)`` matrix (built lazily, cached; O(n^2) memory)."""
        if self._matrix_cache is None:
            assert self.coords is not None  # EXPLICIT always has _matrix_cache
            self._matrix_cache = _dist.pairwise_matrix(
                self.coords, self.edge_weight_type
            )
            self._matrix_cache.setflags(write=False)
        return self._matrix_cache

    def materialize(self) -> "TSPInstance":
        """Eagerly build the distance matrix when affordable; returns self."""
        if self._matrix_cache is None and self.n <= _DENSE_LIMIT:
            self.distance_matrix()
        return self

    def dense_matrix(self) -> Optional[np.ndarray]:
        """The cached ``(n, n)`` matrix when affordable, else ``None``.

        Unlike :meth:`distance_matrix` this never forces an O(n^2) build
        above the dense limit — the vectorized kernels use it as an
        optional fast path and fall back to coordinate gathers
        (:meth:`dist_many` / :meth:`dist_pairs`).
        """
        self.materialize()
        return self._matrix_cache

    def matrix_row_lists(self) -> Optional[list]:
        """Distance matrix as nested Python lists, shared across solvers.

        Plain-list scalar indexing beats numpy scalar indexing ~3x in the
        LK hot loop, but ``tolist()`` builds O(n^2) Python objects —
        cached here so every :class:`LinKernighan` (one per node in a
        distributed run) reuses one copy.  None when the dense matrix is
        not affordable (see :meth:`materialize`).
        """
        if self._matrix_rows is None:
            self.materialize()
            if self._matrix_cache is None:
                return None
            self._matrix_rows = self._matrix_cache.tolist()
        return self._matrix_rows

    # -- process-boundary transport -----------------------------------------

    def to_payload(self) -> dict:
        """Minimal picklable dict from which a worker process can rebuild
        this instance (:meth:`from_payload`).

        Only the defining data crosses the boundary — caches (distance
        matrix, row lists, neighbour lists) are deliberately excluded so
        every child rebuilds them from scratch instead of inheriting
        possibly fork-shared state.  Used by the multiprocessing backend
        and the batched-kick process pool.
        """
        if self.edge_weight_type == "EXPLICIT":
            return {
                "matrix": np.asarray(self.matrix),
                "edge_weight_type": "EXPLICIT",
                "name": self.name,
            }
        return {
            "coords": np.asarray(self.coords),
            "edge_weight_type": self.edge_weight_type,
            "name": self.name,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TSPInstance":
        """Rebuild an instance in a worker process (fresh caches)."""
        return cls(**payload)

    # -- tours --------------------------------------------------------------

    def tour_length(self, order: np.ndarray) -> int:
        """Length of the closed tour visiting cities in ``order``."""
        order = np.asarray(order, dtype=np.intp)
        if order.shape != (self.n,):
            raise ValueError(
                f"tour must visit all {self.n} cities once, got shape {order.shape}"
            )
        m = self._matrix_cache
        nxt = np.roll(order, -1)
        if m is not None:
            return int(m[order, nxt].sum())
        if self.coords is not None and self.edge_weight_type != "GEO":
            fn = _dist._PLANAR[self.edge_weight_type]
            dx = self.coords[order, 0] - self.coords[nxt, 0]
            dy = self.coords[order, 1] - self.coords[nxt, 1]
            return int(fn(dx, dy).sum())
        if self.edge_weight_type == "GEO":
            assert self.coords is not None
            return int(_dist.geo(self.coords[order], self.coords[nxt]).sum())
        raise AssertionError("unreachable")

    # -- neighbour lists ----------------------------------------------------

    def neighbor_lists(self, k: int = 10) -> np.ndarray:
        """``(n, k)`` array: k nearest neighbours of each city, by distance.

        Cached per ``k``.  Each row is sorted by increasing distance and
        never contains the city itself.
        """
        k = min(k, self.n - 1)
        cached = self._neighbor_cache.get(k)
        if cached is None:
            cached = _neighbors.knn_lists(self, k)
            cached.setflags(write=False)
            self._neighbor_cache[k] = cached
        return cached

    def quadrant_neighbor_lists(self, per_quadrant: int = 3) -> np.ndarray:
        """Quadrant neighbour lists (Concorde-style), cached per setting."""
        key = ("quad", per_quadrant)
        cached = self._neighbor_cache.get(key)
        if cached is None:
            cached = _neighbors.quadrant_lists(self, per_quadrant)
            cached.setflags(write=False)
            self._neighbor_cache[key] = cached
        return cached

    def neighbor_row_lists(self, k: int = 10) -> list:
        """:meth:`neighbor_lists` as a list of per-city Python lists.

        The list form is what the LK candidate scan iterates; cached so
        all nodes of a distributed run share one conversion.
        """
        key = ("rows", min(k, self.n - 1))
        cached = self._neighbor_cache.get(key)
        if cached is None:
            cached = [row.tolist() for row in self.neighbor_lists(k)]
            self._neighbor_cache[key] = cached
        return cached

    def quadrant_neighbor_row_lists(self, per_quadrant: int = 3) -> list:
        """:meth:`quadrant_neighbor_lists` as per-city Python lists (cached)."""
        key = ("rows", "quad", per_quadrant)
        cached = self._neighbor_cache.get(key)
        if cached is None:
            cached = [
                row.tolist()
                for row in self.quadrant_neighbor_lists(per_quadrant)
            ]
            self._neighbor_cache[key] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TSPInstance(name={self.name!r}, n={self.n}, "
            f"type={self.edge_weight_type})"
        )
