"""Or-opt local search: relocate short segments.

Moves segments of 1-3 consecutive cities to a better position between a
nearby city and its successor.  Complements 2-opt (which cannot perform
such relocations without two moves) and serves as the refinement step of
the multilevel baseline's cheaper configurations.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..tsp.tour import Tour
from ..utils.work import WorkMeter

__all__ = ["or_opt"]


def or_opt(tour: Tour, neighbor_k: int = 8, max_seg: int = 3,
           meter: WorkMeter | None = None) -> int:
    """Optimize ``tour`` in place with Or-opt moves; returns improvement.

    First-improvement over segment lengths 1..max_seg, insertion points
    drawn from the k-NN lists of the segment's first city.
    """
    inst = tour.instance
    n = tour.n
    if max_seg >= n - 2:
        raise ValueError("segment length too large for instance size")
    meter = meter if meter is not None else WorkMeter()
    neighbors = inst.neighbor_lists(min(neighbor_k, n - 1))
    dist = inst.dist

    queue = deque(range(n))
    in_queue = np.ones(n, dtype=bool)
    total = 0

    def wake(city: int) -> None:
        if not in_queue[city]:
            in_queue[city] = True
            queue.append(city)

    while queue and not meter.exhausted():
        s0 = queue.popleft()
        in_queue[s0] = False
        for seg_len in range(1, max_seg + 1):
            p0 = int(tour.position[s0])
            seg = [int(tour.order[(p0 + k) % n]) for k in range(seg_len)]
            before = tour.prev(seg[0])
            after = tour.next(seg[-1])
            if before in seg or after in seg:
                continue
            removed = (
                dist(before, seg[0]) + dist(seg[-1], after) - dist(before, after)
            )
            moved = False
            for c in neighbors[s0]:
                c = int(c)
                meter.tick()
                if c in seg or c == before:
                    continue
                cn = tour.next(c)
                if cn in seg:
                    continue
                # Insert segment (possibly reversed) between c and next(c).
                for head, tail in ((seg[0], seg[-1]), (seg[-1], seg[0])):
                    added = dist(c, head) + dist(tail, cn) - dist(c, cn)
                    delta = added - removed
                    if delta < 0:
                        if head != seg[0]:
                            seg.reverse()
                        _do_relocate(tour, seg, c)
                        meter.tick(n // 4 + 1)
                        tour.length += delta
                        total -= delta
                        for city in (before, after, c, cn, *seg):
                            wake(int(city))
                        moved = True
                        break
                if moved:
                    break
            if moved:
                break
    return total


def _do_relocate(tour: Tour, seg: list[int], after_city: int) -> None:
    n = tour.n
    seg_set = set(seg)
    out: list[int] = []
    for c in tour.order:
        c = int(c)
        if c in seg_set:
            continue
        out.append(c)
        if c == after_city:
            out.extend(seg)
    tour.order = np.array(out, dtype=np.intp)
    tour.position[tour.order] = np.arange(n, dtype=np.intp)
