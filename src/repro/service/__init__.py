"""Solver-as-a-service: async job layer over the distributed CLK solver.

The batch API (:func:`repro.core.solve`) runs one instance to completion
and returns.  This package turns the same solver into a long-running
**job service** — the shape the ROADMAP's north star asks for ("a system
serving traffic", cf. the Graphite exemplar's ``async def solve(problem,
future_id)`` in SNIPPETS.md):

* :class:`~repro.service.service.SolverService` — asyncio job manager:
  ``submit`` / ``status`` / ``result`` / ``cancel`` plus an async
  ``stream_incumbents(job_id)`` generator yielding tour improvements as
  they happen;
* :class:`~repro.service.queue.WorkQueue` — priority queue with
  per-tenant concurrency limits and virtual-time budgets
  (:class:`~repro.service.jobs.TenantPolicy`);
* :class:`~repro.service.store.InstanceStore` — bounded, content-addressed
  LRU store (SHA-256 of the instance's defining data) promoting the
  per-instance caches of :mod:`repro.tsp.candidates` to a cross-job,
  cross-tenant shared store;
* :mod:`~repro.service.backends` — job executors: ``"sim"`` runs
  :class:`~repro.core.session.SolveSession` cooperatively on the event
  loop; ``"process"`` runs it in a supervised worker process (a dead
  worker surfaces as a *failed* job, never a hung one);
* :mod:`~repro.service.server` — a newline-delimited-JSON TCP front end
  (``repro serve``) and :class:`~repro.service.server.ServiceClient`
  (``repro submit`` / ``status`` / ``result``).

Determinism contract: a job submitted with seed ``S`` returns a tour
bit-identical to a direct ``solve(..., rng=S)`` call — both run through
:class:`~repro.core.session.SolveSession`, and the scheduler only slices
*when* the session advances, never *what* it computes.  See
docs/SERVICE.md for API, queue semantics and the full contract.
"""

from .jobs import JobRecord, JobSpec, JobStatus, TenantPolicy
from .queue import WorkQueue
from .service import JobError, SolverService
from .server import ServiceClient, ServiceServer
from .store import InstanceStore, instance_digest, instance_nbytes

__all__ = [
    "SolverService",
    "JobError",
    "JobSpec",
    "JobRecord",
    "JobStatus",
    "TenantPolicy",
    "WorkQueue",
    "InstanceStore",
    "instance_digest",
    "instance_nbytes",
    "ServiceServer",
    "ServiceClient",
]
