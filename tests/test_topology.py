"""Tests for network topologies and the bootstrap hub."""

import pytest

from repro.distributed.hub import BootstrapNode, Hub
from repro.distributed.topology import (
    complete,
    get_topology,
    grid,
    hypercube,
    random_regular,
    ring,
    validate_topology,
)


class TestHypercube:
    def test_8_nodes_is_3_cube(self):
        topo = hypercube(8)
        assert all(len(v) == 3 for v in topo.values())
        validate_topology(topo)

    def test_adjacency_is_bit_flip(self):
        topo = hypercube(8)
        for i, nbrs in topo.items():
            for j in nbrs:
                assert bin(i ^ j).count("1") == 1

    def test_incomplete_hypercube_connected(self):
        for n in (3, 5, 6, 7, 9, 12):
            validate_topology(hypercube(n))

    def test_diameter_is_dimension(self):
        import networkx as nx

        g = nx.Graph()
        for i, nbrs in hypercube(16).items():
            g.add_edges_from((i, j) for j in nbrs)
        assert nx.diameter(g) == 4


class TestOtherTopologies:
    @pytest.mark.parametrize("n", [2, 3, 8, 13])
    def test_ring(self, n):
        topo = ring(n)
        validate_topology(topo)
        if n > 2:
            assert all(len(v) == 2 for v in topo.values())

    @pytest.mark.parametrize("n", [4, 9, 10])
    def test_grid(self, n):
        validate_topology(grid(n))

    def test_complete(self):
        topo = complete(6)
        validate_topology(topo)
        assert all(len(v) == 5 for v in topo.values())

    def test_random_regular(self):
        topo = random_regular(10, degree=3, rng=0)
        validate_topology(topo)
        assert all(len(v) == 3 for v in topo.values())

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError, match="even"):
            random_regular(5, degree=3)

    def test_get_topology(self):
        assert get_topology("hypercube", 8) == hypercube(8)
        with pytest.raises(KeyError, match="choices"):
            get_topology("torus", 8)


class TestValidate:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            validate_topology({0: (0,), 1: ()})

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="asymmetric"):
            validate_topology({0: (1,), 1: ()})

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            validate_topology({0: (1,), 1: (0,), 2: (3,), 3: (2,)})


class TestHub:
    def test_bootstrap_equals_direct_hypercube(self):
        # The paper's two-phase handshake must converge to the hypercube.
        for n in (2, 3, 5, 8, 11, 16):
            assert Hub.bootstrap(n) == hypercube(n)

    def test_early_joiners_get_sparse_lists(self):
        hub = Hub(dimension=3)
        first = BootstrapNode(0)
        known = hub.register(first)
        assert known == []  # nobody else known yet
        second = BootstrapNode(1)
        known2 = hub.register(second)
        assert known2 == [0]

    def test_contact_round_completes_links(self):
        hub = Hub(dimension=2)
        nodes = [BootstrapNode(i) for i in range(4)]
        for n in nodes:
            hub.register(n)
        # Before the contact round, node 0 does not know late joiners.
        assert nodes[0].neighbors < {1, 2}
        hub.run_contact_round()
        assert hub.final_topology() == hypercube(4)

    def test_capacity_enforced(self):
        hub = Hub(dimension=1)
        hub.register(BootstrapNode(0))
        hub.register(BootstrapNode(1))
        with pytest.raises(RuntimeError, match="full"):
            hub.register(BootstrapNode(2))

    def test_bad_dimension(self):
        with pytest.raises(ValueError, match="dimension"):
            Hub(dimension=0)
