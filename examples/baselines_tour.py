"""Tour of the comparator algorithms (paper §4.3, Table 2).

On one instance, runs the Held-Karp lower bound and all four solvers the
paper compares — ABCC-CLK, LKH-style, Walshaw multilevel CLK and
Cook-Seymour tour merging — and prints a Table-2-shaped summary
(quality vs work).

Run:  python examples/baselines_tour.py
"""

from repro.analysis import excess_percent, fmt_pct, format_table
from repro.baselines import lkh_style, multilevel_clk, tour_merging
from repro.bounds import held_karp_bound
from repro.localsearch import chained_lk
from repro.tsp import generators

BUDGET_VSEC = 6.0


def main() -> None:
    instance = generators.country(200, rng=12)
    print(f"instance: {instance.name} (national-class), n={instance.n}\n")

    print("computing Held-Karp lower bound (1-tree ascent)...")
    hk = held_karp_bound(instance, max_iterations=120)
    print(f"  HK bound = {hk.bound:.1f} after {hk.iterations} iterations\n")

    runs = {}
    runs["ABCC-CLK"] = chained_lk(instance, budget_vsec=BUDGET_VSEC, rng=0)
    runs["LKH-style"] = lkh_style(instance, budget_vsec=BUDGET_VSEC, rng=0)
    runs["MLC-LK (Walshaw)"] = multilevel_clk(instance, rng=0)
    runs["TM-CLK (Cook&Seymour)"] = tour_merging(
        instance, n_tours=6, clk_kicks=40, rng=0
    )

    rows = []
    for name, res in runs.items():
        rows.append((
            name,
            res.length,
            fmt_pct(excess_percent(res.length, hk.bound)),
            f"{res.work_vsec:.2f}",
        ))
    print(format_table(
        ["algorithm", "length", "vs HK bound", "work (vsec)"], rows,
        title=f"comparators at <= {BUDGET_VSEC} vsec",
    ))
    print("\nexpected shape (paper Table 2): multilevel is fastest but "
          "weakest; tour merging and LKH-style reach the best tours; "
          "CLK sits between.")


if __name__ == "__main__":
    main()
