"""Tests for 2-opt, Or-opt and the Lin-Kernighan engine."""

import numpy as np
import pytest

from repro.bounds import held_karp_exact
from repro.construct import quick_boruvka
from repro.localsearch import LKConfig, LinKernighan, lin_kernighan, or_opt, two_opt
from repro.tsp import generators
from repro.tsp.tour import Tour, random_tour
from repro.utils.work import WorkMeter


class TestTwoOpt:
    def test_improves_and_stays_valid(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        before = t.length
        gain = two_opt(t)
        assert t.is_valid()
        assert t.length == t.recompute_length()
        assert t.length == before - gain
        assert gain > 0

    def test_no_crossing_edges_after(self, rng):
        # On a convex polygon the unique 2-opt optimum is the hull order.
        angles = np.sort(rng.uniform(0, 2 * np.pi, 16))
        coords = 2000 + 1000 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        from repro.tsp.instance import TSPInstance

        inst = TSPInstance(coords=coords)
        t = random_tour(inst, rng)
        two_opt(t, neighbor_k=15)
        hull = Tour(inst, np.arange(16))
        assert t == hull

    def test_idempotent(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        two_opt(t)
        assert two_opt(t) == 0

    def test_respects_budget(self, rng):
        inst = generators.uniform(200, rng=0)
        t = random_tour(inst, rng)
        meter = WorkMeter(budget_ops=500)
        two_opt(t, meter=meter)
        assert meter.ops >= 500  # stopped once exhausted
        assert t.is_valid()
        assert t.length == t.recompute_length()


class TestOrOpt:
    def test_improves_relocation_case(self):
        # A city stuck between far-apart neighbours: 2-opt can't fix a
        # pure relocation, Or-opt can.
        from repro.tsp.instance import TSPInstance

        coords = np.array([
            [0, 0], [100, 0], [200, 0], [300, 0],
            [300, 100], [200, 100], [100, 100], [0, 100],
            [150, 50],  # the stray city
        ], dtype=float)
        inst = TSPInstance(coords=coords)
        # Place stray city (8) in a bad spot of an otherwise decent loop.
        t = Tour(inst, [0, 8, 1, 2, 3, 4, 5, 6, 7])
        before = t.length
        gain = or_opt(t, neighbor_k=8)
        assert t.is_valid()
        assert t.length == t.recompute_length() == before - gain

    def test_valid_on_random(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        or_opt(t)
        assert t.is_valid()
        assert t.length == t.recompute_length()

    def test_seg_too_large_raises(self, square_instance):
        t = Tour.identity(square_instance)
        with pytest.raises(ValueError, match="segment"):
            or_opt(t, max_seg=3)


class TestLinKernighan:
    def test_valid_and_consistent(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        before = t.length
        gain = lin_kernighan(t)
        assert t.is_valid()
        assert t.length == t.recompute_length()
        assert t.length == before - gain

    def test_at_least_as_good_as_two_opt(self, rng):
        # LK subsumes 2-opt moves over the same candidates.
        for seed in range(4):
            inst = generators.uniform(70, rng=seed + 10)
            t1 = quick_boruvka(inst)
            t2 = t1.copy()
            two_opt(t1, neighbor_k=8)
            lin_kernighan(t2, LKConfig(neighbor_k=8))
            assert t2.length <= t1.length * 1.002, seed

    def test_finds_optimum_on_tiny(self):
        hits = 0
        for seed in range(6):
            inst = generators.uniform(10, rng=seed)
            opt, _ = held_karp_exact(inst)
            t = quick_boruvka(inst)
            lin_kernighan(t, LKConfig(neighbor_k=9))
            hits += t.length == opt
        assert hits >= 5  # LK from QB nearly always solves n=10

    def test_dirty_seeding_only_touches_region(self, rng):
        inst = generators.uniform(100, rng=4)
        t = quick_boruvka(inst)
        lin_kernighan(t)
        length = t.length
        # Fully optimized: empty dirty set means nothing to do.
        engine = LinKernighan(inst)
        gain = engine.optimize(t, dirty=[])
        assert gain == 0 and t.length == length

    def test_reusable_engine(self, small_instance, rng):
        engine = LinKernighan(small_instance)
        a = random_tour(small_instance, rng)
        b = random_tour(small_instance, rng)
        engine.optimize(a)
        engine.optimize(b)
        assert a.is_valid() and b.is_valid()
        assert a.length == a.recompute_length()
        assert b.length == b.recompute_length()

    def test_budget_interruptible(self, rng):
        inst = generators.uniform(300, rng=1)
        t = random_tour(inst, rng)
        meter = WorkMeter(budget_ops=2_000)
        lin_kernighan(t, meter=meter)
        assert t.is_valid()
        assert t.length == t.recompute_length()

    def test_wrong_instance_raises(self, small_instance, tiny_instance):
        engine = LinKernighan(small_instance)
        t = Tour.identity(tiny_instance)
        with pytest.raises(ValueError, match="different instance"):
            engine.optimize(t)

    def test_never_worsens(self, small_instance, rng):
        for _ in range(5):
            t = random_tour(small_instance, rng)
            before = t.length
            lin_kernighan(t)
            assert t.length <= before

    def test_explicit_instance(self, explicit_instance):
        t = quick_boruvka(explicit_instance, rng=0)
        before = t.length
        lin_kernighan(t, LKConfig(neighbor_k=6))
        assert t.is_valid()
        assert t.length == t.recompute_length()
        assert t.length <= before

    def test_quadrant_neighbor_config(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        lin_kernighan(t, LKConfig(neighbor_k=8, use_quadrant_neighbors=True))
        assert t.is_valid()
        assert t.length == t.recompute_length()


class TestLKConfig:
    def test_breadth_at(self):
        cfg = LKConfig(breadth=(5, 3))
        assert cfg.breadth_at(0) == 5
        assert cfg.breadth_at(1) == 3
        assert cfg.breadth_at(2) == 1
        assert cfg.breadth_at(49) == 1
