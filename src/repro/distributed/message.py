"""Message types exchanged between nodes.

Mirrors the paper's protocol: nodes broadcast locally-improved tours to
their topology neighbours, and an ``OPTIMUM_FOUND`` notification when the
target length is reached (one of the paper's termination criteria).
Payloads are plain arrays (no shared mutable state between nodes), so the
same types serialize across the multiprocessing backend unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["MessageKind", "Message", "tour_payload"]


class MessageKind(enum.Enum):
    """Protocol message kinds."""

    TOUR = "tour"
    OPTIMUM_FOUND = "optimum_found"


@dataclass(frozen=True)
class Message:
    """One network message.

    Attributes
    ----------
    kind:
        Protocol message kind.
    sender:
        Originating node id.
    length:
        Tour length carried (also set on OPTIMUM_FOUND).
    order:
        Tour order array (copied; receivers may keep it).
    sent_at:
        Sender's virtual clock at send time (vsec).
    seq:
        Monotone per-network sequence number; makes delivery ordering and
        event replay deterministic.
    """

    kind: MessageKind
    sender: int
    length: int
    order: Optional[np.ndarray] = field(default=None, compare=False)
    sent_at: float = 0.0
    seq: int = 0

    def size_bytes(self) -> int:
        """Approximate wire size (for the latency model)."""
        base = 64
        if self.order is not None:
            base += 4 * len(self.order)
        return base


def tour_payload(tour) -> tuple:
    """Snapshot a tour into an immutable (order, length) payload."""
    order = np.array(tour.order, dtype=np.int32, copy=True)
    order.setflags(write=False)
    return order, int(tour.length)
