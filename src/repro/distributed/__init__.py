"""Network substrate: messages, topologies, hub, simulator, MP backend."""

from .hub import BootstrapNode, Hub
from .message import Message, MessageKind, tour_payload
from .network import LatencyModel, NetworkStats, SimulatedNetwork
from .simulator import SimulationResult, Simulator, run_simulation
from .topology import get_topology, validate_topology

__all__ = [
    "Message",
    "MessageKind",
    "tour_payload",
    "LatencyModel",
    "NetworkStats",
    "SimulatedNetwork",
    "Hub",
    "BootstrapNode",
    "get_topology",
    "validate_topology",
    "Simulator",
    "SimulationResult",
    "run_simulation",
]
