"""Seeded schedule fuzzing: deterministic event-loop interleaving shuffles.

The service layer's determinism contract (docs/SERVICE.md) promises that
a job's *result* is a pure function of instance and seed no matter how
the event loop interleaves the coroutines around it.  asyncio's default
loop runs ready callbacks in strict FIFO order, so a normal test only
ever exercises ONE interleaving — the friendliest one.  This module
makes the scheduler adversarial while staying reproducible:

* :class:`ShuffleEventLoop` — a ``SelectorEventLoop`` whose
  ``call_soon`` inserts each ready callback at a position chosen by an
  injected ``numpy`` Generator instead of appending it.  Same seed, same
  schedule — a failure found by seed 17 is replayed by seed 17.
* :class:`ScheduleFuzzer` — runs one async ``main()`` under a seeded
  shuffle loop, collects unhandled task exceptions, and reports tasks
  still pending after main returns (the "clean shutdown" contract:
  ``close()`` must leave nothing behind).
* :func:`fuzz` — the harness loop: replay a coroutine factory across
  many seeds and raise on the first dirty report.

Typical use (see ``tests/test_schedfuzz.py``)::

    from repro.utils.schedfuzz import fuzz

    async def scenario():
        async with SolverService(backend="sim") as svc:
            job = svc.submit(inst, seed=3)
            result = await svc.result(job)
            assert result.best_tour.length == expected

    fuzz(scenario, seeds=range(8))

Only the *ready-callback order* is shuffled; timer ordering
(``call_later``) and I/O readiness keep their semantics, so a shuffled
run is a legal schedule some real deployment could produce — every bug
found here is a real bug.
"""

from __future__ import annotations

import asyncio
import selectors
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Iterable, List, Optional

import numpy as np

from .rng import ensure_rng

__all__ = ["ShuffleEventLoop", "ScheduleFuzzer", "FuzzReport", "fuzz"]


class ShuffleEventLoop(asyncio.SelectorEventLoop):
    """Event loop that permutes ready-callback order from a seeded RNG.

    ``call_soon`` normally appends to the ready deque (FIFO).  Here a
    freshly queued **coroutine resumption** — a handle whose callback is
    bound to an :class:`asyncio.Task` (its ``__step``/``__wakeup``) — is
    moved to a random position, so tasks that became runnable in the
    same tick execute in a seed-dependent order.  Two deliberate limits
    keep every shuffled schedule *legal*:

    * infrastructure callbacks (transport plumbing, future bookkeeping
      like ``_sock_write_done``) are never relocated — asyncio's
      internals are entitled to their FIFO ordering, and breaking it
      manufactures failures no real deployment can produce;
    * a task resumption is never moved ahead of a pending
      infrastructure callback, because futures schedule their cleanup
      callbacks *before* the dependent task wakeup and the transport
      layer relies on that prefix order.

    ``call_soon_threadsafe`` is also left alone: it runs on foreign
    threads where touching the RNG would race.
    """

    def __init__(self, rng: np.random.Generator):
        super().__init__(selectors.DefaultSelector())
        self._shuffle_rng = rng
        self._shuffling = True

    @staticmethod
    def _is_task_callback(callback) -> bool:
        return isinstance(getattr(callback, "__self__", None), asyncio.Task)

    def call_soon(self, callback, *args, context=None):
        handle = super().call_soon(callback, *args, context=context)
        if self._shuffling and self._is_task_callback(callback):
            ready = self._ready  # type: ignore[attr-defined]
            # The handle we just queued is at the tail (append order);
            # relocate it among the queued task resumptions.  Guard
            # against internals drifting across Python versions — if
            # the tail is not our handle, leave the queue alone rather
            # than corrupt it.
            if ready and ready[-1] is handle and len(ready) > 1:
                ready.pop()
                start = 0
                for i in range(len(ready) - 1, -1, -1):
                    if not self._is_task_callback(
                            getattr(ready[i], "_callback", None)):
                        start = i + 1
                        break
                pos = int(self._shuffle_rng.integers(
                    start, len(ready) + 1))
                ready.insert(pos, handle)
        return handle


@dataclass
class FuzzReport:
    """Outcome of one seeded run: what, if anything, was left dirty."""

    seed: int
    result: object = None
    #: reprs of tasks still pending after main() returned.
    pending: List[str] = field(default_factory=list)
    #: ``message: exception`` strings from the loop exception handler
    #: (fire-and-forget task failures, destroyed-pending warnings...).
    unhandled: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.pending and not self.unhandled

    def summary(self) -> str:
        if self.clean:
            return f"seed {self.seed}: clean"
        parts = [f"seed {self.seed}:"]
        for repr_ in self.pending:
            parts.append(f"  pending task: {repr_}")
        for msg in self.unhandled:
            parts.append(f"  unhandled: {msg}")
        return "\n".join(parts)


class ScheduleFuzzer:
    """Run coroutines under one seeded shuffle schedule."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def run(
        self,
        main_factory: Callable[[], Awaitable],
        timeout: Optional[float] = 60.0,
    ) -> FuzzReport:
        """Run ``main_factory()`` to completion under the shuffled loop.

        Returns a :class:`FuzzReport`; exceptions raised *by main* (a
        failed assertion in the scenario) propagate to the caller, while
        exceptions asyncio would only log — failed fire-and-forget
        tasks, pending-task destruction — are captured in the report.
        ``timeout`` (wall seconds) bounds a deadlocked schedule.
        """
        rng = ensure_rng(self.seed)
        loop = ShuffleEventLoop(rng)
        report = FuzzReport(seed=self.seed)

        def on_exception(loop_, context):
            exc = context.get("exception")
            message = context.get("message", "unhandled error")
            report.unhandled.append(
                f"{message}: {exc!r}" if exc is not None else str(message))

        loop.set_exception_handler(on_exception)
        try:
            main = main_factory()
            if timeout is not None:
                main = asyncio.wait_for(main, timeout=timeout)
            report.result = loop.run_until_complete(main)
            # One stabilization tick so done-callbacks scheduled by the
            # final await get to run before we inventory leftovers.
            loop.run_until_complete(asyncio.sleep(0))
            leftovers = [
                t for t in asyncio.all_tasks(loop) if not t.done()
            ]
            report.pending.extend(repr(t) for t in leftovers)
            for t in leftovers:
                t.cancel()
            if leftovers:
                loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True))
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.run_until_complete(loop.shutdown_default_executor())
            finally:
                asyncio.set_event_loop(None)
                loop.close()
        return report


def fuzz(
    main_factory: Callable[[], Awaitable],
    seeds: Iterable[int] = range(8),
    timeout: Optional[float] = 60.0,
) -> List[FuzzReport]:
    """Replay ``main_factory`` across ``seeds``; raise on any dirty run.

    Returns the per-seed reports (so callers can also compare
    ``report.result`` across seeds for schedule-independence).
    """
    reports: List[FuzzReport] = []
    for seed in seeds:
        report = ScheduleFuzzer(seed).run(main_factory, timeout=timeout)
        if not report.clean:
            raise AssertionError(
                "schedule fuzzer found a dirty run\n" + report.summary())
        reports.append(report)
    return reports
