"""Nearest-neighbour tour construction."""

from __future__ import annotations

import numpy as np

from ..tsp.tour import Tour
from ..utils.rng import ensure_rng

__all__ = ["nearest_neighbor"]


def nearest_neighbor(instance, start: int | None = None, rng=None,
                     neighbor_k: int = 16) -> Tour:
    """Greedy nearest-neighbour tour from ``start`` (random if omitted).

    Scans the candidate list first and falls back to a vectorized scan over
    all unvisited cities when every candidate is already visited.
    """
    n = instance.n
    rng = ensure_rng(rng)
    if start is None:
        start = int(rng.integers(n))
    if not (0 <= start < n):
        raise ValueError(f"start city {start} out of range [0, {n})")
    neighbors = instance.neighbor_lists(min(neighbor_k, n - 1))
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.intp)
    order[0] = start
    visited[start] = True
    cur = start
    for k in range(1, n):
        nxt = -1
        for j in neighbors[cur]:
            if not visited[j]:
                nxt = int(j)
                break
        if nxt < 0:
            cand = np.flatnonzero(~visited)
            d = instance.dist_many(cur, cand)
            nxt = int(cand[np.argmin(d)])
        order[k] = nxt
        visited[nxt] = True
        cur = nxt
    return Tour(instance, order)
