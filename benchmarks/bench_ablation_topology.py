"""Ablation: network topology.

The paper fixes an 8-node hypercube and leaves the influence of the
structure to future work ("perspectives"); this ablation runs the same
workload over ring, grid, hypercube, and complete topologies plus fully
isolated nodes (no edges), separating the value of *any* cooperation
from the value of *denser* cooperation.
"""

import numpy as np

from _common import (
    emit,
    N_NODES,
    N_RUNS,
    dist_budget_per_node,
    print_banner,
    reference,
    run_dist,
    seeds,
)
from repro.analysis import fmt_pct, format_table, mean_excess_percent
from repro.distributed.topology import get_topology

INSTANCE = "fl300"

TOPOLOGIES = {
    "isolated (no cooperation)": {i: () for i in range(N_NODES)},
    "ring (degree 2)": get_topology("ring", N_NODES),
    "grid (degree 2-3)": get_topology("grid", N_NODES),
    "hypercube (degree 3, paper)": get_topology("hypercube", N_NODES),
    "complete (degree 7)": get_topology("complete", N_NODES),
}


def _experiment():
    ref, _ = reference(INSTANCE)
    budget = dist_budget_per_node(INSTANCE)
    rows = []
    means = {}
    for label, topo in TOPOLOGIES.items():
        lengths = []
        msgs = []
        for s in seeds(9600, N_RUNS):
            res = run_dist(INSTANCE, "random_walk", s, budget=budget,
                           topology=dict(topo))
            lengths.append(res.best_length)
            msgs.append(res.network_stats.messages)
        excess = mean_excess_percent(lengths, ref)
        means[label] = excess
        rows.append((label, int(np.mean(lengths)), fmt_pct(excess),
                     int(np.mean(msgs))))
    return rows, means


def test_ablation_topology(once):
    rows, means = once(_experiment)
    print_banner(
        f"Ablation: topology on {INSTANCE} (8 nodes, avg of {N_RUNS} runs)",
    )
    emit(format_table(
        ["topology", "mean length", "excess", "messages"], rows,
    ))

    # Shape: any connected topology beats (or matches) isolated nodes.
    isolated = means["isolated (no cooperation)"]
    connected = [v for k, v in means.items() if not k.startswith("isolated")]
    assert min(connected) <= isolated + 1e-9
    emit(f"\nbest connected excess {min(connected):.3f}% vs isolated "
          f"{isolated:.3f}%")
