"""Instance analytics.

Structural features of a TSP instance that predict solver behaviour:
nearest-neighbour distance statistics (plateau indicator — the fl-class
drilling plates have huge numbers of *equal* NN distances), density
dispersion (clustered vs uniform), and bounding geometry.  Used by the
CLI's ``info`` command and handy when deciding kick strategies (the
paper's Table 3/4 discussion ties strategy quality to instance class).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["InstanceStats", "instance_stats"]


@dataclass(frozen=True)
class InstanceStats:
    """Summary features of an instance."""

    n: int
    edge_weight_type: str
    #: Bounding-box width/height (geometric instances; 0 otherwise).
    bbox: tuple
    #: Mean / median / std of nearest-neighbour distances.
    nn_mean: float
    nn_median: float
    nn_std: float
    #: Fraction of cities sharing the modal NN distance (plateau signal;
    #: ~0 for uniform instances, large for drilling plates and grids).
    nn_mode_share: float
    #: Variance-to-mean ratio of grid-cell occupancy (1 = Poisson/uniform,
    #: >> 1 = clustered).
    dispersion: float
    #: Crude class guess from the features.
    guessed_class: str

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"cities            : {self.n}",
            f"metric            : {self.edge_weight_type}",
            f"bounding box      : {self.bbox[0]:.0f} x {self.bbox[1]:.0f}",
            f"NN distance       : mean {self.nn_mean:.1f}, "
            f"median {self.nn_median:.1f}, std {self.nn_std:.1f}",
            f"NN modal share    : {self.nn_mode_share:.0%}"
            "  (equal-distance plateau indicator)",
            f"density dispersion: {self.dispersion:.1f}"
            "  (1 = uniform, >> 1 = clustered)",
            f"guessed class     : {self.guessed_class}",
        ]
        return "\n".join(lines)


def instance_stats(instance, grid_cells: int = 8) -> InstanceStats:
    """Compute :class:`InstanceStats` for a (geometric) instance.

    EXPLICIT instances get NN statistics from the matrix and no
    geometric features.
    """
    n = instance.n
    if instance.coords is not None:
        coords = instance.coords
        tree = cKDTree(coords)
        d, _ = tree.query(coords, k=2)
        nn = d[:, 1]
        span = coords.max(axis=0) - coords.min(axis=0)
        bbox = (float(span[0]), float(span[1]))
        lo = coords.min(axis=0)
        ij = np.floor(
            (coords - lo) / (span + 1e-9) * grid_cells
        ).clip(0, grid_cells - 1)
        flat = (ij[:, 0] * grid_cells + ij[:, 1]).astype(int)
        counts = np.bincount(flat, minlength=grid_cells * grid_cells)
        dispersion = float(counts.var() / max(counts.mean(), 1e-9))
    else:
        m = instance.distance_matrix().astype(float)
        mm = m + np.diag(np.full(n, np.inf))
        nn = mm.min(axis=1)
        bbox = (0.0, 0.0)
        dispersion = 1.0

    rounded = np.round(nn, 3)
    _, mode_counts = np.unique(rounded, return_counts=True)
    mode_share = float(mode_counts.max() / n)

    if mode_share > 0.25:
        guess = "drilling/grid (fl, pr, pcb, pla class)"
    elif dispersion > 3.0:
        guess = "clustered / national (C, fnl, fi class)"
    else:
        guess = "uniform random (E class)"

    return InstanceStats(
        n=n,
        edge_weight_type=instance.edge_weight_type,
        bbox=bbox,
        nn_mean=float(nn.mean()),
        nn_median=float(np.median(nn)),
        nn_std=float(nn.std()),
        nn_mode_share=mode_share,
        dispersion=dispersion,
        guessed_class=guess,
    )
