"""Branch-and-bound exact TSP solver using Held-Karp 1-tree bounds.

Complements the O(n^2 2^n) dynamic program: where the DP is limited by
memory to n <= 18, branch-and-bound with 1-tree lower bounds and
degree-based branching solves structured instances of 25-35 cities in
reasonable time, giving the test-suite exact optima at sizes where the
heuristics' behaviour is more interesting.

The scheme is classic Held-Karp/Volgenant-Jonker:

* at each node of the search tree, edges are *included* (forced) or
  *excluded* (forbidden);
* the bound is the minimum 1-tree under the node's constraints after a
  short subgradient ascent;
* branching picks a city with 1-tree degree > 2 and splits on its
  non-forced 1-tree edges;
* the incumbent starts from Chained LK, so pruning is strong
  immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

__all__ = ["BranchAndBoundResult", "branch_and_bound"]

_INF = float("inf")


@dataclass
class BranchAndBoundResult:
    """Outcome of an exact branch-and-bound run."""

    length: int
    order: np.ndarray
    nodes_explored: int
    proven_optimal: bool


@dataclass
class _Node:
    """One subproblem: forced and forbidden edge sets (frozen tuples)."""

    included: frozenset
    excluded: frozenset
    bound: float = 0.0

    def __lt__(self, other):  # heapq tie-break
        return self.bound < other.bound


def _constrained_one_tree(w: np.ndarray, included: frozenset,
                          excluded: frozenset):
    """Minimum 1-tree with forced/forbidden edges; returns (weight,
    edges, degrees) or None when infeasible."""
    n = w.shape[0]
    wc = w.copy()
    big = w.max() * n + 1.0
    for (i, j) in excluded:
        wc[i, j] = wc[j, i] = big
    # Forcing edges: give them a strongly negative-ish (tiny) weight so
    # the MST must take them, then correct the weight afterwards.
    bonus = big
    for (i, j) in included:
        wc[i, j] = wc[j, i] = wc[i, j] - bonus

    special = 0
    rest = np.arange(1, n)
    sub = wc[np.ix_(rest, rest)]
    shift = sub.min() - 1.0
    mst = minimum_spanning_tree(sub - shift).tocoo()
    if len(mst.data) != n - 2:  # pragma: no cover - degenerate
        return None
    edges = [(int(rest[a]), int(rest[b])) for a, b in zip(mst.row, mst.col)]

    ws = wc[special].copy()
    ws[special] = _INF
    forced_special = [j for (i, j) in _normalize(included) if i == special]
    chosen = list(forced_special[:2])
    if len(chosen) > 2:
        return None
    for j in np.argsort(ws, kind="stable"):
        if len(chosen) >= 2:
            break
        j = int(j)
        if j != special and j not in chosen:
            if (min(special, j), max(special, j)) in excluded:
                continue
            chosen.append(j)
    if len(chosen) < 2:
        return None
    edges.extend((special, j) for j in chosen)

    # Check all forced edges made it; infeasible otherwise.
    edge_set = {(min(a, b), max(a, b)) for a, b in edges}
    for e in included:
        if e not in edge_set:
            return None
    for e in excluded:
        if e in edge_set:
            return None
    weight = sum(w[a, b] for a, b in edges)
    degrees = np.zeros(n, dtype=np.int64)
    for a, b in edges:
        degrees[a] += 1
        degrees[b] += 1
    return weight, edges, degrees


def _normalize(edges) -> set:
    return {(min(a, b), max(a, b)) for (a, b) in edges}


def _ascent_bound(w, included, excluded, iterations=40):
    """Short subgradient ascent under constraints; returns
    (bound, edges, degrees) of the best 1-tree, or None if infeasible."""
    n = w.shape[0]
    pi = np.zeros(n)
    best = None
    t = None
    prev_grad = np.zeros(n)
    for _ in range(iterations):
        res = _constrained_one_tree(w + pi[:, None] + pi[None, :],
                                    included, excluded)
        if res is None:
            return None
        weight, edges, degrees = res
        bound = weight - 2.0 * pi.sum()
        if best is None or bound > best[0]:
            best = (bound, edges, degrees)
        if np.all(degrees == 2):
            return (bound, edges, degrees)
        grad = degrees - 2.0
        if t is None:
            t = max(abs(bound), 1.0) / (2.0 * n)
        pi = pi + t * (0.7 * grad + 0.3 * prev_grad)
        prev_grad = grad
        t *= 0.92
    return best


def _tour_from_edges(n: int, edges) -> Optional[np.ndarray]:
    adj: list[list[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    if any(len(x) != 2 for x in adj):
        return None
    order = [0]
    prev, cur = -1, 0
    for _ in range(n - 1):
        nxt = adj[cur][1] if adj[cur][0] == prev else adj[cur][0]
        order.append(nxt)
        prev, cur = cur, nxt
    if len(set(order)) != n:
        return None
    return np.array(order, dtype=np.intp)


def branch_and_bound(
    instance,
    max_nodes: int = 200_000,
    initial_upper: Optional[int] = None,
) -> BranchAndBoundResult:
    """Solve an instance exactly (or report the incumbent at the node cap).

    ``initial_upper`` seeds the incumbent; by default a short Chained LK
    run provides it (and very often *is* optimal — B&B then only proves
    it).
    """
    import heapq

    from ..localsearch.chained_lk import chained_lk

    n = instance.n
    w = instance.distance_matrix().astype(np.float64)

    # Always build a real incumbent tour; ``initial_upper`` only
    # tightens the pruning threshold further (caller-supplied bound).
    inc = chained_lk(instance, max_kicks=max(30, 4 * n), rng=0)
    upper = inc.length
    best_order = inc.tour.order.copy()
    if initial_upper is not None:
        upper = min(upper, int(initial_upper))

    root = _Node(frozenset(), frozenset())
    res = _ascent_bound(w, root.included, root.excluded)
    if res is None:
        raise RuntimeError("root relaxation infeasible")
    root.bound = res[0]
    heap = [root]
    explored = 0
    proven = False

    while heap:
        if explored >= max_nodes:
            break
        node = heapq.heappop(heap)
        if node.bound >= upper - 0.5:  # integer costs: prune at upper-1
            proven = True  # best-first: all remaining bounds are >= this
            break
        res = _ascent_bound(w, node.included, node.excluded)
        explored += 1
        if res is None:
            continue
        bound, edges, degrees = res
        if bound >= upper - 0.5:
            continue
        order = _tour_from_edges(n, edges)
        if order is not None:
            length = instance.tour_length(order)
            if length < upper:
                upper = int(length)
                best_order = order
            continue
        # Branch on a city of degree > 2 (Volgenant-Jonker style
        # partition over its non-forced 1-tree edges): child k forces
        # the first k-1 free edges and excludes the k-th; the final
        # child forces them all (and, once the city's degree saturates
        # at 2, excludes every other edge at that city).
        over = int(np.argmax(degrees))
        incident = [
            (min(a, b), max(a, b)) for (a, b) in edges
            if a == over or b == over
        ]
        free = [e for e in incident if e not in node.included]
        if not free:  # pragma: no cover - defensive
            continue
        forced_so_far: list = []
        for e in free:
            child_inc = frozenset(node.included | set(forced_so_far))
            child_exc = frozenset(node.excluded | {e})
            heapq.heappush(heap, _Node(child_inc, child_exc, bound))
            forced_so_far.append(e)
        all_inc = node.included | set(free)
        deg_over = sum(1 for (a, b) in all_inc if over in (a, b))
        if deg_over == 2:
            others = {
                (min(over, j), max(over, j))
                for j in range(n) if j != over
            } - set(all_inc)
            heapq.heappush(
                heap,
                _Node(frozenset(all_inc),
                      frozenset(node.excluded | others), bound),
            )
        elif deg_over < 2:  # pragma: no cover - over-degree city has >= 2
            heapq.heappush(
                heap,
                _Node(frozenset(all_inc), frozenset(node.excluded), bound),
            )
        # deg_over > 2: forcing all free edges is infeasible; drop.
    else:
        proven = True

    # Report the incumbent's true length (``upper`` may be a caller
    # claim tighter than any tour actually held).
    return BranchAndBoundResult(
        length=int(instance.tour_length(best_order)),
        order=best_order,
        nodes_explored=explored,
        proven_optimal=proven and explored < max_nodes,
    )
