"""Paper Table 2: normalized comparison with related heuristics.

    "Normalized computation time compared with other algorithms
    [Helsgaun LKH, Walshaw multi-level CLK, Cook & Seymour tour
    merging].  Distance is the distance to the optimum (or Held-Karp
    lower bound)."

Each comparator runs its own protocol (as in the paper, where the
numbers come from differently-configured codes): LKH-style with its
preprocessing, MLC with Walshaw's N/10 kick schedule, TM with 10 source
tours — against DistCLK's *first-iteration* quality and its
time-to-match for each comparator's final quality.  Shape to reproduce:
multilevel is much faster but weaker than DistCLK's first iteration;
LKH-style and TM reach comparable quality; DistCLK's relative cost
drops as instances grow.
"""

from _common import (
    emit,
    N_NODES,
    dist_budget_per_node,
    print_banner,
    reference,
    run_dist,
)
from repro.analysis import (
    excess_percent,
    fmt_pct,
    fmt_time,
    format_table,
    time_to_target,
)
from repro.baselines import lkh_style, multilevel_clk, tour_merging
from repro.tsp import registry

INSTANCES = ("pr200", "fl300", "fnl350", "usa500")


def _experiment():
    results = {}
    for name in INSTANCES:
        inst = registry.get_instance(name)
        ref, _ = reference(name)
        # DistCLK gets its full Table-5 protocol budget x2 (it is the
        # paper's winner-by-endgame; the comparators run their own
        # protocols, as the paper's Table 2 mixes differently-budgeted
        # codes).
        budget = 2.0 * dist_budget_per_node(name)

        dist = run_dist(name, "random_walk", 1, budget=budget)
        first_iter_len = dist.global_trace[0][1]

        comparators = {
            "LKH-style": lkh_style(inst, budget_vsec=budget * N_NODES, rng=1),
            "MLC-N/10-LK": multilevel_clk(inst, kicks_per_city=0.1, rng=1),
            "TM-CLK": tour_merging(inst, n_tours=10,
                                   clk_kicks=max(20, inst.n // 2), rng=1),
        }
        per_alg = {}
        for alg, res in comparators.items():
            # DistCLK time to match this comparator's final quality,
            # in *total* CPU (per-node x N, the paper's normalization).
            t = time_to_target(dist.global_trace, res.length)
            per_alg[alg] = {
                "alg_excess": excess_percent(res.length, ref),
                "alg_vsec": res.work_vsec,
                "dist_match_total_vsec": None if t is None else t * N_NODES,
            }
        results[name] = {
            "dist_first_excess": excess_percent(first_iter_len, ref),
            "dist_final_excess": excess_percent(dist.best_length, ref),
            "per_alg": per_alg,
        }
    return results


def test_table2_related_work(once):
    results = once(_experiment)
    print_banner(
        "Table 2: comparators vs DistCLK (times in vsec; DistCLK match "
        "time is total CPU = per-node x 8)",
    )
    rows = []
    for name, rec in results.items():
        for alg, a in rec["per_alg"].items():
            rows.append((
                name,
                alg,
                fmt_pct(a["alg_excess"]),
                fmt_time(a["alg_vsec"], 1),
                fmt_time(a["dist_match_total_vsec"], 1),
            ))
        rows.append((
            name, "DistCLK(first iter)",
            fmt_pct(rec["dist_first_excess"]), "-", "-",
        ))
        rows.append((
            name, "DistCLK(final)",
            fmt_pct(rec["dist_final_excess"]), "-", "-",
        ))
    emit(format_table(
        ["instance", "algorithm", "excess", "alg vsec",
         "DistCLK match (total vsec)"],
        rows,
    ))

    # Shape checks from the paper's discussion:
    # (1) Walshaw's multilevel final quality does not beat DistCLK final
    # by much (paper: strictly worse; our reimplemented multilevel is a
    # relatively stronger comparator at Python scale, see EXPERIMENTS.md).
    ml_worse = sum(
        rec["per_alg"]["MLC-N/10-LK"]["alg_excess"]
        >= rec["dist_final_excess"] - 0.30
        for rec in results.values()
    )
    emit(f"\nshape check: multilevel roughly <= DistCLK(final) on "
          f"{ml_worse}/{len(results)} instances")
    assert ml_worse >= len(results) - 1
    # (2) DistCLK eventually matches every comparator quality it can see.
    matched = sum(
        a["dist_match_total_vsec"] is not None
        for rec in results.values()
        for a in rec["per_alg"].values()
    )
    total = sum(len(rec["per_alg"]) for rec in results.values())
    emit(f"shape check: DistCLK matched comparator quality in "
          f"{matched}/{total} cases")
    assert matched >= int(0.6 * total)
