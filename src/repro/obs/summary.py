"""Trace summarization: time-in-phase, flame-style aggregation, histograms.

Everything here renders plain monospace text (the repository's reporting
idiom) from a :class:`~repro.obs.export.TraceData`.  The module is
self-contained — it deliberately does not import :mod:`repro.analysis`
(which itself imports :mod:`repro.obs` for trace IO); cross-*run*
comparison lives in :mod:`repro.analysis.obs_report`.
"""

from __future__ import annotations

from collections import defaultdict

from .export import TraceData

__all__ = [
    "time_in_phase",
    "phase_table",
    "flame_table",
    "histogram_table",
    "summarize_trace",
]

#: Canonical EA phases, in loop order (extra phases are appended after).
PHASES = ("perturb", "optimize", "select", "broadcast")


def _table(headers, rows, title=None) -> str:
    """Minimal monospace table (first column left-aligned)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for k, c in enumerate(row):
            widths[k] = max(widths[k], len(c))

    def render(row):
        return "  ".join(
            c.ljust(widths[k]) if k == 0 else c.rjust(widths[k])
            for k, c in enumerate(row)
        )

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in cells)
    return "\n".join(lines)


def _fmt(v: float) -> str:
    return f"{v:.3f}"


def time_in_phase(trace: TraceData) -> dict:
    """``{node: {phase: virtual seconds}}`` from ``phase.*`` spans.

    Spans without a ``node`` label aggregate under ``"-"``.  Wall-only
    phase spans (select/broadcast consume no virtual time) contribute
    0.0 vsec but still claim their column.
    """
    out: dict = defaultdict(lambda: defaultdict(float))
    for span in trace.spans_named("phase"):
        phase = span.name.split(".", 1)[1] if "." in span.name else span.name
        node = span.labels.get("node", "-")
        out[node][phase] += span.vdur
    return {n: dict(p) for n, p in out.items()}


def _node_sort_key(node):
    try:
        return (0, int(node))
    except (TypeError, ValueError):
        return (1, str(node))


def phase_table(trace: TraceData) -> str:
    """Per-node time-in-phase table, in virtual seconds.

    The ``total`` column is the sum over phases; ``clock`` is the node's
    final virtual clock when the run exported it (the ``node.clock_vsec``
    gauge) — for a run without free bootstrap the two agree to float
    precision, which is the accounting check the CI smoke test asserts.
    """
    phases_seen = time_in_phase(trace)
    if not phases_seen:
        return "no phase spans in trace (was the run traced?)"
    extra = sorted(
        {p for per in phases_seen.values() for p in per} - set(PHASES)
    )
    columns = [p for p in PHASES + tuple(extra)
               if any(p in per for per in phases_seen.values())
               or p in PHASES]
    clocks = {
        dict(key).get("node", "-"): value
        for key, value in trace.gauges.get("node.clock_vsec", {}).items()
    }
    headers = ["node"] + list(columns) + ["total", "clock"]
    rows = []
    totals = defaultdict(float)
    for node in sorted(phases_seen, key=_node_sort_key):
        per = phases_seen[node]
        total = sum(per.values())
        row = [node] + [_fmt(per.get(p, 0.0)) for p in columns]
        row += [_fmt(total)]
        clock = clocks.get(str(node))
        row += [_fmt(clock) if clock is not None else "-"]
        rows.append(row)
        for p in columns:
            totals[p] += per.get(p, 0.0)
        totals["total"] += total
    if len(rows) > 1:
        rows.append(
            ["all"] + [_fmt(totals[p]) for p in columns]
            + [_fmt(totals["total"]), "-"]
        )
    return _table(headers, rows,
                  title="time in phase (virtual seconds per node)")


def _span_paths(trace: TraceData) -> dict:
    """Aggregate spans by root-to-leaf name path.

    Returns ``{path tuple: [count, wall, vsec]}``.
    """
    by_index = {s.index: s for s in trace.spans}
    agg: dict = defaultdict(lambda: [0, 0.0, 0.0])
    for span in trace.spans:
        path = [span.name]
        parent = span.parent
        hops = 0
        while parent is not None and hops < 64:
            p = by_index.get(parent)
            if p is None:
                break
            path.append(p.name)
            parent = p.parent
            hops += 1
        key = tuple(reversed(path))
        entry = agg[key]
        entry[0] += 1
        entry[1] += span.wall
        entry[2] += span.vdur
    return agg


def flame_table(trace: TraceData, max_rows: int = 40) -> str:
    """Flame-style table: span paths, indented, heaviest subtrees first.

    Inclusive totals per path (a parent's row includes its children);
    sorted depth-first so the rendering reads like a collapsed flame
    graph, with both wall seconds and virtual seconds per path.
    """
    agg = _span_paths(trace)
    if not agg:
        return "no spans in trace"
    # Depth-first order: every path directly follows its parent path,
    # siblings sorted heaviest-first (virtual time, then wall).
    children: dict = defaultdict(list)
    for path in agg:
        children[path[:-1]].append(path)
    for sibs in children.values():
        sibs.sort(key=lambda p: (-agg[p][2], -agg[p][1], p))
    ordered: list = []

    def visit(path):
        ordered.append((path, agg[path]))
        for child in children.get(path, ()):
            visit(child)

    for root in children.get((), ()):
        visit(root)
    if len(ordered) < len(agg):  # orphaned paths (defensive)
        seen = {p for p, _ in ordered}
        ordered.extend(
            (p, agg[p]) for p in sorted(agg) if p not in seen
        )
    rows = []
    for path, (count, wall, vsec) in ordered[:max_rows]:
        indent = "  " * (len(path) - 1)
        rows.append([f"{indent}{path[-1]}", count, _fmt(wall), _fmt(vsec)])
    title = "span tree (inclusive; wall s / virtual s)"
    if len(ordered) > max_rows:
        title += f" — top {max_rows} of {len(ordered)} paths"
    return _table(["span", "count", "wall_s", "vsec"], rows, title=title)


def _render_hist(name: str, labels: dict, hist) -> str:
    lines = [
        f"{name} {labels or ''}  count={hist.count}  "
        f"mean={hist.mean:.6f}  min={hist.min:.6f}  max={hist.max:.6f}"
        if hist.count else f"{name} {labels or ''}  count=0"
    ]
    if not hist.count:
        return "\n".join(lines)
    peak = max(hist.counts) or 1
    bounds = list(hist.bounds) + [float("inf")]
    prev = 0.0
    for bound, count in zip(bounds, hist.counts):
        if count == 0:
            prev = bound
            continue
        bar = "#" * max(1, round(24 * count / peak))
        lines.append(f"  ({prev:>9.3g}, {bound:>9.3g}]  {count:>8}  {bar}")
        prev = bound
    return "\n".join(lines)


def histogram_table(trace: TraceData, prefix: str = "") -> str:
    """Render every histogram series whose name starts with ``prefix``."""
    blocks = []
    for name in sorted(trace.hists):
        if not name.startswith(prefix):
            continue
        for key, hist in sorted(trace.hists[name].items()):
            blocks.append(_render_hist(name, dict(key), hist))
    if not blocks:
        return f"no histograms matching {prefix!r} in trace"
    return "\n".join(blocks)


def summarize_trace(trace: TraceData) -> str:
    """The full ``python -m repro trace summarize`` rendering."""
    parts = [phase_table(trace), ""]
    parts += [flame_table(trace), ""]
    parts += ["message latency (virtual seconds):",
              histogram_table(trace, "net.msg_latency")]
    queue = histogram_table(trace, "net.queue_depth")
    if "no histograms" not in queue:
        parts += ["", "inbox depth at collect:", queue]
    mp = histogram_table(trace, "mp.")
    if "no histograms" not in mp:
        parts += ["", "process-backend health:", mp]
    counters = [
        (name, dict(key), value)
        for name in sorted(trace.counters)
        for key, value in sorted(trace.counters[name].items())
        if name.startswith("engine.")
    ]
    if counters:
        rows = defaultdict(dict)
        fields = []
        for name, labels, value in counters:
            short = name.split(".", 1)[1]
            if short not in fields:
                fields.append(short)
            rows[labels.get("node", labels.get("run", "-"))][short] = value
        table_rows = [
            [node] + [int(rows[node].get(f, 0)) for f in fields]
            for node in sorted(rows, key=_node_sort_key)
        ]
        parts += ["", _table(["node"] + fields, table_rows,
                             title="engine telemetry (counters)")]
    svc = histogram_table(trace, "svc.")
    if "no histograms" not in svc:
        parts += ["", "service health (queue depth / job latency):", svc]
    svc_counters = [
        (name, dict(key), value)
        for name in sorted(trace.counters)
        for key, value in sorted(trace.counters[name].items())
        if name.startswith("svc.")
    ]
    if svc_counters:
        rows = defaultdict(dict)
        fields = []
        for name, labels, value in svc_counters:
            short = name.split(".", 1)[1]
            if short not in fields:
                fields.append(short)
            rows[labels.get("tenant", "-")][short] = value
        table_rows = [
            [tenant] + [int(rows[tenant].get(f, 0)) for f in fields]
            for tenant in sorted(rows)
        ]
        parts += ["", _table(["tenant"] + fields, table_rows,
                             title="service jobs by tenant (counters)")]
    return "\n".join(parts)
