"""Tests for TSPInstance."""

import numpy as np
import pytest

from repro.tsp.instance import TSPInstance
from repro.tsp import generators


class TestConstruction:
    def test_requires_coords_or_matrix(self):
        with pytest.raises(ValueError, match="coords"):
            TSPInstance(coords=None, edge_weight_type="EUC_2D")

    def test_explicit_requires_matrix(self):
        with pytest.raises(ValueError, match="matrix"):
            TSPInstance(coords=None, edge_weight_type="EXPLICIT")

    def test_explicit_rejects_asymmetric(self):
        m = np.array([[0, 1, 2], [3, 0, 4], [2, 4, 0]])
        with pytest.raises(ValueError, match="symmetric"):
            TSPInstance(edge_weight_type="EXPLICIT", matrix=m)

    def test_explicit_rejects_nonzero_diag(self):
        m = np.array([[1, 2, 3], [2, 1, 4], [3, 4, 1]])
        with pytest.raises(ValueError, match="diagonal"):
            TSPInstance(edge_weight_type="EXPLICIT", matrix=m)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError, match="at least 3"):
            TSPInstance(coords=np.zeros((2, 2)))

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown edge weight"):
            TSPInstance(coords=np.zeros((5, 2)), edge_weight_type="WARP")

    def test_coords_become_readonly(self, small_instance):
        with pytest.raises(ValueError):
            small_instance.coords[0, 0] = 1.0


class TestDistances:
    def test_dist_consistency_scalar_vs_matrix(self, small_instance):
        m = small_instance.distance_matrix()
        for i in (0, 10, 59):
            for j in (3, 42):
                assert small_instance.dist(i, j) == m[i, j]

    def test_dist_many_matches_dist(self, small_instance):
        js = np.array([1, 5, 30])
        d = small_instance.dist_many(0, js)
        for k, j in enumerate(js):
            assert d[k] == small_instance.dist(0, int(j))

    def test_explicit_dist(self, explicit_instance):
        m = explicit_instance.matrix
        assert explicit_instance.dist(2, 5) == m[2, 5]
        assert np.array_equal(
            explicit_instance.dist_many(1, np.array([0, 4])), m[1, [0, 4]]
        )

    def test_matrix_cached_and_readonly(self, small_instance):
        m1 = small_instance.distance_matrix()
        m2 = small_instance.distance_matrix()
        assert m1 is m2
        with pytest.raises(ValueError):
            m1[0, 1] = 99


class TestTourLength:
    def test_matches_manual_sum(self, small_instance, rng):
        order = rng.permutation(small_instance.n)
        expected = sum(
            small_instance.dist(int(order[k]), int(order[(k + 1) % len(order)]))
            for k in range(len(order))
        )
        assert small_instance.tour_length(order) == expected

    def test_rotation_invariant(self, small_instance, rng):
        order = rng.permutation(small_instance.n)
        assert small_instance.tour_length(order) == small_instance.tour_length(
            np.roll(order, 17)
        )

    def test_reversal_invariant(self, small_instance, rng):
        order = rng.permutation(small_instance.n)
        assert small_instance.tour_length(order) == small_instance.tour_length(
            order[::-1].copy()
        )

    def test_wrong_size_raises(self, small_instance):
        with pytest.raises(ValueError, match="once"):
            small_instance.tour_length(np.arange(5))

    def test_explicit_tour_length(self, explicit_instance, rng):
        order = rng.permutation(explicit_instance.n)
        m = explicit_instance.matrix
        expected = sum(
            m[order[k], order[(k + 1) % len(order)]] for k in range(len(order))
        )
        assert explicit_instance.tour_length(order) == expected

    def test_square_optimum(self, square_instance):
        # Perimeter tour = 400; diagonal crossing tour is longer.
        assert square_instance.tour_length(np.array([0, 1, 2, 3])) == 400
        crossing = square_instance.tour_length(np.array([0, 2, 1, 3]))
        assert crossing > 400


class TestNeighborLists:
    def test_shape_and_no_self(self, small_instance):
        nl = small_instance.neighbor_lists(5)
        assert nl.shape == (small_instance.n, 5)
        for i in range(small_instance.n):
            assert i not in nl[i]

    def test_sorted_by_distance(self, small_instance):
        nl = small_instance.neighbor_lists(6)
        for i in range(small_instance.n):
            d = [small_instance.dist(i, int(j)) for j in nl[i]]
            assert d == sorted(d)

    def test_truly_nearest(self, small_instance):
        nl = small_instance.neighbor_lists(4)
        m = small_instance.distance_matrix()
        for i in range(small_instance.n):
            row = m[i].astype(float).copy()
            row[i] = np.inf
            true_d = np.sort(row)[:4]
            got_d = np.array([m[i, j] for j in nl[i]])
            assert np.array_equal(got_d, true_d), i

    def test_k_clamped_to_n_minus_1(self, tiny_instance):
        nl = tiny_instance.neighbor_lists(100)
        assert nl.shape == (9, 8)

    def test_cache_per_k(self, small_instance):
        assert small_instance.neighbor_lists(5) is small_instance.neighbor_lists(5)

    def test_explicit_instance_neighbors(self, explicit_instance):
        nl = explicit_instance.neighbor_lists(3)
        m = explicit_instance.matrix
        for i in range(explicit_instance.n):
            row = m[i].astype(float).copy()
            row[i] = np.inf
            assert m[i, nl[i][0]] == row.min()


class TestQuadrantNeighbors:
    def test_shape(self, small_instance):
        q = small_instance.quadrant_neighbor_lists(2)
        assert q.shape == (small_instance.n, 8)

    def test_no_self_no_dup(self, small_instance):
        q = small_instance.quadrant_neighbor_lists(2)
        for i in range(small_instance.n):
            row = q[i].tolist()
            assert i not in row
            assert len(set(row)) == len(row)

    def test_covers_quadrants_when_possible(self):
        # Cross layout: one point per quadrant around the centre.
        inst = generators.uniform(5, rng=0)
        coords = np.array(
            [[50.0, 50.0], [60.0, 60.0], [40.0, 60.0], [40.0, 40.0], [60.0, 40.0]]
        )
        from repro.tsp.instance import TSPInstance

        inst = TSPInstance(coords=coords)
        q = inst.quadrant_neighbor_lists(1)
        assert set(q[0]) == {1, 2, 3, 4}

    def test_rows_sorted_by_distance_including_padding(self):
        # Collinear points: for an endpoint city, every other city sits
        # in one quadrant, so most of its row comes from the global
        # nearest-neighbour padding.  ``_candidates`` early-breaks on
        # the first too-long neighbour, so the padded tail must be
        # distance-sorted like the rest of the row.
        from repro.tsp.instance import TSPInstance

        coords = np.array([[10.0 * i, 0.0] for i in range(12)])
        inst = TSPInstance(coords=coords)
        q = inst.quadrant_neighbor_lists(2)
        for i in range(inst.n):
            d = [inst.dist(i, int(j)) for j in q[i]]
            assert d == sorted(d), f"row {i} not distance-sorted: {d}"

    def test_clustered_rows_sorted(self, small_instance):
        q = small_instance.quadrant_neighbor_lists(2)
        for i in range(small_instance.n):
            d = [small_instance.dist(i, int(j)) for j in q[i]]
            assert d == sorted(d)


class TestSharedRowCaches:
    """LK solvers share list-form rows via the instance-level cache."""

    def test_neighbor_row_lists_cached(self, small_instance):
        a = small_instance.neighbor_row_lists(5)
        assert a is small_instance.neighbor_row_lists(5)
        assert a == [list(map(int, r))
                     for r in small_instance.neighbor_lists(5)]

    def test_quadrant_row_lists_cached(self, small_instance):
        a = small_instance.quadrant_neighbor_row_lists(2)
        assert a is small_instance.quadrant_neighbor_row_lists(2)

    def test_matrix_rows_cached_and_consistent(self, small_instance):
        rows = small_instance.matrix_row_lists()
        assert rows is small_instance.matrix_row_lists()
        m = small_instance.distance_matrix()
        assert rows[2][3] == int(m[2, 3])

    def test_lk_objects_share_rows(self, small_instance):
        from repro.localsearch.lin_kernighan import LinKernighan

        lk1 = LinKernighan(small_instance)
        lk2 = LinKernighan(small_instance)
        assert lk1._neighbor_rows is lk2._neighbor_rows
        assert lk1._dist_rows is lk2._dist_rows
