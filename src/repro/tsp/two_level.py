"""Two-level doubly-linked tour representation.

The array representation in :mod:`repro.tsp.tour` pays O(n) per 2-opt
flip (segment reversal).  Production LK codes (Concorde's ``linkern``,
LKH) use a *two-level list* (Chrobak-Szymacha-Krawczyk / Fredman et al.):
the tour is a doubly-linked list of ~sqrt(n) *segments*, each holding
~sqrt(n) consecutive cities plus a ``reversed`` flag; ``next``/``prev``/
``between`` stay O(1) while a flip costs O(sqrt n) amortized — segment
splits at the flip endpoints, reversal of the segment sub-list (flag
toggles only), and occasional global rebuilds when segments fragment.

:class:`TwoLevelTour` mirrors the :class:`~repro.tsp.tour.Tour` query
interface and adds :meth:`flip`; the equivalence property tests drive
both representations through identical operation sequences.  The LK
engine itself keeps the array tour (for the testbed sizes the constant
factors favour it); this structure is the upgrade path for 10^5-city
instances and is exercised by the engine-scaling bench.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["TwoLevelTour"]


class _Segment:
    """One segment: a slice of cities plus orientation and ordering key."""

    __slots__ = ("cities", "reversed", "order_key")

    def __init__(self, cities: list, order_key: int):
        self.cities = cities
        self.reversed = False
        self.order_key = order_key

    def __len__(self) -> int:
        return len(self.cities)

    def city_at(self, k: int) -> int:
        """k-th city in tour orientation."""
        if self.reversed:
            return self.cities[len(self.cities) - 1 - k]
        return self.cities[k]

    def tour_cities(self) -> list:
        return self.cities[::-1] if self.reversed else list(self.cities)


class TwoLevelTour:
    """A Hamiltonian cycle with O(sqrt n) flips.

    City bookkeeping: ``_seg_of[city]`` is the segment object holding the
    city and ``_pos_of[city]`` its *storage* index inside that segment
    (orientation-independent); tour positions are derived on demand.
    """

    def __init__(self, instance, order: Iterable[int]):
        self.instance = instance
        self.n = instance.n
        arr = np.asarray(list(order) if not isinstance(order, np.ndarray)
                         else order, dtype=np.intp)
        if arr.shape != (self.n,):
            raise ValueError(f"tour must have {self.n} cities")
        if np.any(np.bincount(arr, minlength=self.n) != 1):
            raise ValueError("order is not a permutation of 0..n-1")
        self.length = int(instance.tour_length(arr))
        self._group = max(4, int(math.isqrt(self.n)) + 1)
        self._build(arr.tolist())

    # -- construction -------------------------------------------------------

    def _build(self, order: list) -> None:
        g = self._group
        self._segments: list[_Segment] = []
        self._seg_of: dict[int, _Segment] = {}
        self._pos_of: dict[int, int] = {}
        for start in range(0, self.n, g):
            chunk = order[start : start + g]
            seg = _Segment(chunk, 0)
            self._segments.append(seg)
            for k, c in enumerate(chunk):
                self._seg_of[c] = seg
                self._pos_of[c] = k
        self._renumber()

    def _renumber(self) -> None:
        for i, seg in enumerate(self._segments):
            seg.order_key = i

    # -- queries --------------------------------------------------------------

    def order_array(self) -> np.ndarray:
        """Materialize the tour order (O(n); for interop and testing)."""
        out: list[int] = []
        for seg in self._segments:
            out.extend(seg.tour_cities())
        return np.array(out, dtype=np.intp)

    def _seg_index(self, seg: _Segment) -> int:
        return seg.order_key

    def _tour_pos_in_seg(self, city: int) -> int:
        seg = self._seg_of[city]
        k = self._pos_of[city]
        return (len(seg) - 1 - k) if seg.reversed else k

    def sequence_key(self, city: int) -> tuple:
        """Totally ordered key along the tour: (segment, offset)."""
        seg = self._seg_of[city]
        return (seg.order_key, self._tour_pos_in_seg(city))

    def next(self, city: int) -> int:
        seg = self._seg_of[city]
        k = self._tour_pos_in_seg(city)
        if k + 1 < len(seg):
            return seg.city_at(k + 1)
        nxt_seg = self._segments[(seg.order_key + 1) % len(self._segments)]
        return nxt_seg.city_at(0)

    def prev(self, city: int) -> int:
        seg = self._seg_of[city]
        k = self._tour_pos_in_seg(city)
        if k > 0:
            return seg.city_at(k - 1)
        prv_seg = self._segments[(seg.order_key - 1) % len(self._segments)]
        return prv_seg.city_at(len(prv_seg) - 1)

    def between(self, a: int, b: int, c: int) -> bool:
        """True iff b lies strictly within the oriented arc a -> c."""
        ka, kb, kc = (
            self.sequence_key(a), self.sequence_key(b), self.sequence_key(c)
        )
        if ka < kc:
            return ka < kb < kc
        return kb > ka or kb < kc

    # -- mutation ----------------------------------------------------------------

    def _split_before(self, city: int) -> None:
        """Ensure ``city`` starts its segment (split if mid-segment)."""
        seg = self._seg_of[city]
        k = self._tour_pos_in_seg(city)
        if k == 0:
            return
        tour_cities = seg.tour_cities()
        left, right = tour_cities[:k], tour_cities[k:]
        idx = self._segments.index(seg)
        seg_l = _Segment(left, 0)
        seg_r = _Segment(right, 0)
        self._segments[idx : idx + 1] = [seg_l, seg_r]
        for s in (seg_l, seg_r):
            for p, c in enumerate(s.cities):
                self._seg_of[c] = s
                self._pos_of[c] = p
        self._renumber()

    def flip(self, a: int, b: int) -> None:
        """Reverse the tour path from ``a`` to ``b`` (inclusive, in tour
        orientation).  The cycle's edge set changes exactly as
        ``Tour.reverse_segment(pos(a), pos(b))`` does.

        Does not maintain ``length``; callers apply deltas (same contract
        as the array tour).
        """
        if a == b:
            return
        self._split_before(a)
        after_b = self.next(b)
        if after_b != a:
            self._split_before(after_b)
        ia = self._seg_index(self._seg_of[a])
        ib = self._seg_index(self._seg_of[b])
        m = len(self._segments)
        if ia <= ib:
            span = list(range(ia, ib + 1))
        else:
            span = list(range(ia, m)) + list(range(0, ib + 1))
        segs = [self._segments[i] for i in span]
        for seg in segs:
            seg.reversed = not seg.reversed
        segs.reverse()
        # Write the reversed block back into the (cyclic) span slots.
        for slot, seg in zip(span, segs):
            self._segments[slot] = seg
        self._renumber()
        if len(self._segments) > 4 * max(4, int(math.isqrt(self.n)) + 1):
            self._rebuild()

    def _rebuild(self) -> None:
        self._build(self.order_array().tolist())

    # -- integrity ------------------------------------------------------------------

    def is_valid(self) -> bool:
        """Structural invariants: partition, bookkeeping, linkage."""
        seen: list[int] = []
        for seg in self._segments:
            if len(seg) == 0:
                return False
            for p, c in enumerate(seg.cities):
                if self._seg_of.get(c) is not seg or self._pos_of.get(c) != p:
                    return False
            seen.extend(seg.cities)
        if sorted(seen) != list(range(self.n)):
            return False
        order = self.order_array()
        for k in range(self.n):
            if self.next(int(order[k])) != int(order[(k + 1) % self.n]):
                return False
            if self.prev(int(order[(k + 1) % self.n])) != int(order[k]):
                return False
        return True

    def recompute_length(self) -> int:
        return int(self.instance.tour_length(self.order_array()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TwoLevelTour(n={self.n}, segments={len(self._segments)}, "
            f"length={self.length})"
        )
