"""3-opt local search (all reconnection types).

The paper's introduction frames LK as the answer to k-opt's cost
explosion ("for most applications k is limited to k <= 3"); this module
supplies that k=3 reference point.  For each triple of removed edges
``(a,b) (c,d) (e,f)`` (b = next(a) etc., positions ordered a < c < e)
the seven proper reconnections reduce, after symmetry, to four move
types on an array tour:

* type 1 — reverse segment b..c                      (a 2-opt move)
* type 2 — reverse segment d..e                      (a 2-opt move)
* type 3 — reverse both segments
* type 4 — exchange the segments without reversal    (the or-3opt /
  double-bridge-like pure reorder; the only one not expressible as
  2-opts without intermediate worsening)

Candidates come from the pluggable provider layer with gain-based
pruning, and the shared engine's don't-look queue keeps re-optimization
local — the same machinery as :mod:`repro.localsearch.two_opt`, one
level up.
"""

from __future__ import annotations

import numpy as np

from ..tsp.candidates import KNNCandidates, as_candidate_set
from ..tsp.tour import Tour
from ..utils.sanitize import check_tour, sanitize_enabled
from ..utils.work import WorkMeter
from .engine import (
    DistView,
    DontLookQueue,
    OpStats,
    register_operator,
    resolve_kernel,
)

__all__ = ["three_opt"]


def _apply_type4(tour: Tour, pa: int, rc: int, re: int) -> None:
    """Reconnect a-d..e-b..c-f: segment exchange without reversal.

    ``rc``/``re`` are the positions of c and e relative to a (so b..c is
    the relative range 1..rc and d..e is rc+1..re).  Rotates the array so
    b sits at index 0, then swaps the two blocks — O(n), like the
    double-bridge it generalizes.
    """
    n = tour.n
    order = np.roll(tour.order, -(pa + 1) % n)  # b at 0, a at n-1
    seg1 = order[0:rc].copy()        # b..c
    seg2 = order[rc:re].copy()       # d..e
    order[0:re] = np.concatenate([seg2, seg1])
    tour.order = order
    tour.position[order] = np.arange(n, dtype=np.intp)


def _two_opt_by_edges(tour: Tour, p: int, q: int, r: int, s: int) -> int:
    """Apply the unique feasible 2-opt removing tour edges {p,q}, {r,s}.

    Orientation-safe: reads successor relations fresh, so it is immune
    to direction flips caused by earlier shorter-side reversals.
    Returns the number of cities moved.
    """
    if tour.next(p) != q:
        p, q = q, p
    if tour.next(r) != s:
        r, s = s, r
    assert tour.next(p) == q and tour.next(r) == s, "edges not in tour"
    return tour.reverse_segment(tour.position[q], tour.position[r])


@register_operator("three_opt")
def three_opt(tour: Tour, neighbor_k: int = 6,
              meter: WorkMeter | None = None, *, candidates=None,
              stats: OpStats | None = None,
              view: DistView | None = None,
              kernel: str | None = None) -> int:
    """Optimize ``tour`` in place to 3-opt optimality over the candidates.

    First-improvement over the four move types; returns the total gain.
    O(n * k^2) per sweep — noticeably slower than LK for the same
    quality, which is precisely the comparison the bench draws.

    ``kernel`` is forwarded to the embedded 2-opt passes; the triple scan
    itself has no vector tier (its inner loop is dominated by tour
    bookkeeping, not gain evaluation), so ``"vector"`` runs it on the row
    path — identical by the kernel contract.
    """
    from .two_opt import two_opt

    kernel = resolve_kernel(kernel)
    inst = tour.instance
    n = tour.n
    if n < 6:
        return 0
    meter = meter if meter is not None else WorkMeter()
    stats = stats if stats is not None else OpStats()
    provider = (
        as_candidate_set(candidates) if candidates is not None
        else KNNCandidates(min(neighbor_k, n - 1))
    )
    neighbor_rows = provider.row_lists(inst)
    view = view if view is not None else DistView(inst)
    rows = view.rows if kernel != "scalar" else None
    dist = view.dist

    def d(i, j):
        return rows[i][j] if rows is not None else dist(i, j)

    # 3-opt subsumes 2-opt; reach the 2-opt fixpoint first so the triple
    # scan below only hunts for genuine 3-exchanges.
    total_2opt = two_opt(tour, meter=meter, candidates=provider,
                         stats=stats, view=view, kernel=kernel)

    queue = DontLookQueue(n)
    queue.fill(range(n))
    total = 0
    scanned = 0
    moves = 0
    swaps = 0

    def try_city(a: int) -> int:
        """Search one improving 3-opt move with first removed edge at
        ``(a, next(a))``; returns the (positive) gain or 0."""
        nonlocal scanned, swaps
        pa = int(tour.position[a])
        b = tour.next(a)
        da = rows[a] if rows is not None else None
        d_ab = da[b] if da is not None else dist(a, b)
        for c in neighbor_rows[a]:
            meter.tick()
            scanned += 1
            if c == a or c == b:
                continue
            d_cd = d(c, tour.next(c))
            g1 = d_ab + d_cd
            d_ac = da[c] if da is not None else dist(a, c)
            if d_ac >= g1:
                continue
            for e in neighbor_rows[b]:
                meter.tick()
                scanned += 1
                if e in (a, b, c):
                    continue
                f = tour.next(e)
                if f in (a, c):
                    continue
                # Order the three cut positions along the tour from a.
                pc = int(tour.position[c])
                pe = int(tour.position[e])
                rc = (pc - pa) % n
                re = (pe - pa) % n
                if not (0 < rc < re):
                    continue
                dd = tour.next(c)
                d_ef = d(e, f)
                removed = d_ab + d_cd + d_ef
                # The four reconnections.
                moves_considered = (
                    # type 1: a-c b-d, e-f kept -> plain 2-opt on (a,c)
                    (d_ac + d(b, dd) + d_ef, 1),
                    # type 2: c-e d-f, a-b kept -> 2-opt on (c,e)
                    (d_ab + d(c, e) + d(dd, f), 2),
                    # type 3: a-c b-e d-f (both reversals)
                    (d_ac + d(b, e) + d(dd, f), 3),
                    # type 4: a-d e-b c-f (segment exchange)
                    (d(a, dd) + d(e, b) + d(c, f), 4),
                )
                for added, move in moves_considered:
                    delta = added - removed
                    if delta < 0:
                        gain = -delta
                        if move == 1:
                            moved = tour.reverse_segment(
                                (pa + 1) % n, pc)
                        elif move == 2:
                            moved = tour.reverse_segment(
                                (pc + 1) % n, pe)
                        elif move == 3:
                            # First reversal may flip array direction
                            # (shorter-side trick), so the second
                            # exchange goes by edges, not positions.
                            moved = tour.reverse_segment((pa + 1) % n, pc)
                            moved += _two_opt_by_edges(tour, b, dd, e, f)
                        else:
                            _apply_type4(tour, pa, rc, re)
                            moved = re
                        meter.tick(moved + 1)
                        swaps += moved
                        tour.length += delta
                        for city in (a, b, c, dd, e, f):
                            queue.push(int(city))
                        return gain
        return 0

    while queue and not meter.exhausted():
        a = queue.pop()
        gain = try_city(a)
        if gain > 0:
            total += gain
            moves += 1
            queue.push(a)
            # Interleave: a 3-exchange may open plain 2-opt gains.
            total += two_opt(tour, meter=meter, candidates=provider,
                             stats=stats, view=view, kernel=kernel)
    stats.calls += 1
    stats.candidate_scans += scanned
    stats.moves += moves
    stats.segment_swaps += swaps
    stats.queue_wakeups += queue.wakeups
    stats.gain += total
    if sanitize_enabled():
        check_tour(tour, "three_opt")
    return total + total_2opt
