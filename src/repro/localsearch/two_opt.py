"""2-opt local search with neighbour lists and don't-look bits.

Kept separate from the LK engine both as a baseline for tests (anything LK
produces must be 2-opt-optimal w.r.t. the same candidate lists) and as a
cheap repair step for the multilevel baseline.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..tsp.tour import Tour
from ..utils.work import WorkMeter

__all__ = ["two_opt"]


def two_opt(tour: Tour, neighbor_k: int = 8, meter: WorkMeter | None = None) -> int:
    """Optimize ``tour`` in place to 2-opt optimality over k-NN candidates.

    Returns the total improvement (non-negative).  Interruptible: stops at a
    move boundary once ``meter`` is exhausted.
    """
    inst = tour.instance
    n = tour.n
    meter = meter if meter is not None else WorkMeter()
    neighbors = inst.neighbor_lists(min(neighbor_k, n - 1))
    dist = inst.dist

    queue = deque(range(n))
    in_queue = np.ones(n, dtype=bool)
    total = 0

    def wake(city: int) -> None:
        if not in_queue[city]:
            in_queue[city] = True
            queue.append(city)

    while queue and not meter.exhausted():
        a = queue.popleft()
        in_queue[a] = False
        improved_here = True
        while improved_here and not meter.exhausted():
            improved_here = False
            for b in (tour.next(a), tour.prev(a)):
                d_ab = dist(a, b)
                for c in neighbors[a]:
                    c = int(c)
                    meter.tick()
                    d_ac = dist(a, c)
                    if d_ac >= d_ab:
                        break  # neighbours sorted by distance
                    if c == b:
                        continue
                    # Orient: the move removes (a,b) and (c,d) where d is
                    # c's neighbour on the same side as b is of a.
                    d_city = tour.next(c) if b == tour.next(a) else tour.prev(c)
                    if d_city == a:
                        continue
                    delta = d_ac + dist(b, d_city) - d_ab - dist(c, d_city)
                    if delta < 0:
                        if b == tour.next(a):
                            # remove (a->b), (c->d): reverse b..c
                            moved = tour.reverse_segment(
                                tour.position[b], tour.position[c]
                            )
                        else:
                            # remove (b->a), (d->c): reverse a..d
                            moved = tour.reverse_segment(
                                tour.position[a], tour.position[d_city]
                            )
                        meter.tick(moved if moved else 1)
                        tour.length += delta
                        total -= delta
                        for city in (a, b, c, d_city):
                            wake(int(city))
                        improved_here = True
                        break
                if improved_here:
                    break
    return total
