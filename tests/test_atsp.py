"""Tests for the ATSP symmetric embedding."""

import numpy as np
import pytest

from repro.localsearch import chained_lk
from repro.tsp.atsp import (
    atsp_to_stsp,
    atsp_tour_cost,
    directed_tour_from_symmetric,
)


def _random_atsp(n, seed, max_cost=100):
    rng = np.random.default_rng(seed)
    c = rng.integers(1, max_cost, size=(n, n)).astype(np.int64)
    np.fill_diagonal(c, 0)
    return c


def _exact_atsp(c):
    """Brute-force directed optimum (tiny n)."""
    from itertools import permutations

    n = c.shape[0]
    best = None
    for perm in permutations(range(1, n)):
        order = (0,) + perm
        cost = atsp_tour_cost(c, np.array(order))
        if best is None or cost < best:
            best = cost
    return best


class TestEmbedding:
    def test_embedding_shape_and_symmetry(self):
        c = _random_atsp(6, 1)
        inst, offset = atsp_to_stsp(c)
        assert inst.n == 12
        assert np.array_equal(inst.matrix, inst.matrix.T)
        assert offset < 0  # n arcs carry the +shift each

    def test_ghost_edges_zero(self):
        c = _random_atsp(5, 2)
        inst, _ = atsp_to_stsp(c)
        for i in range(5):
            assert inst.matrix[i, i + 5] == 0

    def test_arc_costs_placed(self):
        c = _random_atsp(5, 3)
        inst, offset = atsp_to_stsp(c)
        shift = -offset // 5
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert inst.matrix[i + 5, j] == c[i, j] + shift

    def test_rejects_nonzero_diagonal(self):
        c = np.ones((4, 4), dtype=int)
        with pytest.raises(ValueError, match="diagonal"):
            atsp_to_stsp(c)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            atsp_to_stsp(np.zeros((3, 4)))


class TestSolveRoundTrip:
    @pytest.mark.parametrize("seed", range(3))
    def test_clk_solves_atsp_to_optimality(self, seed):
        c = _random_atsp(7, seed + 10)
        opt = _exact_atsp(c)
        inst, offset = atsp_to_stsp(c)
        # The embedding's big-M edges make the landscape spiky; give the
        # solver the known optimum as a target and a real budget.
        res = chained_lk(
            inst, budget_vsec=6.0, target_length=opt - offset, rng=seed,
            lk_config=__import__("repro.localsearch", fromlist=["LKConfig"])
            .LKConfig(neighbor_k=10, breadth=(6, 3)),
        )
        order = directed_tour_from_symmetric(res.tour, 7)
        cost = atsp_tour_cost(c, order)
        assert sorted(order.tolist()) == list(range(7))
        assert cost == res.length + offset
        # CLK on the embedding should find the directed optimum at n=7.
        assert cost == opt

    def test_infeasible_tour_detected(self):
        c = _random_atsp(5, 4)
        inst, _ = atsp_to_stsp(c)
        from repro.tsp.tour import Tour

        bad = Tour(inst, np.arange(10))  # 0..9: does not alternate
        with pytest.raises(ValueError, match="does not encode"):
            directed_tour_from_symmetric(bad, 5)

    def test_asymmetry_matters(self):
        # A matrix where direction changes the answer: going "with the
        # grain" is cheap, against it expensive.
        n = 6
        c = np.full((n, n), 50, dtype=np.int64)
        for i in range(n):
            c[i, (i + 1) % n] = 1  # cheap forward ring
        np.fill_diagonal(c, 0)
        inst, offset = atsp_to_stsp(c)
        res = chained_lk(inst, max_kicks=40, rng=0)
        order = directed_tour_from_symmetric(res.tour, n)
        assert atsp_tour_cost(c, order) == n  # the forward ring
