"""Tests for the TSPLIB parser/writer."""

import numpy as np
import pytest

from repro.tsp import tsplib
from repro.tsp.tour import Tour

SAMPLE_EUC = """\
NAME : demo5
TYPE : TSP
COMMENT : five cities
DIMENSION : 5
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0.0 0.0
2 10.0 0.0
3 10.0 10.0
4 0.0 10.0
5 5.0 5.0
EOF
"""

SAMPLE_FULL_MATRIX = """\
NAME: m4
TYPE: TSP
DIMENSION: 4
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: FULL_MATRIX
EDGE_WEIGHT_SECTION
0 2 4 6
2 0 3 5
4 3 0 7
6 5 7 0
EOF
"""

SAMPLE_UPPER_ROW = """\
NAME: u4
TYPE: TSP
DIMENSION: 4
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: UPPER_ROW
EDGE_WEIGHT_SECTION
2 4 6
3 5
7
EOF
"""

SAMPLE_LOWER_DIAG = """\
NAME: l4
TYPE: TSP
DIMENSION: 4
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW
EDGE_WEIGHT_SECTION
0
2 0
4 3 0
6 5 7 0
EOF
"""


class TestParse:
    def test_euc2d_roundtrip_fields(self):
        inst = tsplib.loads(SAMPLE_EUC)
        assert inst.name == "demo5"
        assert inst.n == 5
        assert inst.edge_weight_type == "EUC_2D"
        assert inst.comment == "five cities"
        assert inst.dist(0, 1) == 10

    def test_full_matrix(self):
        inst = tsplib.loads(SAMPLE_FULL_MATRIX)
        assert inst.n == 4
        assert inst.dist(0, 3) == 6
        assert inst.dist(1, 2) == 3

    def test_upper_row_equals_full(self):
        a = tsplib.loads(SAMPLE_FULL_MATRIX)
        b = tsplib.loads(SAMPLE_UPPER_ROW)
        assert np.array_equal(a.matrix, b.matrix)

    def test_lower_diag_equals_full(self):
        a = tsplib.loads(SAMPLE_FULL_MATRIX)
        b = tsplib.loads(SAMPLE_LOWER_DIAG)
        assert np.array_equal(a.matrix, b.matrix)

    def test_unsorted_node_labels(self):
        text = SAMPLE_EUC.replace(
            "1 0.0 0.0\n2 10.0 0.0", "2 10.0 0.0\n1 0.0 0.0"
        )
        inst = tsplib.loads(text)
        assert inst.coords[0, 0] == 0.0  # city labelled 1 first

    def test_rejects_atsp(self):
        with pytest.raises(ValueError, match="TYPE"):
            tsplib.loads(SAMPLE_EUC.replace("TYPE : TSP", "TYPE : ATSP"))

    def test_missing_section_raises(self):
        bad = "NAME: x\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EUC_2D\nEOF\n"
        with pytest.raises(ValueError, match="NODE_COORD_SECTION"):
            tsplib.loads(bad)

    def test_token_count_mismatch_raises(self):
        bad = SAMPLE_EUC.replace("5 5.0 5.0\n", "")
        with pytest.raises(ValueError, match="tokens"):
            tsplib.loads(bad)


class TestRoundTrip:
    def test_coords_roundtrip(self, small_instance, tmp_path):
        path = tmp_path / "x.tsp"
        tsplib.dump(small_instance, path)
        back = tsplib.load(path)
        assert back.n == small_instance.n
        assert back.edge_weight_type == small_instance.edge_weight_type
        np.testing.assert_allclose(back.coords, small_instance.coords, atol=1e-5)

    def test_explicit_roundtrip(self, explicit_instance, tmp_path):
        path = tmp_path / "m.tsp"
        tsplib.dump(explicit_instance, path)
        back = tsplib.load(path)
        assert np.array_equal(back.matrix, explicit_instance.matrix)

    def test_tour_roundtrip(self, small_instance, tmp_path, rng):
        from repro.tsp.tour import random_tour

        t = random_tour(small_instance, rng)
        path = tmp_path / "t.tour"
        tsplib.dump_tour(t, path)
        back = tsplib.load_tour(path, small_instance)
        assert isinstance(back, Tour)
        assert np.array_equal(back.order, t.order)

    def test_tour_without_instance_returns_order(self, small_instance, tmp_path, rng):
        from repro.tsp.tour import random_tour

        t = random_tour(small_instance, rng)
        path = tmp_path / "t.tour"
        tsplib.dump_tour(t, path)
        order = tsplib.load_tour(path)
        assert np.array_equal(order, t.order)


SAMPLE_UPPER_COL = (
    "NAME: uc4\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
    "EDGE_WEIGHT_FORMAT: UPPER_COL\nEDGE_WEIGHT_SECTION\n"
    "2\n4 3\n6 5 7\nEOF\n"
)

SAMPLE_LOWER_DIAG_COL = (
    "NAME: lc4\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
    "EDGE_WEIGHT_FORMAT: LOWER_DIAG_COL\nEDGE_WEIGHT_SECTION\n"
    "0 2 4 6\n0 3 5\n0 7\n0\nEOF\n"
)


class TestColumnFormats:
    def test_upper_col_equals_full(self):
        a = tsplib.loads(SAMPLE_FULL_MATRIX)
        b = tsplib.loads(SAMPLE_UPPER_COL)
        assert np.array_equal(a.matrix, b.matrix)

    def test_lower_diag_col_equals_full(self):
        a = tsplib.loads(SAMPLE_FULL_MATRIX)
        b = tsplib.loads(SAMPLE_LOWER_DIAG_COL)
        assert np.array_equal(a.matrix, b.matrix)

    def test_unsupported_format_raises(self):
        bad = SAMPLE_UPPER_COL.replace("UPPER_COL", "SPIRAL")
        with pytest.raises(ValueError, match="EDGE_WEIGHT_FORMAT"):
            tsplib.loads(bad)
