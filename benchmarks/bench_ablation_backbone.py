"""Ablation: backbone edge fixing (partial reduction extension).

The paper's related-work section reports Bachem & Wottawa's result:
protecting edges seen on previous good tours cuts LK runtime by 10-50%
at constant quality.  In the distributed algorithm every node already
sees a stream of elite tours (its own and its neighbours'), so the
backbone comes for free.  This ablation measures what fraction of a
fixed work budget the extension converts into extra kicks, and what it
costs in final quality.
"""

import numpy as np

from _common import (
    emit,
    N_RUNS,
    dist_budget_per_node,
    print_banner,
    reference,
    run_dist,
    seeds,
)
from repro.analysis import fmt_pct, format_table, mean_excess_percent

INSTANCE = "fnl350"

CONFIGS = [
    ("off (paper algorithm)", 0.0),
    ("support 1.0 (unanimous edges)", 1.0),
    ("support 0.8", 0.8),
    ("support 0.6 (aggressive)", 0.6),
]


def _experiment():
    ref, _ = reference(INSTANCE)
    budget = dist_budget_per_node(INSTANCE)
    rows = []
    means = {}
    for label, support in CONFIGS:
        lengths = []
        iters = []
        for s in seeds(9800, N_RUNS):
            res = run_dist(INSTANCE, "random_walk", s, budget=budget,
                           backbone_support=support)
            lengths.append(res.best_length)
            # EA iterations completed network-wide ~ improvements+ties;
            # use total events as the activity proxy.
            iters.append(sum(len(log) for log in res.event_logs.values()))
        excess = mean_excess_percent(lengths, ref)
        means[label] = excess
        rows.append((label, int(np.mean(lengths)), fmt_pct(excess),
                     f"{np.mean(iters):.0f}"))
    return rows, means


def test_ablation_backbone(once):
    rows, means = once(_experiment)
    print_banner(
        f"Ablation: backbone edge fixing on {INSTANCE} "
        f"(8 nodes, avg of {N_RUNS} runs, equal work budget)",
    )
    emit(format_table(
        ["backbone", "mean length", "excess", "node events (activity)"],
        rows,
    ))
    emit("\nBachem & Wottawa's claim: protected edges cut runtime at "
         "constant quality; here constant budget => more search per vsec.")

    # Shape: unanimous-support backbone must not cost real quality.
    assert means["support 1.0 (unanimous edges)"] <= (
        means["off (paper algorithm)"] + 0.25
    )