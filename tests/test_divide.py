"""Divide-and-optimize: partition/merge properties and pipeline contract.

The property suite pins the invariants docs/ALGORITHMS.md promises:
every city lands in exactly one region, boundary edges genuinely cross
regions, the merged tour is a valid permutation (sanitizer-checked),
the merge is never worse than naive concatenation, and the pipeline is
bit-identical for a fixed seed — across runs and across the sim and
process scheduler backends.
"""

import numpy as np
import pytest

from repro.core import solve
from repro.divide import (
    DivideCancelled,
    DivideConfig,
    PartitionConfig,
    RegionScheduler,
    divide_and_optimize,
    naive_concatenation,
    partition_instance,
)
from repro.obs import Tracer, use_tracer
from repro.tsp import generators
from repro.utils.sanitize import check_tour, set_sanitize

pytestmark = pytest.mark.divide


@pytest.fixture(scope="module")
def instance():
    return generators.clustered(300, rng=3)


@pytest.fixture(scope="module")
def partition(instance):
    return partition_instance(instance, region_size=80)


class TestPartition:
    def test_every_city_in_exactly_one_region(self, instance, partition):
        merged = np.concatenate([r.cities for r in partition.regions])
        assert np.array_equal(np.sort(merged), np.arange(instance.n))
        for region in partition.regions:
            assert np.all(
                partition.region_of[region.cities] == region.region_id
            )

    def test_region_sizes_bounded(self, partition):
        sizes = partition.region_sizes
        assert sizes.max() <= 80
        assert sizes.min() >= 3

    def test_boundary_edges_cross_regions(self, partition):
        edges = partition.boundary_edges
        assert edges.shape[0] > 0
        assert np.all(edges[:, 0] < edges[:, 1])
        assert np.all(
            partition.region_of[edges[:, 0]]
            != partition.region_of[edges[:, 1]]
        )
        # Unique rows (the repair candidate set has no duplicates).
        assert np.unique(edges, axis=0).shape[0] == edges.shape[0]

    def test_partition_is_deterministic(self, instance, partition):
        again = partition_instance(instance, region_size=80)
        assert again.n_regions == partition.n_regions
        for a, b in zip(again.regions, partition.regions):
            assert np.array_equal(a.cities, b.cities)
        assert np.array_equal(
            again.boundary_edges, partition.boundary_edges
        )

    def test_sub_instance_distances_match_parent(self, instance, partition):
        region = partition.regions[0]
        sub = region.build_instance(instance)
        for li, lj in ((0, 1), (1, region.size - 1), (0, region.size // 2)):
            gi, gj = int(region.cities[li]), int(region.cities[lj])
            assert sub.dist(li, lj) == instance.dist(gi, gj)

    def test_explicit_instance_rejected(self):
        rng = np.random.default_rng(0)
        from repro.tsp.instance import TSPInstance

        m = rng.integers(1, 100, size=(12, 12))
        m = np.triu(m, 1) + np.triu(m, 1).T
        explicit = TSPInstance(matrix=m, edge_weight_type="EXPLICIT")
        with pytest.raises(ValueError, match="coordinates"):
            partition_instance(explicit, region_size=6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PartitionConfig(region_size=2)
        with pytest.raises(ValueError):
            PartitionConfig(boundary_k=0)


class TestPipeline:
    def test_merged_tour_valid_under_sanitizer(self, instance):
        set_sanitize(True)
        try:
            result = divide_and_optimize(
                instance, DivideConfig(region_size=80),
                budget_vsec_per_node=0.2, rng=7,
            )
        finally:
            set_sanitize(None)
        check_tour(result.tour, context="test")
        assert np.array_equal(
            np.sort(result.tour.order), np.arange(instance.n)
        )

    def test_merge_never_worse_than_naive(self, instance):
        result = divide_and_optimize(
            instance, DivideConfig(region_size=80),
            budget_vsec_per_node=0.2, rng=7,
        )
        naive = naive_concatenation(
            result.partition, result.region_results
        )
        assert result.naive_length == naive.length
        assert result.stitched_length <= result.naive_length
        assert result.length <= result.stitched_length
        assert result.repair_gain >= 0

    def test_bit_identical_for_fixed_seed(self, instance):
        runs = [
            divide_and_optimize(
                instance, DivideConfig(region_size=80),
                budget_vsec_per_node=0.2, rng=42,
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].tour.order, runs[1].tour.order)
        assert runs[0].length == runs[1].length
        other = divide_and_optimize(
            instance, DivideConfig(region_size=80),
            budget_vsec_per_node=0.2, rng=43,
        )
        # Different seed, different region solves (lengths may tie, the
        # tours should not).
        assert not np.array_equal(runs[0].tour.order, other.tour.order)

    def test_region_spans_and_metrics_in_trace(self, instance):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            result = divide_and_optimize(
                instance, DivideConfig(region_size=80),
                budget_vsec_per_node=0.2, rng=7,
            )
        names = [s.name for s in tracer.spans]
        assert names.count("divide.region") == result.n_regions
        for phase in ("divide", "divide.partition", "divide.stitch",
                      "divide.repair", "divide.merge"):
            assert phase in names
        region_spans = [s for s in tracer.spans
                        if s.name == "divide.region"]
        assert {s.labels["region"] for s in region_spans} == set(
            range(result.n_regions)
        )
        assert all(s.vdur > 0 for s in region_spans)
        m = tracer.metrics
        assert m.histogram("divide.region_size") is not None
        assert m.counter_value("divide.repair_gain") == float(
            result.repair_gain
        )

    def test_solver_threading_via_driver(self, instance):
        result = solve(
            instance, 0.2, n_nodes=1,
            divide=DivideConfig(region_size=80), rng=5,
        )
        assert result.best_length == result.length
        assert np.array_equal(
            np.sort(result.best_tour.order), np.arange(instance.n)
        )

    def test_dist_clk_regions(self, instance):
        # n_nodes > 1: full distributed CLK inside every region.
        result = divide_and_optimize(
            instance, DivideConfig(region_size=150),
            budget_vsec_per_node=0.1, n_nodes_per_region=2, rng=11,
        )
        assert np.array_equal(
            np.sort(result.tour.order), np.arange(instance.n)
        )

    def test_cancellation_mid_run(self, instance):
        partition = partition_instance(instance, region_size=80)
        scheduler = RegionScheduler(
            partition, budget_vsec_per_node=0.2, rng=7,
        )

        def progress(result, done, total):
            return done >= 1  # cancel after the first region

        with pytest.raises(DivideCancelled) as err:
            scheduler.run(progress)
        assert 1 <= len(err.value.partial) < partition.n_regions


@pytest.mark.slow
@pytest.mark.timeout(300)
class TestProcessBackend:
    def test_process_backend_bit_identical_to_sim(self, instance):
        kwargs = dict(budget_vsec_per_node=0.2, rng=7)
        sim = divide_and_optimize(
            instance, DivideConfig(region_size=80, backend="sim"), **kwargs
        )
        proc = divide_and_optimize(
            instance,
            DivideConfig(region_size=80, backend="process", max_workers=2),
            **kwargs,
        )
        assert np.array_equal(sim.tour.order, proc.tour.order)
        assert sim.length == proc.length
