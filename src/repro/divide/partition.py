"""Spatial partitioner: recursive coordinate bisection plus boundary graph.

The divide-and-optimize pipeline (docs/ALGORITHMS.md, "Divide and
optimize") opens instances far beyond the per-run sweet spot of CLK by
cutting the plane into regions of a configurable target size, solving
each region independently, and repairing the seams.  This module owns
step one: a k-d-style recursive bisection over the instance coordinates.

Design points:

* **Median splits along the wider axis.**  Each recursion step sorts the
  region's cities along the axis of larger coordinate spread (ties break
  toward x) and cuts at the median, so leaves stay balanced and every
  leaf ends up with ``ceil(size/2^d) <= region_size`` cities.  Ties in
  the sort key break by city index, which makes the partition a pure
  function of the instance — bit-identical across runs, platforms and
  backends.  (Per-region *solver* seeds are derived from the pipeline
  seed in :mod:`repro.divide.scheduler`; the geometry itself needs no
  randomness.)
* **Leaves arrive in DFS order.**  Sibling regions are spatially
  adjacent, so consuming regions in emission order during stitching
  (:mod:`repro.divide.repair`) keeps consecutive path endpoints close.
* **The boundary graph is the repair budget.**  For every city we look
  at its ``boundary_k`` nearest neighbours (KD-tree backed via
  :meth:`TSPInstance.neighbor_lists`) and keep the pairs that cross a
  region border.  Those edges are exactly the moves region-local solvers
  could never see, and they are the only candidate edges the bounded
  repair pass explores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tsp.instance import TSPInstance

__all__ = ["PartitionConfig", "Region", "Partition", "partition_instance"]

#: TSPInstance refuses fewer than 3 cities; median splits keep both
#: sides at or above this as long as ``region_size`` >= MIN_REGION_SIZE.
MIN_REGION_SIZE = 6


@dataclass(frozen=True)
class PartitionConfig:
    """Knobs for :func:`partition_instance`.

    ``region_size`` is the *maximum* leaf size (splitting stops at or
    below it); ``boundary_k`` is the nearest-neighbour depth used to
    collect cross-region candidate edges.
    """

    region_size: int = 1200
    boundary_k: int = 8

    def __post_init__(self) -> None:
        if self.region_size < MIN_REGION_SIZE:
            raise ValueError(
                f"region_size must be >= {MIN_REGION_SIZE}, "
                f"got {self.region_size}"
            )
        if self.boundary_k < 1:
            raise ValueError("boundary_k must be positive")


@dataclass(frozen=True, slots=True)
class Region:
    """One leaf of the bisection: a set of cities solved as a unit.

    ``cities`` maps local index -> global city id (the sub-instance's
    city ``k`` is the parent's city ``cities[k]``).  The array is a
    frozen snapshot; it crosses the process boundary in the scheduler's
    worker tasks, hence the wire-type discipline (RPL004).
    """

    region_id: int
    cities: np.ndarray
    depth: int

    @property
    def size(self) -> int:
        return int(self.cities.shape[0])

    def build_instance(self, parent: TSPInstance) -> TSPInstance:
        """Materialize the sub-instance (fresh caches, parent metric).

        Coordinate metrics depend only on the two endpoints' coords, so
        sub-instance distances equal the parent's for every pair inside
        the region.  Built on demand — and dropped by callers as soon as
        the region is solved — so only one region's distance caches are
        alive at a time.
        """
        if parent.coords is None:
            raise ValueError(
                "spatial partitioning requires coordinates "
                "(EXPLICIT matrix instances cannot be divided)"
            )
        coords = np.array(parent.coords[self.cities], dtype=np.float64)
        return TSPInstance(
            coords=coords,
            edge_weight_type=parent.edge_weight_type,
            name=f"{parent.name}/r{self.region_id}",
            comment=f"region {self.region_id} of {parent.name} "
                    f"({self.size} cities)",
        )


@dataclass
class Partition:
    """The full bisection result: regions + the cross-region edge set."""

    instance: TSPInstance
    config: PartitionConfig
    regions: list = field(default_factory=list)
    #: ``(n,)`` region id per global city.
    region_of: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: ``(m, 2)`` unique cross-region city pairs, each row ``i < j``,
    #: lexicographically sorted — the repair pass's candidate edges.
    boundary_edges: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    @property
    def region_sizes(self) -> np.ndarray:
        return np.array([r.size for r in self.regions], dtype=np.int64)

    def boundary_degree(self) -> np.ndarray:
        """Per-city count of incident boundary edges (histogram fodder)."""
        deg = np.zeros(self.instance.n, dtype=np.int64)
        if self.boundary_edges.size:
            np.add.at(deg, self.boundary_edges[:, 0], 1)
            np.add.at(deg, self.boundary_edges[:, 1], 1)
        return deg


def _bisect(coords: np.ndarray, cities: np.ndarray, region_size: int,
            depth: int, out: list) -> None:
    """Recursively split ``cities`` (global ids) until <= region_size."""
    if cities.shape[0] <= region_size:
        out.append((cities, depth))
        return
    pts = coords[cities]
    spread = pts.max(axis=0) - pts.min(axis=0)
    axis = 1 if spread[1] > spread[0] else 0
    # Stable key (coordinate, then global id) makes the cut — and with
    # it the whole partition — a pure function of the instance.
    order = np.lexsort((cities, pts[:, axis]))
    half = cities.shape[0] // 2
    _bisect(coords, cities[order[:half]], region_size, depth + 1, out)
    _bisect(coords, cities[order[half:]], region_size, depth + 1, out)


def _boundary_graph(instance: TSPInstance, region_of: np.ndarray,
                    boundary_k: int) -> np.ndarray:
    """Unique cross-region pairs among each city's k nearest neighbours."""
    k = min(boundary_k, instance.n - 1)
    nbrs = instance.neighbor_lists(k)
    rows = np.repeat(np.arange(instance.n, dtype=np.int64), k)
    cols = nbrs.astype(np.int64).ravel()
    cross = region_of[rows] != region_of[cols]
    a, b = rows[cross], cols[cross]
    pairs = np.stack([np.minimum(a, b), np.maximum(a, b)], axis=1)
    if pairs.size == 0:
        return pairs.reshape(0, 2)
    return np.unique(pairs, axis=0)


def partition_instance(
    instance: TSPInstance,
    config: PartitionConfig | None = None,
    *,
    region_size: int | None = None,
    boundary_k: int | None = None,
) -> Partition:
    """Split ``instance`` into spatial regions plus a boundary graph.

    Either pass a :class:`PartitionConfig` or override individual knobs
    by keyword.  Deterministic: the same instance always yields the same
    partition (see module docstring).
    """
    cfg = config or PartitionConfig()
    if region_size is not None or boundary_k is not None:
        cfg = PartitionConfig(
            region_size=region_size if region_size is not None
            else cfg.region_size,
            boundary_k=boundary_k if boundary_k is not None
            else cfg.boundary_k,
        )
    if instance.coords is None:
        raise ValueError(
            "spatial partitioning requires coordinates "
            "(EXPLICIT matrix instances cannot be divided)"
        )
    coords = np.asarray(instance.coords, dtype=np.float64)
    leaves: list = []
    _bisect(coords, np.arange(instance.n, dtype=np.int64),
            cfg.region_size, 0, leaves)
    regions = []
    region_of = np.empty(instance.n, dtype=np.int32)
    for rid, (cities, depth) in enumerate(leaves):
        cities = np.array(cities, dtype=np.int64)
        cities.setflags(write=False)
        region_of[cities] = rid
        regions.append(Region(region_id=rid, cities=cities, depth=depth))
    boundary = (
        _boundary_graph(instance, region_of, cfg.boundary_k)
        if len(regions) > 1
        else np.empty((0, 2), dtype=np.int64)
    )
    return Partition(
        instance=instance,
        config=cfg,
        regions=regions,
        region_of=region_of,
        boundary_edges=boundary,
    )
