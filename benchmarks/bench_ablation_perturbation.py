"""Ablation: the variable-strength perturbation parameters (c_v, c_r).

The paper fixes c_v=64 and c_r=256 and motivates the design ("a
perturbation that is too weak might not help to leave the current local
optimum, but a too strong perturbation might damage the tour").  In the
full 8-node system, received improvements keep resetting
``NumNoImprovements``, so the mechanism rarely fires at bench scale; the
ablation therefore runs the *single-node* variant (the paper's DistCLK-1
from Figure 3), where the counter actually accumulates, and sweeps the
escalation/restart thresholds against the degenerate no-mechanism
configurations.
"""

import numpy as np

from _common import (
    emit,
    N_RUNS,
    clk_budget,
    print_banner,
    reference,
    run_dist,
    seeds,
)
from repro.analysis import fmt_pct, format_table, mean_excess_percent
from repro.core.events import EventKind

INSTANCE = "fl300"
BIG = 10**9

CONFIGS = [
    ("c_v=2, c_r=16 (fast escalation)", 2, 16),
    ("c_v=4, c_r=32 (scaled paper)", 4, 32),
    ("c_v=8, c_r=64 (slow escalation)", 8, 64),
    ("no escalation (c_v=inf)", BIG, 32),
    ("no restarts (c_r=inf)", 4, BIG),
    ("neither (plain kick)", BIG, BIG),
]


def _experiment():
    ref, _ = reference(INSTANCE)
    budget = clk_budget(INSTANCE)  # single node gets the full CLK budget
    rows = []
    means = {}
    for label, cv, cr in CONFIGS:
        lengths = []
        escalations = 0
        restarts = 0
        for s in seeds(9500, N_RUNS):
            res = run_dist(INSTANCE, "random_walk", s, n_nodes=1,
                           budget=budget, c_v=cv, c_r=cr)
            lengths.append(res.best_length)
            log = res.event_logs[0]
            escalations += len(log.of_kind(EventKind.PERTURBATION_STRENGTH))
            restarts += len(log.of_kind(EventKind.RESTART))
        excess = mean_excess_percent(lengths, ref)
        means[label] = excess
        rows.append((label, int(np.mean(lengths)), fmt_pct(excess),
                     escalations, restarts))
    return rows, means


def test_ablation_perturbation(once):
    rows, means = once(_experiment)
    print_banner(
        f"Ablation: perturbation strength / restart thresholds on "
        f"{INSTANCE} (single node, avg of {N_RUNS} runs)",
    )
    emit(format_table(
        ["configuration", "mean length", "excess", "escalations",
         "restarts"],
        rows,
    ))

    # Shape: the mechanism fires in the fast configuration, and the
    # scaled-paper config does not lose badly to the no-mechanism one.
    fast_rows = [r for r in rows if r[0].startswith("c_v=2")]
    assert fast_rows[0][3] > 0  # escalations actually happened
    assert means["c_v=4, c_r=32 (scaled paper)"] <= (
        means["neither (plain kick)"] + 0.35
    )
