"""reprolint — repo-specific static analysis for reproducibility invariants.

The library's correctness rests on invariants that generic linters cannot
see: all randomness flows through injected ``numpy.random.Generator``
objects, simulated code never reads the wall clock, local-search hot
loops only see distance-sorted candidate rows through the engine layer,
and the multiprocessing boundary only ships frozen/slotted picklable
types.  Each rule here encodes one of those invariants with an ID, a
rationale, and a suppression syntax, so a violation fails CI with an
explanation instead of silently corrupting a run.

Usage::

    python -m tools.reprolint src scripts examples

Suppression::

    something_flagged()  # reprolint: disable=RPL002
    # reprolint: disable-file=RPL001   (anywhere in the first 10 lines)

Configuration lives in ``pyproject.toml`` under ``[tool.reprolint]``
(see :mod:`tools.reprolint.config` for keys and defaults); rules are in
:mod:`tools.reprolint.rules` and the walker/suppression machinery in
:mod:`tools.reprolint.engine`.
"""

from .config import Config, load_config
from .dataflow import FunctionFlow, ModuleInfo, ProjectIndex, TaintEnv
from .engine import Violation, lint_file, lint_paths
from .rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Config",
    "FunctionFlow",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "TaintEnv",
    "Violation",
    "lint_file",
    "lint_paths",
    "load_config",
]
