"""Shared utilities: deterministic RNG plumbing, work accounting."""

from .rng import ensure_rng, spawn_rngs
from .work import WorkMeter

__all__ = ["ensure_rng", "spawn_rngs", "WorkMeter"]
