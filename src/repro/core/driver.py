"""High-level entry points for the distributed Chained Lin-Kernighan.

:func:`solve` is the public one-call API ("give me a good tour of this
instance using N cooperating CLK workers"); :func:`replicate` runs the
paper's repeated-runs protocol (10 runs per configuration) and aggregates.

The run itself lives in :class:`repro.core.session.SolveSession` —
:func:`solve` constructs a session and runs it to completion, so the
batch API and the service layer (:mod:`repro.service`) execute the exact
same code path and cannot drift apart (the service's bit-identical
determinism contract rests on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..distributed.network import LatencyModel
from ..distributed.simulator import SimulationResult
from ..localsearch.lin_kernighan import LKConfig
from ..obs import get_tracer
from ..utils.rng import ensure_rng, spawn_rngs
from .session import SolveSession

__all__ = ["solve", "replicate", "ReplicateSummary"]


def solve(
    instance,
    budget_vsec_per_node: float,
    n_nodes: int = 8,
    kick: str = "random_walk",
    c_v: int = 64,
    c_r: int = 256,
    inner_kicks: int = 5,
    topology: str | dict = "hypercube",
    target_length: Optional[int] = None,
    lk_config: LKConfig | None = None,
    latency: LatencyModel | None = None,
    backbone_support: float = 0.0,
    free_init: bool = False,
    churn=None,
    dissemination: str = "broadcast",
    gossip_fanout: int = 3,
    kick_batch_width: int = 1,
    kick_batch_backend: str = "process",
    kernel: str | None = None,
    rng=None,
    divide=None,
) -> SimulationResult:
    """Solve a TSP instance with the distributed CLK algorithm.

    Parameters default to the paper's setup: 8 nodes, hypercube topology,
    Random-walk kicks, ``c_v = 64``, ``c_r = 256``.  ``target_length``
    (the known optimum, when available) is an additional termination
    criterion, as in the paper's protocol.  ``backbone_support > 0``
    enables the partial-reduction extension (see
    :mod:`repro.core.backbone`).  ``kick_batch_width > 1`` turns every
    node's inner kicks into batched best-of-N stages
    (:meth:`repro.localsearch.ChainedLK.step_batch`); virtual-time
    accounting is unchanged, only wall clock improves.  ``kernel``
    selects the engine scan tier (``"scalar"``/``"row"``/``"vector"``)
    on every node; all tiers are bit-identical, so results do not
    change.  It overrides ``lk_config.kernel`` when both are given.

    ``divide`` switches to the divide-and-optimize pipeline for large
    instances: pass a :class:`repro.divide.DivideConfig` (or ``True``
    for defaults) and the instance is spatially partitioned, each
    region solved as its own session — ``n_nodes`` then means nodes
    *per region*, ``budget_vsec_per_node`` the budget of each region
    node — and the seams repaired.  Returns a
    :class:`repro.divide.DivideResult` instead of a
    :class:`SimulationResult` (both expose ``best_tour`` /
    ``best_length``).
    """
    if divide is not None and divide is not False:
        from ..divide import DivideConfig, divide_and_optimize

        cfg = divide if isinstance(divide, DivideConfig) else DivideConfig()
        return divide_and_optimize(
            instance,
            cfg,
            budget_vsec_per_node=budget_vsec_per_node,
            n_nodes_per_region=n_nodes,
            kick=kick,
            lk_config=lk_config,
            kernel=kernel,
            rng=rng,
        )
    session = SolveSession(
        instance,
        budget_vsec_per_node,
        n_nodes=n_nodes,
        kick=kick,
        c_v=c_v,
        c_r=c_r,
        inner_kicks=inner_kicks,
        topology=topology,
        target_length=target_length,
        lk_config=lk_config,
        latency=latency,
        backbone_support=backbone_support,
        free_init=free_init,
        churn=churn,
        dissemination=dissemination,
        gossip_fanout=gossip_fanout,
        kick_batch_width=kick_batch_width,
        kick_batch_backend=kick_batch_backend,
        kernel=kernel,
        rng=rng,
    )
    with get_tracer().span(
        "solve", instance=getattr(instance, "name", "?"), n_nodes=n_nodes
    ):
        return session.run()


@dataclass
class ReplicateSummary:
    """Aggregate of repeated runs (the paper reports 10-run averages)."""

    results: list
    target_length: Optional[int]

    @property
    def n_runs(self) -> int:
        return len(self.results)

    @property
    def successes(self) -> int:
        """Runs that reached the target (paper Table 3 counts)."""
        return sum(1 for r in self.results if r.hit_target())

    @property
    def lengths(self) -> np.ndarray:
        return np.array([r.best_length for r in self.results])

    @property
    def mean_length(self) -> float:
        return float(self.lengths.mean())

    @property
    def best_length(self) -> int:
        return int(self.lengths.min())

    def mean_excess(self, reference: float) -> float:
        """Average % above a reference length (optimum or HK bound)."""
        return float(np.mean(self.lengths / reference - 1.0)) * 100.0

    def mean_time_to_quality(self, length: int) -> Optional[float]:
        """Average per-node vsec to reach a length, over runs that did."""
        times = [r.time_to_quality(length) for r in self.results]
        times = [t for t in times if t is not None]
        return float(np.mean(times)) if times else None


def replicate(
    instance,
    budget_vsec_per_node: float,
    n_runs: int = 10,
    rng=None,
    **solve_kwargs,
) -> ReplicateSummary:
    """Run :func:`solve` ``n_runs`` times with independent seeds."""
    rngs = spawn_rngs(ensure_rng(rng), n_runs)
    results = [
        solve(instance, budget_vsec_per_node, rng=r, **solve_kwargs)
        for r in rngs
    ]
    return ReplicateSummary(
        results=results, target_length=solve_kwargs.get("target_length")
    )
