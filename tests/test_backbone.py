"""Tests for the backbone (partial reduction) extension."""

import numpy as np
import pytest

from repro.core import solve
from repro.core.backbone import ElitePool, backbone_edges, edge_counts
from repro.localsearch import LinKernighan, chained_lk
from repro.tsp import generators
from repro.tsp.tour import Tour, random_tour


class TestEdgeCounts:
    def test_counts_shared_edges(self, small_instance):
        t = Tour.identity(small_instance)
        counts = edge_counts([t, t.copy()])
        assert all(c == 2 for c in counts.values())
        assert len(counts) == small_instance.n

    def test_disjoint_tours(self, small_instance, rng):
        a = Tour.identity(small_instance)
        b = random_tour(small_instance, rng)
        counts = edge_counts([a, b])
        assert max(counts.values()) <= 2


class TestBackboneEdges:
    def test_full_support(self, small_instance, rng):
        a = Tour.identity(small_instance)
        bb = backbone_edges([a, a.copy(), a.copy()], min_support=1.0)
        # Every tour edge, both orientations.
        assert len(bb) == 2 * small_instance.n
        assert all((b, a_) in bb for (a_, b) in bb)

    def test_partial_support(self, small_instance, rng):
        a = Tour.identity(small_instance)
        b = random_tour(small_instance, rng)
        strict = backbone_edges([a, a.copy(), b], min_support=1.0)
        loose = backbone_edges([a, a.copy(), b], min_support=0.6)
        assert strict <= loose

    def test_too_few_tours_empty(self, small_instance):
        assert backbone_edges([Tour.identity(small_instance)]) == set()

    def test_bad_support_raises(self, small_instance):
        a = Tour.identity(small_instance)
        with pytest.raises(ValueError, match="min_support"):
            backbone_edges([a, a.copy()], min_support=0.0)


class TestElitePool:
    def test_keeps_best(self, small_instance, rng):
        pool = ElitePool(capacity=3)
        tours = [random_tour(small_instance, rng) for _ in range(8)]
        for t in tours:
            pool.add(t)
        kept = sorted(t.length for t in pool.tours())
        best3 = sorted(t.length for t in tours)[:3]
        assert kept == best3

    def test_rejects_duplicates(self, small_instance):
        pool = ElitePool(capacity=4)
        t = Tour.identity(small_instance)
        assert pool.add(t)
        assert not pool.add(t.copy())
        assert len(pool) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ElitePool(capacity=1)


class TestFixedEdgesInLK:
    def test_fixed_edges_never_broken(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        # Fix five arbitrary tour edges; LK must preserve them.
        edges = list(t.edge_set())[:5]
        fixed = set()
        for a, b in edges:
            fixed.add((a, b))
            fixed.add((b, a))
        engine = LinKernighan(small_instance)
        engine.optimize(t, fixed=fixed)
        assert t.is_valid()
        remaining = t.edge_set()
        for a, b in edges:
            assert (a, b) in remaining, (a, b)

    def test_fixed_all_edges_freezes_tour(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        fixed = set()
        for a, b in t.edge_set():
            fixed.add((a, b))
            fixed.add((b, a))
        engine = LinKernighan(small_instance)
        gain = engine.optimize(t, fixed=fixed)
        assert gain == 0

    def test_backbone_speeds_up_lk(self):
        """The extension's selling point: fixing a consensus backbone
        reduces LK work on re-optimization."""
        from repro.utils.work import WorkMeter

        inst = generators.uniform(150, rng=5)
        base = chained_lk(inst, max_kicks=10, rng=1).tour
        # Backbone from perturbed near-optimal variants.
        variants = [base]
        for seed in range(3):
            v = chained_lk(inst, max_kicks=3, rng=seed + 10).tour
            variants.append(v)
        bb = backbone_edges(variants, min_support=1.0)
        engine = LinKernighan(inst)

        def work_of(fixed):
            t = random_tour(inst, np.random.default_rng(2))
            m = WorkMeter()
            engine.optimize(t, m, fixed=fixed)
            return m.ops

        assert work_of(bb) < work_of(None)


class TestNodeIntegration:
    def test_backbone_enabled_run_valid(self, small_instance):
        res = solve(
            small_instance, budget_vsec_per_node=0.5, n_nodes=4,
            backbone_support=0.8, rng=0,
        )
        assert res.best_tour.is_valid()
        assert res.best_length == res.best_tour.recompute_length()

    def test_backbone_quality_not_catastrophic(self, clustered_instance):
        plain = solve(clustered_instance, budget_vsec_per_node=0.6,
                      n_nodes=4, rng=3)
        fixed = solve(clustered_instance, budget_vsec_per_node=0.6,
                      n_nodes=4, backbone_support=0.9, rng=3)
        assert fixed.best_length <= plain.best_length * 1.05
