"""Bounded content-addressed instance store.

:mod:`repro.tsp.candidates` caches candidate arrays *on the instance*
(``instance._neighbor_cache``), so every solver of one run shares one
copy — but two jobs that each parse the same TSPLIB file get two
instances and two caches.  This module promotes that per-instance cache
to a service-wide store: instances are keyed by a SHA-256 digest of
their **defining data** (edge-weight type + coordinate/matrix bytes —
deliberately not the name), and :meth:`InstanceStore.intern` returns the
canonical instance, warm caches and all, for every equivalent submit.

The store is bounded by an LRU byte budget.  An entry's cost is the
defining arrays plus everything cached on the instance so far (distance
matrix, candidate arrays, row lists — estimated for list forms), and is
*re-measured on every touch* because caches grow after insertion.  Under
many-tenant traffic the unbounded per-instance cache of the batch API
becomes a slow leak; here eviction drops the LRU instance entirely
(its caches go with it) until the budget holds.  The newest entry is
never evicted, so one oversized instance degrades the store to
cache-nothing rather than wedging admission.

Hits/misses/evictions are counted on the store and mirrored into the
ambient :mod:`repro.obs` metrics registry as ``engine.cache_hits`` /
``engine.cache_misses`` / ``engine.cache_evictions``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from ..obs import get_tracer

__all__ = ["InstanceStore", "instance_digest", "instance_nbytes"]

#: Default LRU byte budget (enough for ~25 dense fl300-class instances).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Estimated bytes per element of a Python ``list``-form cache (pointer
#: plus a shared small-int or a boxed int, amortized).
_LIST_ELEMENT_BYTES = 16


def instance_digest(instance) -> str:
    """SHA-256 hex digest of an instance's defining data.

    Covers the edge-weight type and the exact bytes of the coordinate
    array (or explicit matrix) including dtype and shape; excludes the
    name and comment, so ``uniform:200:7`` submitted under two names is
    one store entry.
    """
    h = hashlib.sha256()
    h.update(instance.edge_weight_type.encode())
    if instance.edge_weight_type == "EXPLICIT":
        arr = np.ascontiguousarray(instance.matrix)
    else:
        arr = np.ascontiguousarray(instance.coords)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def _sequence_nbytes(value) -> int:
    """Rough byte estimate for cached list-of-list / array values."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, tuple):
        return sum(_sequence_nbytes(v) for v in value)
    if isinstance(value, list):
        if value and isinstance(value[0], list):
            return _LIST_ELEMENT_BYTES * sum(len(row) for row in value)
        return _LIST_ELEMENT_BYTES * len(value)
    return 0


def instance_nbytes(instance) -> int:
    """Current memory cost of an instance: defining data + caches.

    Exact for ndarray payloads, estimated for Python-list cache forms
    (``matrix_row_lists`` / ``neighbor_row_lists``).  Grows as lazy
    caches are built, which is why the store re-measures on touch.
    """
    total = 0
    if instance.coords is not None:
        total += int(instance.coords.nbytes)
    if instance.matrix is not None:
        total += int(np.asarray(instance.matrix).nbytes)
    cache = instance._matrix_cache
    if cache is not None and cache is not instance.matrix:
        total += int(cache.nbytes)
    if instance._matrix_rows is not None:
        total += _LIST_ELEMENT_BYTES * instance.n * instance.n
    for value in instance._neighbor_cache.values():
        total += _sequence_nbytes(value)
    return total


class InstanceStore:
    """LRU-bounded map ``digest -> TSPInstance`` shared across jobs.

    Not thread-safe by design: the service touches it only from the
    event-loop thread (worker processes rebuild instances from payloads
    on their side of the boundary).
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    @property
    def total_bytes(self) -> int:
        """Current (re-measured) cost of every stored instance."""
        return sum(instance_nbytes(inst) for inst in self._entries.values())

    def get(self, digest: str):
        """Instance for ``digest`` or None; counts a hit/miss."""
        inst = self._entries.get(digest)
        metrics = get_tracer().metrics
        if inst is None:
            self.misses += 1
            metrics.inc("engine.cache_misses")
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        metrics.inc("engine.cache_hits")
        return inst

    def intern(self, instance) -> tuple:
        """Canonicalize ``instance``: returns ``(canonical, digest)``.

        A hit returns the stored instance (shared caches); a miss stores
        this one and may evict LRU entries to fit the byte budget.
        """
        digest = instance_digest(instance)
        found = self.get(digest)
        if found is not None:
            return found, digest
        self._entries[digest] = instance
        self._evict()
        return instance, digest

    def _evict(self) -> None:
        """Drop LRU entries until the (re-measured) total fits the
        budget; the most recent entry always survives."""
        metrics = get_tracer().metrics
        while len(self._entries) > 1 and self.total_bytes > self.max_bytes:
            self._entries.popitem(last=False)
            self.evictions += 1
            metrics.inc("engine.cache_evictions")

    def stats(self) -> dict:
        """Snapshot for service status endpoints and tests."""
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
