"""Quickstart: solve a TSP instance with the distributed Chained LK.

Generates a clustered instance (the DIMACS C-class the paper uses),
runs the paper's default setup — 8 cooperating CLK nodes in a hypercube
with Random-walk kicks — and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import generators, solve
from repro.analysis import format_table

def main() -> None:
    # 200 cities in 10 Gaussian clusters, deterministic seed.
    instance = generators.clustered(200, rng=42, n_clusters=10)
    print(f"instance: {instance.name}, n={instance.n}")

    result = solve(
        instance,
        budget_vsec_per_node=3.0,   # virtual CPU seconds per node
        n_nodes=8,                  # hypercube of 8 workers
        kick="random_walk",         # the paper's default kick strategy
        rng=0,
    )

    print(f"\nbest tour length: {result.best_length}")
    print(f"found by node {result.best_node} "
          f"at {result.best_found_at:.2f} vsec (per-node CPU time)")
    print(f"tour broadcasts: {result.network_stats.broadcasts}, "
          f"messages delivered: {result.network_stats.messages}")

    rows = [
        (node_id, f"{clock:.2f}", result.reasons[node_id],
         len(result.event_logs[node_id]))
        for node_id, clock in sorted(result.clocks.items())
    ]
    print()
    print(format_table(
        ["node", "vsec used", "stopped because", "events"], rows,
        title="per-node summary",
    ))

    print("\nanytime curve (per-node vsec, network-best length):")
    for vsec, length in result.global_trace:
        print(f"  {vsec:8.2f}  {length}")


if __name__ == "__main__":
    main()
