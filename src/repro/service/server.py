"""Newline-delimited-JSON TCP front end for the solver service.

``repro serve`` binds a :class:`ServiceServer` on localhost; ``repro
submit`` / ``status`` / ``result`` talk to it through
:class:`ServiceClient`.  The protocol is one JSON object per line,
request then response(s), stdlib-only (``asyncio.start_server``):

* ``{"op": "submit", "instance": {...}, "tenant": ..., "seed": ...}``
  -> ``{"ok": true, "job_id": "job-0001"}``.  The instance crosses the
  wire as generator spec (``{"spec": "uniform:200:7"}``) or TSPLIB path
  (``{"path": "..."}``) — the *server* parses and interns it, so
  duplicate submits from different clients hit the content store.
* ``status`` / ``cancel`` / ``stats`` -> one response object.
* ``result`` -> waits for the job, then the final tour + run summary.
* ``stream`` -> one line per incumbent ``{"vsec": .., "length": ..,
  "node": ..}`` followed by a terminal ``{"done": true, "status": ..}``.

Errors come back as ``{"ok": false, "error": "..."}``; a malformed line
never kills the server, only the connection's response.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Set

from .jobs import TenantPolicy
from .service import JobError, SolverService

__all__ = ["ServiceServer", "ServiceClient"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7117

#: Per-read timeout for client connections: a stalled peer releases its
#: handler instead of pinning it forever (asyncio face of RPL005).
_READ_TIMEOUT_S = 600.0


def _load_instance(doc: dict):
    # Lazy import: repro.cli lazily imports repro.service for `serve`,
    # so the eager direction here would be a cycle at module import.
    from ..cli import resolve_instance

    spec = doc.get("spec") or doc.get("path")
    if not spec:
        raise ValueError("instance requires 'spec' or 'path'")
    try:
        return resolve_instance(str(spec))
    except SystemExit as exc:
        # resolve_instance is CLI-first and exits on bad specs; in the
        # server that must become a per-request error, not a shutdown.
        raise ValueError(str(exc)) from None


class ServiceServer:
    """TCP wrapper: one service, many line-oriented clients."""

    def __init__(
        self,
        service: SolverService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.Server] = None
        # Live connection handlers: Server.wait_closed() does not wait
        # for in-flight protocol callbacks on 3.10/3.11, so close()
        # reaps these explicitly instead of leaking them.
        self._conn_tasks: Set[asyncio.Task] = set()

    async def start(self) -> "ServiceServer":
        await self.service.start()
        server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self._server = server
        # Port 0 means "pick one"; reflect the bound port back.
        self.port = server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            try:
                await asyncio.wait_for(task, timeout=5.0)
            except asyncio.TimeoutError:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        await self.service.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- request handling -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=_READ_TIMEOUT_S)
            if line:
                try:
                    request = json.loads(line)
                    await self._dispatch(request, writer)
                except (JobError, KeyError, ValueError, TypeError) as exc:
                    # Best-effort error reply: the peer may already be
                    # gone, and the send failing must not kill the task.
                    try:
                        await self._send(writer, {"ok": False,
                                                  "error": str(exc)})
                    except (ConnectionError, OSError):
                        pass
        except asyncio.TimeoutError:
            # Stalled client: drop the connection, keep the server.
            pass
        except (ConnectionError, OSError):
            # Client dropped mid-request or mid-stream; this connection
            # dies, the server keeps serving the others.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                # Peer already gone; nothing left to flush.
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, doc: dict) -> None:
        writer.write(json.dumps(doc).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, request: dict,
                        writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        svc = self.service
        if op == "ping":
            await self._send(writer, {"ok": True, "pong": True})
        elif op == "submit":
            instance = _load_instance(request.get("instance") or {})
            job_id = svc.submit(
                instance,
                tenant=request.get("tenant", "default"),
                priority=int(request.get("priority", 0)),
                seed=int(request.get("seed", 0)),
                budget_vsec_per_node=float(
                    request.get("budget_vsec_per_node", 1.0)),
                n_nodes=int(request.get("n_nodes", 8)),
                **(request.get("params") or {}),
            )
            await self._send(writer, {"ok": True, "job_id": job_id})
        elif op == "status":
            await self._send(
                writer,
                {"ok": True, "job": svc.status(request["job_id"])})
        elif op == "cancel":
            cancelled = svc.cancel(request["job_id"])
            await self._send(writer, {"ok": True, "cancelled": cancelled})
        elif op == "stats":
            await self._send(writer, {"ok": True, "stats": svc.stats()})
        elif op == "tenant":
            svc.set_tenant(
                request["tenant"],
                TenantPolicy(
                    max_concurrency=int(request.get("max_concurrency", 2)),
                    vsec_budget=request.get("vsec_budget"),
                    priority=int(request.get("priority", 0)),
                ),
            )
            await self._send(writer, {"ok": True})
        elif op == "result":
            job_id = request["job_id"]
            result = await svc.result(job_id,
                                      timeout=request.get("timeout"))
            doc = svc.status(job_id)
            doc["tour"] = {
                "order": [int(c) for c in result.best_tour.order],
                "length": int(result.best_tour.length),
            }
            await self._send(writer, {"ok": True, "job": doc})
        elif op == "stream":
            job_id = request["job_id"]
            stream = svc.stream_incumbents(job_id)
            try:
                async for vsec, length, node_id in stream:
                    await self._send(writer, {
                        "vsec": float(vsec),
                        "length": int(length),
                        "node": int(node_id),
                    })
            finally:
                # A client that drops mid-stream aborts the async-for
                # via the failed send; closing the generator runs its
                # finally blocks so the job watcher is released instead
                # of idling until the job ends.
                await stream.aclose()
            await self._send(writer, {
                "done": True,
                "status": svc.status(job_id)["status"],
            })
        else:
            raise ValueError(f"unknown op {op!r}")


class ServiceClient:
    """Line-oriented client for :class:`ServiceServer`.

    Async methods for programmatic use; each opens one connection per
    request (the server is connection-per-request by design).  The CLI
    wraps them with ``asyncio.run``.
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    async def _request(self, doc: dict) -> dict:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.timeout)
        try:
            writer.write(json.dumps(doc).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=self.timeout)
            if not line:
                raise ConnectionError("server closed the connection")
            response = json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                # Peer already gone; nothing left to flush.
                pass
        if not response.get("ok", False):
            raise RuntimeError(
                f"server error: {response.get('error', 'unknown')}")
        return response

    async def ping(self) -> bool:
        return bool((await self._request({"op": "ping"})).get("pong"))

    async def submit(self, instance: dict, **options) -> str:
        doc = {"op": "submit", "instance": instance}
        doc.update(options)
        return (await self._request(doc))["job_id"]

    async def status(self, job_id: str) -> dict:
        return (await self._request(
            {"op": "status", "job_id": job_id}))["job"]

    async def cancel(self, job_id: str) -> bool:
        return bool((await self._request(
            {"op": "cancel", "job_id": job_id}))["cancelled"])

    async def stats(self) -> dict:
        return (await self._request({"op": "stats"}))["stats"]

    async def set_tenant(self, tenant: str, **policy) -> None:
        doc = {"op": "tenant", "tenant": tenant}
        doc.update(policy)
        await self._request(doc)

    async def result(self, job_id: str,
                     timeout: Optional[float] = None) -> dict:
        return (await self._request(
            {"op": "result", "job_id": job_id, "timeout": timeout}))["job"]

    async def stream(self, job_id: str):
        """Async generator over the job's incumbent stream."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.timeout)
        try:
            writer.write(json.dumps(
                {"op": "stream", "job_id": job_id}).encode() + b"\n")
            await writer.drain()
            while True:
                line = await asyncio.wait_for(reader.readline(),
                                              timeout=self.timeout)
                if not line:
                    return
                doc = json.loads(line)
                if doc.get("done") or doc.get("ok") is False:
                    if doc.get("ok") is False:
                        raise RuntimeError(
                            f"server error: {doc.get('error')}")
                    return
                yield doc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                # Peer already gone; nothing left to flush.
                pass
