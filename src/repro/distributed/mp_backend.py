"""Real-parallel backend: one OS process per node, fault-tolerant.

The discrete-event simulator is the reference implementation (it is
deterministic and reproduces the paper's CPU-time accounting); this
backend runs the *same* :class:`~repro.core.node.EANode` logic with real
processes, wall-clock budgets and OS pipes, demonstrating that the
algorithm is transport-agnostic.  Results are not bit-reproducible across
machines (that is the point), so tests only assert invariants.

Message passing follows the mpi4py idiom for Python objects: each node
owns an inbox queue; ``send`` is a put into the neighbour's queue; tours
travel as plain ``(kind, sender, order, length)`` tuples (see
:mod:`repro.distributed.message`).

Unlike a naive fan-out/fan-in pool, the backend matches the simulator's
P2P failure semantics (paper §3: nodes can drop out and the topology
degenerates around them) under *real* failures:

* wall-clock budgets are honoured at LK move boundaries — each EA
  iteration runs on a vsec slice derived from the remaining wall time
  (:class:`~repro.distributed.supervision.BudgetPacer`), so no single
  iteration can overshoot the deadline;
* OPTIMUM_FOUND notifications and control messages take a never-drop
  path — on a full inbox the oldest queued TOUR is evicted instead
  (:func:`~repro.distributed.supervision.deliver_critical`);
* a :class:`~repro.distributed.supervision.Supervisor` watches process
  liveness and worker heartbeats, reroutes the topology around crashed
  nodes (their neighbours cross-link), optionally restarts them, and
  fails fast with a per-node report instead of waiting out a timeout
  when every worker is dead;
* shutdown is deterministic: poison pill, join barrier, ``terminate``
  only for unresponsive processes;
* ``kill_at={node_id: seconds}`` injects hard crashes (``os._exit``)
  for tests and demos.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.node import EANode, NodeConfig
from ..obs import get_tracer
from ..tsp.instance import TSPInstance
from ..tsp.tour import Tour
from .message import (
    WIRE_NEIGHBORS,
    WIRE_OPTIMUM_FOUND,
    WIRE_STOP,
    WIRE_TOUR,
    wire_decode,
    wire_encode,
)
from .supervision import BudgetPacer, Supervisor, deliver_critical
from .topology import get_topology, validate_topology

__all__ = ["MPResult", "run_multiprocessing"]


@dataclass
class MPResult:
    """Outcome of a multiprocessing run.

    ``node_lengths``/``reasons`` cover every node: crashed or timed-out
    nodes appear in ``reasons`` as ``"crashed"``/``"timeout"`` and are
    absent from ``node_lengths`` (they never reported a tour).
    ``node_reports`` carries the full supervision outcome per node.
    """

    best_order: np.ndarray
    best_length: int
    best_node: int
    node_lengths: dict
    reasons: dict
    elapsed_seconds: float
    #: Per-node :class:`~repro.distributed.supervision.NodeReport`.
    node_reports: dict = field(default_factory=dict)

    def tour(self, instance) -> Tour:
        """Rebuild the best tour against ``instance``."""
        return Tour(instance, self.best_order, self.best_length)

    @property
    def crashed_nodes(self) -> tuple:
        """Node ids that died without reporting (restarts exhausted)."""
        return tuple(
            sorted(
                i for i, r in self.node_reports.items()
                if r.exit_status == "crashed"
            )
        )

    @property
    def total_restarts(self) -> int:
        """Crash restarts performed across all nodes."""
        return sum(r.restarts for r in self.node_reports.values())

    @property
    def dropped_tour_messages(self) -> int:
        """TOUR messages dropped network-wide (full inboxes/evictions)."""
        return sum(r.dropped_tours for r in self.node_reports.values())


def _instance_payload(instance: TSPInstance) -> dict:
    # Shared with the batch-kick pool: defining data only, so workers
    # rebuild every cache locally (see TSPInstance.to_payload).
    return instance.to_payload()


def _rebuild_instance(payload: dict) -> TSPInstance:
    return TSPInstance.from_payload(payload)


def _node_worker(
    node_id: int,
    payload: dict,
    config: NodeConfig,
    neighbor_ids: tuple,
    inboxes: dict,
    result_queue,
    heartbeats,
    budget_seconds: float,
    seed: int,
    kill_after: float | None = None,
) -> None:
    if kill_after is not None:
        # Fault injection: a hard crash (no result, no cleanup) at a
        # wall-clock offset, independent of where the EA loop is.
        timer = threading.Timer(kill_after, os._exit, args=(1,))
        timer.daemon = True
        timer.start()
    instance = _rebuild_instance(payload)
    # Node workers are daemonic and may not spawn children: a configured
    # kick_batch_width > 1 runs its chains inline here (BatchKickRunner
    # detects the daemon flag), with identical results.
    node = EANode(node_id, instance, config, rng=seed)
    my_inbox = inboxes[node_id]
    neighbors = list(neighbor_ids)
    pacer = BudgetPacer()
    stats = {
        "iterations": 0,
        "dropped_tours": 0,
        "failed_sends": 0,
        "loop_seconds": 0.0,
    }
    t_start = time.monotonic()
    deadline = t_start + budget_seconds
    heartbeats[node_id] = (time.monotonic(), -1, 0)
    stop_requested = False

    def drain() -> list:
        nonlocal stop_requested
        raw = []
        while True:
            try:
                item = my_inbox.get_nowait()
            except queue_mod.Empty:
                break
            kind = item[0]
            if kind == WIRE_STOP:
                stop_requested = True
            elif kind == WIRE_NEIGHBORS:
                # Supervisor rerouted us around a dead neighbour.
                neighbors[:] = [int(x) for x in item[2]]
            else:
                raw.append(item)
        return wire_decode(raw)

    def broadcast(kind: str, order, length: int) -> None:
        item = wire_encode(kind, node_id, order, length)
        for dst in list(neighbors):
            if kind == WIRE_TOUR:
                # Tours are redundant (a better one always follows):
                # dropping on a full inbox is safe and cheap.
                try:
                    inboxes[dst].put_nowait(item)
                except queue_mod.Full:
                    stats["dropped_tours"] += 1
            else:
                delivered, dropped = deliver_critical(inboxes[dst], item)
                stats["dropped_tours"] += dropped
                if not delivered:
                    stats["failed_sends"] += 1

    reason = "budget"
    while True:
        now = time.monotonic()
        remaining = deadline - now
        if remaining <= 0:
            break
        work, candidate = node.compute(
            budget_vsec=pacer.next_budget(remaining)
        )
        pacer.observe(work, time.monotonic() - now)
        node.clock += work
        messages = drain()
        heartbeats[node_id] = (
            time.monotonic(), node.best_length or -1, stats["iterations"],
        )
        if stop_requested:
            reason = "stopped"
            break
        outcome = node.select(candidate, messages)
        stats["iterations"] += 1
        if outcome.broadcast is not None:
            broadcast(
                WIRE_TOUR,
                np.asarray(outcome.broadcast.order, dtype=np.int32),
                outcome.broadcast.length,
            )
        if outcome.done_reason is not None:
            reason = outcome.done_reason
            broadcast(
                WIRE_OPTIMUM_FOUND,
                np.asarray(node.s_best.order, dtype=np.int32),
                node.s_best.length,
            )
            break
    stats["loop_seconds"] = time.monotonic() - t_start
    if node.s_best is not None:
        order = np.asarray(node.s_best.order, dtype=np.int32)
        length = int(node.s_best.length)
    else:  # stopped before the first selection completed: no tour yet
        order, length = None, None
    result_queue.put((node_id, order, length, reason, stats))


def run_multiprocessing(
    instance,
    budget_seconds: float,
    n_nodes: int = 8,
    node_config: NodeConfig | None = None,
    topology: str | dict = "hypercube",
    rng=None,
    *,
    inbox_maxsize: int = 1024,
    restart: str = "never",
    max_restarts: int = 1,
    kill_at: dict | None = None,
    shutdown_grace: float = 15.0,
    heartbeat_timeout: float = 30.0,
) -> MPResult:
    """Run the distributed algorithm with real processes.

    ``budget_seconds`` is wall-clock per node, honoured at LK move
    boundaries.  Worker seeds derive from ``rng`` so runs are repeatable
    up to OS scheduling effects on message arrival order.

    Fault tolerance knobs:

    * ``restart="on_crash"`` respawns a crashed worker (fresh state, the
      remaining budget) up to ``max_restarts`` times; with the default
      ``"never"`` the topology instead degenerates around the dead node
      and the survivors keep going.
    * ``kill_at={node_id: seconds}`` hard-kills workers at wall-clock
      offsets (fault injection for tests/demos).
    * ``shutdown_grace`` bounds how long collection may run past
      ``budget_seconds`` before remaining workers are written off.
    """
    if budget_seconds <= 0:
        raise ValueError("budget_seconds must be positive")
    config = node_config or NodeConfig()
    if isinstance(topology, str):
        topology = get_topology(topology, n_nodes)
    validate_topology(topology)
    if set(topology) != set(range(n_nodes)):
        raise ValueError(f"topology ids must be 0..{n_nodes - 1}")
    kill_at = dict(kill_at or {})
    unknown = set(kill_at) - set(topology)
    if unknown:
        raise ValueError(f"kill_at references unknown nodes {sorted(unknown)}")
    if restart not in ("never", "on_crash"):
        # The Supervisor re-checks this, but by then workers are already
        # spawned; failing here keeps bad arguments process-free.
        raise ValueError(f"unknown restart policy {restart!r}")
    seeds = np.random.default_rng(
        rng if not isinstance(rng, np.random.Generator) else rng.integers(2**31)
    ).integers(0, 2**31 - 1, size=n_nodes)

    ctx = mp.get_context("spawn")
    manager = ctx.Manager()
    inboxes = {i: manager.Queue(maxsize=inbox_maxsize) for i in range(n_nodes)}
    result_queue = manager.Queue()
    heartbeats = manager.dict()
    payload = _instance_payload(instance)

    def spawn(node_id: int, neighbor_ids, budget: float, attempt: int = 0):
        p = ctx.Process(
            target=_node_worker,
            args=(
                node_id, payload, config, tuple(neighbor_ids), inboxes,
                result_queue, heartbeats, budget,
                int(seeds[node_id]) + 7919 * attempt,
                kill_at.get(node_id) if attempt == 0 else None,
            ),
            daemon=True,
        )
        p.start()
        return p

    t0 = time.monotonic()
    procs = {i: spawn(i, topology[i], budget_seconds) for i in range(n_nodes)}

    supervisor = Supervisor(
        procs=procs,
        inboxes=inboxes,
        result_queue=result_queue,
        heartbeats=heartbeats,
        topology=dict(topology),
        spawn=spawn,
        budget_seconds=budget_seconds,
        restart=restart,
        max_restarts=max_restarts,
        shutdown_grace=shutdown_grace,
        heartbeat_timeout=heartbeat_timeout,
    )
    tracer = get_tracer()
    with tracer.span("mp.run", n_nodes=n_nodes):
        results = supervisor.run()
    reports = supervisor.reports
    elapsed = time.monotonic() - t0
    manager.shutdown()
    if tracer.enabled:
        # Parent-side view of each worker (workers are separate
        # processes; their own spans never cross the pickle boundary).
        for i, report in reports.items():
            tracer.metrics.inc("mp.iterations", report.iterations, node=i)
            if report.dropped_tours:
                tracer.metrics.inc(
                    "mp.dropped_tours", report.dropped_tours, node=i
                )
            tracer.metrics.set_gauge(
                "mp.loop_seconds", report.loop_seconds, node=i
            )

    reported = {i: v for i, v in results.items() if v[1] is not None}
    if not reported:
        detail = "; ".join(
            f"node {i}: {r.exit_status}"
            f" (exitcode={r.exitcode}, crashes={r.crashes})"
            for i, r in sorted(reports.items())
        )
        raise RuntimeError(f"no node reported a result — {detail}")
    best_node = min(reported, key=lambda i: (reported[i][1], i))
    order, length, _, _ = reported[best_node]
    reasons = {i: results[i][2] for i in results}
    for i, report in reports.items():
        if i not in results:
            reasons[i] = report.exit_status
    return MPResult(
        best_order=np.asarray(order, dtype=np.intp),
        best_length=int(length),
        best_node=best_node,
        node_lengths={i: reported[i][1] for i in reported},
        reasons=reasons,
        elapsed_seconds=elapsed,
        node_reports=dict(reports),
    )
