"""SolverService: the asyncio job manager.

One service owns a :class:`~repro.service.store.InstanceStore`, a
:class:`~repro.service.queue.WorkQueue` and a scheduler task.  Tenants
``submit()`` instances and get job ids back immediately; the scheduler
admits jobs as global and per-tenant slots free up, runs each through a
backend (:mod:`repro.service.backends`), and every observer —
``status()``, ``await result()``, ``async for`` over
``stream_incumbents()`` — reads the same :class:`JobRecord`.

Wall-clock use is deliberate and local: job latency and the scheduler's
poll timeout are *service* concerns, outside the virtual-time domain
(reprolint RPL002 does not scope this package; the solver underneath
still never reads the clock).  Every wait in this module is bounded —
``asyncio.wait_for`` with a finite timeout around every queue/event
wait — which is the asyncio face of the RPL005 invariant.

Observability (all under the ambient tracer, see docs/OBSERVABILITY.md):
``svc.submit`` / ``svc.job`` spans; ``svc.queue_depth`` gauge +
histogram; ``svc.job_latency`` histogram (wall seconds, submit to
terminal); per-tenant counters ``svc.jobs_submitted`` /
``svc.jobs_done`` / ``svc.jobs_failed`` / ``svc.jobs_cancelled`` /
``svc.incumbents`` and the ``svc.tenant_charged_vsec`` gauge.
"""

from __future__ import annotations

import asyncio
import time
from typing import AsyncIterator, Dict, Optional

from ..obs import get_tracer
from .backends import (
    BudgetExhausted,
    JobCancelled,
    WorkerCrashed,
    run_process_job,
    run_sim_job,
)
from .jobs import JobRecord, JobSpec, JobStatus, TenantPolicy
from .queue import WorkQueue
from .store import InstanceStore

__all__ = ["SolverService", "JobError"]

#: Scheduler poll interval: the wake event makes reaction immediate;
#: this only bounds the wait so a lost wakeup cannot hang the loop.
_SCHED_POLL_S = 0.05

#: Stream/result poll fallback, same role as above for observers.
_WAIT_POLL_S = 0.25


class JobError(RuntimeError):
    """Raised by :meth:`SolverService.result` for failed/cancelled jobs."""

    def __init__(self, job_id: str, status: JobStatus, message: str):
        super().__init__(f"job {job_id} {status.value}: {message}")
        self.job_id = job_id
        self.status = status


class SolverService:
    """Async job manager over the distributed CLK solver.

    Single-event-loop object: all public methods must be called from
    the loop that runs the scheduler (the TCP front end in
    :mod:`repro.service.server` is the multi-client entry point).

    Parameters
    ----------
    backend:
        ``"sim"`` (cooperative, in-process — deterministic interleaving,
        the default) or ``"process"`` (one supervised worker per job).
    max_running:
        Global cap on concurrently running jobs, across all tenants.
    default_policy:
        Tenant policy applied to tenants without an explicit
        :meth:`set_tenant` entry.
    store:
        Content-addressed instance store; constructed (with default
        byte budget) when not given.
    """

    def __init__(
        self,
        backend: str = "sim",
        max_running: int = 4,
        default_policy: Optional[TenantPolicy] = None,
        store: Optional[InstanceStore] = None,
        slice_steps: int = 1,
    ):
        if backend not in ("sim", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.max_running = int(max_running)
        self.store = store or InstanceStore()
        self.queue = WorkQueue(default_policy)
        self.jobs: Dict[str, JobRecord] = {}
        self._instances: Dict[str, object] = {}  # job_id -> canonical
        self._submitted_at: Dict[str, float] = {}
        self._changed: Dict[str, asyncio.Event] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._slice_steps = int(slice_steps)
        self._wake = asyncio.Event()
        self._scheduler: Optional[asyncio.Task] = None
        self._closing = False
        self._next_id = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "SolverService":
        if self._scheduler is None:
            self._closing = False
            self._scheduler = asyncio.create_task(
                self._schedule_loop(), name="svc-scheduler")
        return self

    async def close(self, cancel_pending: bool = True) -> None:
        """Stop the scheduler; optionally cancel all non-terminal jobs."""
        self._closing = True
        if cancel_pending:
            for job_id, record in self.jobs.items():
                if not record.status.terminal:
                    self.cancel(job_id)
        self._wake.set()
        for task in list(self._tasks.values()):
            try:
                await asyncio.wait_for(task, timeout=30.0)
            except asyncio.TimeoutError:
                # wait_for already cancelled the task on timeout; await
                # it so its finally blocks run before we move on —
                # cancel() without the await leaves a pending task to be
                # destroyed at loop teardown (the RPL009 leak class).
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        scheduler, self._scheduler = self._scheduler, None
        if scheduler is not None:
            scheduler.cancel()
            try:
                await scheduler
            except asyncio.CancelledError:
                pass

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- tenants -------------------------------------------------------------

    def set_tenant(self, tenant: str, policy: TenantPolicy) -> None:
        self.queue.set_policy(tenant, policy)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        instance,
        tenant: str = "default",
        priority: int = 0,
        seed: int = 0,
        budget_vsec_per_node: float = 1.0,
        n_nodes: int = 8,
        **params,
    ) -> str:
        """Queue one solve job; returns its job id immediately.

        ``params`` are forwarded to :func:`repro.core.solve` (kick,
        topology, c_v, ...).  The instance is interned in the
        content-addressed store: a duplicate submit — same defining
        data, any name, any tenant — shares the stored instance and its
        warm candidate caches (``record.store_hit`` marks this).
        """
        if self._closing:
            raise RuntimeError("service is closing; submissions rejected")
        tracer = get_tracer()
        with tracer.span("svc.submit", tenant=tenant):
            canonical, digest = self.store.intern(instance)
            store_hit = canonical is not instance
            self._next_id += 1
            job_id = f"job-{self._next_id:04d}"
            spec = JobSpec(
                instance_name=canonical.name,
                tenant=tenant,
                priority=priority,
                seed=seed,
                budget_vsec_per_node=budget_vsec_per_node,
                n_nodes=n_nodes,
                params=tuple(sorted(params.items())),
            )
            record = JobRecord(job_id, spec, digest, store_hit=store_hit)
            self.jobs[job_id] = record
            self._instances[job_id] = canonical
            self._submitted_at[job_id] = time.perf_counter()
            self._changed[job_id] = asyncio.Event()
            self.queue.push(record)
            metrics = tracer.metrics
            metrics.inc("svc.jobs_submitted", tenant=tenant)
            metrics.set_gauge("svc.queue_depth", self.queue.depth())
            metrics.observe("svc.queue_depth", self.queue.depth())
            self._wake.set()
            return job_id

    # -- observation ---------------------------------------------------------

    def _job(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return record

    def status(self, job_id: str) -> dict:
        """JSON-safe snapshot of one job's lifecycle state."""
        return self._job(job_id).snapshot()

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still cancellable.

        A queued job is cancelled immediately; a running one at its
        backend's next slice boundary; a terminal one is left alone.
        """
        record = self._job(job_id)
        if record.status.terminal:
            return False
        record.cancel_requested = True
        if record.status is JobStatus.QUEUED:
            if self.queue.remove(job_id) is not None:
                self._finish(record, JobStatus.CANCELLED, "cancelled",
                             release=False)
        self._wake.set()
        return True

    async def wait(self, job_id: str,
                   timeout: Optional[float] = None) -> JobRecord:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        record = self._job(job_id)
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        while not record.status.terminal:
            if deadline is not None and time.perf_counter() >= deadline:
                raise asyncio.TimeoutError(
                    f"job {job_id} not terminal after {timeout}s")
            event = self._changed[job_id]
            event.clear()
            if record.status.terminal:
                break
            try:
                await asyncio.wait_for(event.wait(), timeout=_WAIT_POLL_S)
            except asyncio.TimeoutError:
                # Poll fallback; the loop re-checks terminal state.
                continue
        return record

    async def result(self, job_id: str, timeout: Optional[float] = None):
        """The job's :class:`SimulationResult`; raises on failure.

        Waits for the job to finish, then returns the result for DONE
        jobs and raises :class:`JobError` (carrying the terminal status
        and error message) for FAILED/CANCELLED ones.
        """
        record = await self.wait(job_id, timeout=timeout)
        if record.status is JobStatus.DONE:
            return record.result
        raise JobError(job_id, record.status, record.error or "")

    async def stream_incumbents(
        self, job_id: str
    ) -> AsyncIterator[tuple]:
        """Yield ``(vsec, length, node_id)`` improvements as they land.

        Replays improvements already recorded, then follows the live run
        and terminates when the job does.  Multiple concurrent streams
        per job are fine — each keeps its own cursor.
        """
        record = self._job(job_id)
        cursor = 0
        while True:
            event = self._changed[job_id]
            event.clear()
            while cursor < len(record.incumbents):
                yield record.incumbents[cursor]
                cursor += 1
            if record.status.terminal:
                return
            try:
                await asyncio.wait_for(event.wait(), timeout=_WAIT_POLL_S)
            except asyncio.TimeoutError:
                # Poll fallback; the loop re-checks for new incumbents.
                continue

    def stats(self) -> dict:
        """Service-wide snapshot: queue, jobs by status, store, tenants."""
        by_status: Dict[str, int] = {}
        for record in self.jobs.values():
            key = record.status.value
            by_status[key] = by_status.get(key, 0) + 1
        tenants = sorted({r.spec.tenant for r in self.jobs.values()})
        return {
            "backend": self.backend,
            "queue_depth": self.queue.depth(),
            "running": len(self._tasks),
            "jobs": by_status,
            "store": self.store.stats(),
            "tenants": {
                t: {
                    "running": self.queue.running(t),
                    "charged_vsec": round(self.queue.charged(t), 6),
                    "remaining_budget": self.queue.remaining_budget(t),
                }
                for t in tenants
            },
        }

    # -- scheduling ----------------------------------------------------------

    async def _schedule_loop(self) -> None:
        while not self._closing:
            self._fill_slots()
            try:
                await asyncio.wait_for(self._wake.wait(),
                                       timeout=_SCHED_POLL_S)
            except asyncio.TimeoutError:
                # Idle tick: re-check queue and closing flag.
                continue
            finally:
                self._wake.clear()

    def _fill_slots(self) -> None:
        metrics = get_tracer().metrics
        while len(self._tasks) < self.max_running:
            record = self.queue.pop_ready()
            if record is None:
                break
            if record.cancel_requested:
                self._finish(record, JobStatus.CANCELLED, "cancelled")
                continue
            if self.queue.budget_exhausted(record.spec.tenant):
                # pop_ready hands these over so they fail fast instead
                # of sitting queued behind an empty allowance.
                self._finish(record, JobStatus.FAILED,
                             "tenant vsec budget exhausted")
                continue
            record.status = JobStatus.RUNNING
            self._notify(record)
            task = asyncio.create_task(
                self._run_job(record), name=f"svc-{record.job_id}")
            self._tasks[record.job_id] = task
        metrics.set_gauge("svc.queue_depth", self.queue.depth())

    def _notify(self, record: JobRecord) -> None:
        event = self._changed.get(record.job_id)
        if event is not None:
            event.set()

    def _finish(self, record: JobRecord, status: JobStatus,
                error: Optional[str], release: bool = True) -> None:
        """Move a job to a terminal state and settle accounting."""
        tenant = record.spec.tenant
        record.status = status
        record.error = error
        submitted = self._submitted_at.get(record.job_id)
        if submitted is not None:
            record.latency_s = time.perf_counter() - submitted
        if release:
            self.queue.release(record)
        metrics = get_tracer().metrics
        if status is JobStatus.DONE:
            metrics.inc("svc.jobs_done", tenant=tenant)
        elif status is JobStatus.FAILED:
            metrics.inc("svc.jobs_failed", tenant=tenant)
        else:
            metrics.inc("svc.jobs_cancelled", tenant=tenant)
        if record.latency_s is not None:
            metrics.observe("svc.job_latency", record.latency_s)
        metrics.set_gauge("svc.tenant_charged_vsec",
                          self.queue.charged(tenant), tenant=tenant)
        self._notify(record)
        self._wake.set()

    async def _run_job(self, record: JobRecord) -> None:
        tracer = get_tracer()
        tenant = record.spec.tenant
        instance = self._instances[record.job_id]

        def on_incumbent(vsec: float, length: int, node_id: int) -> None:
            record.incumbents.append((vsec, length, node_id))
            tracer.metrics.inc("svc.incumbents", tenant=tenant)
            self._notify(record)

        def is_cancelled() -> bool:
            return record.cancel_requested

        def charge(delta_vsec: float) -> bool:
            self.queue.charge(tenant, delta_vsec)
            record.charged_vsec += float(delta_vsec)
            return not self.queue.budget_exhausted(tenant)

        runner = run_sim_job if self.backend == "sim" else run_process_job
        # Both backends meter in slices: the sim backend on the event
        # loop, the process backend inside the worker (progress reports).
        kwargs = {"slice_steps": self._slice_steps}
        try:
            with tracer.span("svc.job", job=record.job_id, tenant=tenant,
                             instance=record.spec.instance_name):
                record.result = await runner(
                    record.spec,
                    instance,
                    on_incumbent=on_incumbent,
                    is_cancelled=is_cancelled,
                    charge=charge,
                    **kwargs,
                )
            self._finish(record, JobStatus.DONE, None)
        except JobCancelled as exc:
            record.result = exc.partial
            self._finish(record, JobStatus.CANCELLED, "cancelled")
        except BudgetExhausted as exc:
            record.result = exc.partial
            self._finish(record, JobStatus.FAILED, str(exc))
        except WorkerCrashed as exc:
            self._finish(record, JobStatus.FAILED, str(exc))
        except Exception as exc:
            # Supervision backstop: any backend defect surfaces as a
            # failed job instead of an unobserved task exception.
            self._finish(record, JobStatus.FAILED,
                         f"{type(exc).__name__}: {exc}")
        finally:
            self._tasks.pop(record.job_id, None)
            self._wake.set()
