"""Extra coverage: driver helpers, NodeConfig, SimulationResult."""

import pytest

from repro.core import NodeConfig, replicate, solve
from repro.tsp import generators


@pytest.fixture(scope="module")
def inst():
    return generators.uniform(35, rng=60)


class TestNodeConfig:
    def test_with_target_copies(self):
        cfg = NodeConfig(kick="random", c_v=10)
        cfg2 = cfg.with_target(1234)
        assert cfg2.target_length == 1234
        assert cfg2.kick == "random" and cfg2.c_v == 10
        assert cfg.target_length is None  # original untouched

    def test_frozen(self):
        cfg = NodeConfig()
        with pytest.raises(AttributeError):
            cfg.c_v = 1


class TestSimulationResult:
    def test_time_to_quality_semantics(self, inst):
        res = solve(inst, budget_vsec_per_node=0.4, n_nodes=2,
                    topology="ring", rng=3)
        first_t, first_len = res.global_trace[0]
        # Anything above the first recorded length is reached at that time.
        assert res.time_to_quality(first_len + 10**6) == first_t
        # Better than the final best: never reached.
        assert res.time_to_quality(res.best_length - 1) is None
        # The best itself is reached at best_found_at.
        assert res.time_to_quality(res.best_length) == res.best_found_at

    def test_hit_target_false_without_target(self, inst):
        res = solve(inst, budget_vsec_per_node=0.2, n_nodes=2,
                    topology="ring", rng=4)
        assert not res.hit_target()


class TestReplicateExtra:
    def test_mean_time_to_quality_none_when_unreachable(self, inst):
        summary = replicate(inst, budget_vsec_per_node=0.15, n_runs=2,
                            n_nodes=2, topology="ring", rng=5)
        assert summary.mean_time_to_quality(1) is None

    def test_lengths_and_best(self, inst):
        summary = replicate(inst, budget_vsec_per_node=0.15, n_runs=3,
                            n_nodes=2, topology="ring", rng=6)
        assert len(summary.lengths) == 3
        assert summary.best_length == summary.lengths.min()
        assert summary.mean_excess(float(summary.best_length)) >= 0.0


class TestFreeInit:
    def test_free_init_gives_more_productive_budget(self, inst):
        """With init uncharged, the same budget buys more kicks, so the
        free_init run must be at least as good on average."""
        plain = solve(inst, budget_vsec_per_node=0.3, n_nodes=2,
                      topology="ring", rng=7)
        free = solve(inst, budget_vsec_per_node=0.3, n_nodes=2,
                     topology="ring", free_init=True, rng=7)
        # Clock accounting: free-init run still respects the budget.
        assert all(c <= 0.3 + 0.2 for c in free.clocks.values())
        assert free.best_length <= plain.best_length * 1.02

    def test_clk_free_init_trace_starts_at_zero_ish(self, inst):
        from repro.localsearch import chained_lk

        res = chained_lk(inst, budget_vsec=0.3, free_init=True, rng=1)
        t0, _ = res.trace[0]
        assert t0 == pytest.approx(0.0, abs=1e-9)
        assert res.work_vsec <= 0.5
