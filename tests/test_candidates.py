"""Tests for the pluggable candidate-set providers.

The load-bearing property is the distance-sorted-row invariant: every
provider's rows must be distance-sorted, self-free lists of distinct
cities, because the operators' early break (``d >= gain -> stop``) is
only correct under it.
"""

import numpy as np
import pytest

from repro.localsearch import LinKernighan, LKConfig
from repro.tsp import as_candidate_set, get_candidate_set
from repro.tsp.candidates import (
    AlphaCandidates,
    ExplicitCandidates,
    KNNCandidates,
    QuadrantCandidates,
    candidate_set_names,
)


def assert_sorted_rows(instance, arr, check_distinct=True):
    """Assert the distance-sorted-row invariant for a candidate array."""
    assert arr.shape[0] == instance.n
    for i, row in enumerate(arr):
        cities = row.tolist()
        assert i not in cities, f"row {i} contains itself"
        if check_distinct:
            assert len(set(cities)) == len(cities), f"row {i} has duplicates"
        d = [instance.dist(i, c) for c in cities]
        assert d == sorted(d), f"row {i} not distance-sorted"


class TestSortedRowInvariant:
    def test_knn(self, small_instance):
        assert_sorted_rows(small_instance, KNNCandidates(8).lists(small_instance))

    def test_quadrant_geometric(self, clustered_instance):
        arr = QuadrantCandidates(8).lists(clustered_instance)
        assert_sorted_rows(clustered_instance, arr)

    def test_alpha(self, small_instance):
        provider = AlphaCandidates(k=5, ascent_iterations=20)
        arr = provider.lists(small_instance)
        assert_sorted_rows(small_instance, arr)

    def test_explicit_resorts_unsorted_rows(self, small_instance):
        raw = small_instance.neighbor_lists(6)[:, ::-1]  # reverse: unsorted
        arr = ExplicitCandidates(raw, assume_sorted=False).lists(small_instance)
        assert_sorted_rows(small_instance, arr)
        # Same cities per row, re-ordered.
        for a, b in zip(arr, raw):
            assert set(a.tolist()) == set(b.tolist())


class TestProviders:
    def test_knn_matches_instance_cache(self, small_instance):
        # Bit-identical (in fact the same object) as the legacy arrays.
        assert KNNCandidates(8).lists(small_instance) is \
            small_instance.neighbor_lists(8)
        assert KNNCandidates(8).row_lists(small_instance) is \
            small_instance.neighbor_row_lists(8)

    def test_quadrant_falls_back_without_coordinates(self, explicit_instance):
        assert not explicit_instance.is_geometric
        provider = QuadrantCandidates(8)
        arr = provider.lists(explicit_instance)
        assert np.array_equal(arr, explicit_instance.neighbor_lists(8))

    def test_quadrant_differs_from_knn_on_clusters(self, clustered_instance):
        q = QuadrantCandidates(8).lists(clustered_instance)
        k = KNNCandidates(8).lists(clustered_instance)
        assert not np.array_equal(q, k)

    def test_explicit_rejects_bad_shapes(self, small_instance):
        with pytest.raises(ValueError, match="2-D"):
            ExplicitCandidates(np.arange(5))
        wrong_n = np.zeros((small_instance.n + 1, 4), dtype=np.intp)
        with pytest.raises(ValueError, match="covers"):
            ExplicitCandidates(wrong_n).lists(small_instance)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            KNNCandidates(0)


class TestCaching:
    def test_lists_cached_per_instance(self, small_instance):
        provider = AlphaCandidates(k=4, ascent_iterations=10)
        a = provider.lists(small_instance)
        b = provider.lists(small_instance)
        assert a is b
        assert not a.flags.writeable
        # A second provider with the same policy hits the same cache slot.
        c = AlphaCandidates(k=4, ascent_iterations=10).lists(small_instance)
        assert c is a
        # Different policy parameters get a different entry.
        d = AlphaCandidates(k=4, ascent_iterations=11).lists(small_instance)
        assert d is not a

    def test_row_lists_cached(self, small_instance):
        provider = QuadrantCandidates(8)
        assert provider.row_lists(small_instance) is \
            provider.row_lists(small_instance)

    def test_explicit_arrays_do_not_collide(self, small_instance):
        # Two explicit providers of equal width must not share a cache slot.
        a = ExplicitCandidates(small_instance.neighbor_lists(4))
        rolled = np.roll(small_instance.neighbor_lists(4), 1, axis=0)
        b = ExplicitCandidates(rolled, assume_sorted=False)
        assert not np.array_equal(
            a.lists(small_instance), b.lists(small_instance)
        )


class TestRegistry:
    def test_names(self):
        assert candidate_set_names() == ("alpha", "knn", "quadrant")

    def test_get_candidate_set(self):
        p = get_candidate_set("quadrant", k=12)
        assert isinstance(p, QuadrantCandidates)
        assert p.k == 12 and p.per_quadrant == 3

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown candidate set"):
            get_candidate_set("nearest_enemy")

    def test_as_candidate_set_coercions(self, small_instance):
        p = KNNCandidates(5)
        assert as_candidate_set(p) is p
        assert isinstance(as_candidate_set("alpha"), AlphaCandidates)
        wrapped = as_candidate_set(small_instance.neighbor_lists(4))
        assert isinstance(wrapped, ExplicitCandidates)
        assert wrapped.k == 4


class TestLKConfigValidation:
    @pytest.mark.parametrize("kwargs,msg", [
        ({"neighbor_k": 0}, "neighbor_k"),
        ({"max_depth": 0}, "max_depth"),
        ({"breadth": ()}, "at least one"),
        ({"breadth": (5, 0)}, "breadth levels"),
        ({"candidate_set": "bogus"}, "unknown candidate set"),
    ])
    def test_rejects_bad_values(self, kwargs, msg):
        with pytest.raises(ValueError, match=msg):
            LKConfig(**kwargs)

    def test_make_candidates_default(self):
        p = LKConfig(neighbor_k=6).make_candidates()
        assert isinstance(p, KNNCandidates)
        assert p.k == 6

    def test_make_candidates_legacy_quadrant_flag(self):
        p = LKConfig(use_quadrant_neighbors=True).make_candidates()
        assert isinstance(p, QuadrantCandidates)
        # An explicit candidate_set choice wins over the legacy flag.
        p = LKConfig(use_quadrant_neighbors=True,
                     candidate_set="alpha").make_candidates()
        assert isinstance(p, AlphaCandidates)


class TestEngineWiring:
    def test_default_lk_uses_legacy_knn_arrays(self, small_instance):
        engine = LinKernighan(small_instance)
        assert engine.neighbors is small_instance.neighbor_lists(8)

    def test_lk_accepts_provider_names_and_arrays(self, small_instance):
        by_name = LinKernighan(small_instance, candidates="quadrant")
        assert isinstance(by_name.candidates, QuadrantCandidates)
        arr = small_instance.neighbor_lists(5)
        by_array = LinKernighan(small_instance, candidates=arr)
        assert isinstance(by_array.candidates, ExplicitCandidates)
        assert np.array_equal(by_array.neighbors, arr)
