"""TSP substrate: instances, distances, tours, neighbour lists, testbed."""

from .candidates import (
    CandidateSet,
    as_candidate_set,
    candidate_set_names,
    get_candidate_set,
)
from .instance import TSPInstance
from .tour import Tour, random_tour
from . import (
    atsp,
    candidates,
    distances,
    generators,
    neighbors,
    registry,
    stats,
    tsplib,
)

__all__ = [
    "TSPInstance",
    "Tour",
    "random_tour",
    "CandidateSet",
    "get_candidate_set",
    "candidate_set_names",
    "as_candidate_set",
    "atsp",
    "candidates",
    "distances",
    "generators",
    "neighbors",
    "registry",
    "stats",
    "tsplib",
]
