"""CLI: ``python -m tools.reprolint [paths...]``.

Exit status 0 when clean, 1 when violations were found, 2 on usage
errors — the contract the CI static-analysis job and the pre-commit
hook rely on.  ``--format`` selects the output shape: ``text`` (the
human default), ``json`` (one machine-readable document on stdout for
editor/tooling integration), or ``github`` (workflow-command lines —
``::error file=...`` — so CI violations annotate the PR diff).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .config import load_config
from .engine import Violation, lint_paths
from .rules import ALL_RULES


def render_json(violations: Sequence[Violation]) -> str:
    """One JSON document: ``{"violations": [...], "count": N}``."""
    return json.dumps(
        {
            "violations": [
                {
                    "rule": v.rule_id,
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in violations
            ],
            "count": len(violations),
        },
        indent=2,
    )


def render_github(v: Violation) -> str:
    """A GitHub Actions workflow-command line that annotates the diff.

    Newlines/percents in the message are URL-encoded per the workflow
    command spec; ``col`` is 0-based in the engine, 1-based for GitHub.
    """
    message = (
        v.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    return (
        f"::error file={v.path},line={v.line},col={v.col + 1},"
        f"title=reprolint {v.rule_id}::{v.rule_id} {message}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="repo-specific reproducibility/invariant linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--root", default=".",
        help="project root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format: human text, one JSON document, or GitHub "
        "workflow-annotation lines (default: text)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    root = Path(args.root)
    try:
        config = load_config(root)
    except ValueError as exc:
        print(f"reprolint: bad configuration: {exc}", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    violations = lint_paths(paths, config=config, root=root)
    if args.format == "json":
        print(render_json(violations))
    else:
        for v in violations:
            print(render_github(v) if args.format == "github"
                  else v.render())
    if violations:
        print(
            f"reprolint: {len(violations)} violation(s) "
            f"(suppress with '# reprolint: disable=<ID>'; "
            "rationale: docs/CHECKS.md)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head` closed the pipe
        sys.exit(0)
