"""Tests for the Tour data structure."""

import numpy as np
import pytest

from repro.tsp.tour import Tour, random_tour


class TestConstruction:
    def test_identity(self, small_instance):
        t = Tour.identity(small_instance)
        assert t.is_valid()
        assert t.length == t.recompute_length()

    def test_rejects_non_permutation(self, small_instance):
        order = np.zeros(small_instance.n, dtype=int)
        with pytest.raises(ValueError, match="permutation"):
            Tour(small_instance, order)

    def test_rejects_wrong_size(self, small_instance):
        with pytest.raises(ValueError, match="cities"):
            Tour(small_instance, np.arange(10))

    def test_random_tour_valid(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        assert t.is_valid()

    def test_copy_is_independent(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        c = t.copy()
        c.reverse_segment(2, 10)
        assert not np.array_equal(t.order, c.order)
        assert t.is_valid() and c.is_valid()


class TestNavigation:
    def test_next_prev_inverse(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        for c in range(small_instance.n):
            assert t.prev(t.next(c)) == c
            assert t.next(t.prev(c)) == c

    def test_next_wraps(self, small_instance):
        t = Tour.identity(small_instance)
        assert t.next(small_instance.n - 1) == 0
        assert t.prev(0) == small_instance.n - 1

    def test_between(self, small_instance):
        t = Tour.identity(small_instance)
        assert t.between(2, 5, 9)
        assert not t.between(2, 1, 9)
        # wrapped arc
        assert t.between(50, 55, 3)
        assert t.between(50, 1, 3)
        assert not t.between(50, 10, 3)


class TestEdges:
    def test_edge_count(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        assert len(t.edge_set()) == small_instance.n

    def test_edges_shape(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        e = t.edges()
        assert e.shape == (small_instance.n, 2)


class TestReverseSegment:
    def test_simple_reverse(self, small_instance):
        t = Tour.identity(small_instance)
        before = t.recompute_length()
        t.reverse_segment(3, 7)
        assert list(t.order[3:8]) == [7, 6, 5, 4, 3]
        assert t.is_valid()
        # length field untouched by design; recompute changes
        t.length = t.recompute_length()
        assert t.length != before or True

    def test_wrapping_reverse(self, small_instance):
        t = Tour.identity(small_instance)
        n = small_instance.n
        t.reverse_segment(n - 2, 1)  # wraps over position 0
        assert t.is_valid()

    def test_reverse_is_involution(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        ref = t.order.copy()
        t.reverse_segment(5, 20)
        t.reverse_segment(5, 20)
        assert np.array_equal(t.order, ref)

    def test_complement_reversal_same_cycle(self, small_instance):
        # Reversing a segment or its complement yields the same cyclic tour.
        t1 = Tour.identity(small_instance)
        t2 = Tour.identity(small_instance)
        t1.reverse_segment(2, 5)
        t2.reverse_segment(6, 1)  # complement (shorter-side logic aside)
        assert t1.edge_set() == t2.edge_set()

    def test_returns_swap_count(self, small_instance):
        t = Tour.identity(small_instance)
        assert t.reverse_segment(0, 4) == 2
        assert t.reverse_segment(0, 0) == 0

    def test_property_matches_naive_reference(self, tiny_instance, rng):
        # Exhaustive over all (i, j) on n=9: the vectorized reversal
        # (contiguous slice or wrapped fancy-index) must produce the same
        # cyclic tour as a naive per-element reversal of positions i..j,
        # keep position as the exact inverse of order, and report
        # shorter-side swap work.
        n = tiny_instance.n
        base = random_tour(tiny_instance, rng)
        for i in range(n):
            for j in range(n):
                t = base.copy()
                swaps = t.reverse_segment(i, j)
                assert t.is_valid(), (i, j)
                ref = _naive_reverse(base.order, i, j)
                assert t == Tour(tiny_instance, ref), (i, j)
                inner = (j - i) % n + 1
                assert swaps == min(inner, n - inner) // 2, (i, j)

    def test_wrapped_reverse_matches_reference_random(self, small_instance, rng):
        n = small_instance.n
        for _ in range(50):
            i, j = (int(v) for v in rng.integers(0, n, size=2))
            t = random_tour(small_instance, rng)
            ref = _naive_reverse(t.order, i, j)
            t.reverse_segment(i, j)
            assert t.is_valid(), (i, j)
            assert t == Tour(small_instance, ref), (i, j)


def _naive_reverse(order, i, j):
    """Reference: reverse cyclic positions i..j with per-element swaps."""
    out = order.tolist()
    n = len(out)
    count = (j - i) % n + 1
    lo, hi = i, j
    for _ in range(count // 2):
        out[lo % n], out[hi % n] = out[hi % n], out[lo % n]
        lo += 1
        hi -= 1
    return np.array(out)


class TestTwoOptMove:
    def test_two_opt_move_applies_delta(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        inst = small_instance
        a = int(t.order[0])
        b = t.next(a)
        c = int(t.order[10])
        d = t.next(c)
        delta = inst.dist(a, c) + inst.dist(b, d) - inst.dist(a, b) - inst.dist(c, d)
        t.two_opt_move(a, b, c, d, delta)
        assert t.is_valid()
        assert t.length == t.recompute_length()


class TestDoubleBridge:
    def test_double_bridge_valid_and_length(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        t.double_bridge((5, 15, 30))
        assert t.is_valid()
        assert t.length == t.recompute_length()

    def test_double_bridge_changes_four_edges(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        before = t.edge_set()
        t.double_bridge((5, 15, 30))
        after = t.edge_set()
        assert len(before - after) == 4
        assert len(after - before) == 4

    def test_invalid_cuts_raise(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        with pytest.raises(ValueError, match="cuts"):
            t.double_bridge((5, 5, 10))
        with pytest.raises(ValueError, match="cuts"):
            t.double_bridge((0, 5, 10))

    def test_not_undoable_by_single_2opt(self, square_instance):
        # The defining property of the DBM: it is a 4-exchange.
        pass  # covered structurally by the 4-edge-change test above


class TestCanonicalEquality:
    def test_rotations_equal(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        rolled = Tour(small_instance, np.roll(t.order, 13))
        assert t == rolled

    def test_reversal_equal(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        rev = Tour(small_instance, t.order[::-1].copy())
        assert t == rev

    def test_different_not_equal(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        u = t.copy()
        u.double_bridge((4, 9, 30))
        assert t != u
