"""Tests for the Chained LK driver (the ABCC-CLK baseline)."""

import pytest

from repro.bounds import held_karp_exact
from repro.localsearch import ChainedLK, chained_lk
from repro.tsp import generators
from repro.utils.work import WorkMeter


class TestRun:
    def test_requires_stopping_criterion(self, small_instance):
        solver = ChainedLK(small_instance, rng=0)
        with pytest.raises(ValueError, match="stopping"):
            solver.run()

    def test_budget_respected_roughly(self, small_instance):
        res = chained_lk(small_instance, budget_vsec=0.5, rng=1)
        assert res.work_vsec >= 0.5  # ran to exhaustion
        assert res.work_vsec < 1.5   # but did not blow through it
        assert res.tour.is_valid()
        assert res.length == res.tour.recompute_length()

    def test_max_kicks_respected(self, small_instance):
        res = chained_lk(small_instance, max_kicks=7, rng=2)
        assert res.kicks == 7

    def test_target_short_circuits(self):
        inst = generators.uniform(12, rng=5)
        opt, _ = held_karp_exact(inst)
        res = chained_lk(inst, budget_vsec=5.0, target_length=opt, rng=0)
        assert res.hit_target
        assert res.length == opt
        assert res.work_vsec < 5.0

    def test_kicks_never_worsen_best(self, small_instance):
        res = chained_lk(small_instance, max_kicks=30, rng=3)
        lengths = [l for _, l in res.trace]
        assert lengths == sorted(lengths, reverse=True)

    def test_trace_monotone_time(self, small_instance):
        res = chained_lk(small_instance, max_kicks=30, rng=4)
        times = [t for t, _ in res.trace]
        assert times == sorted(times)

    def test_deterministic(self, small_instance):
        a = chained_lk(small_instance, max_kicks=10, rng=99)
        b = chained_lk(small_instance, max_kicks=10, rng=99)
        assert a.length == b.length
        assert a.trace == b.trace

    @pytest.mark.parametrize("kick", ["random", "geometric", "close", "random_walk"])
    def test_all_kick_strategies(self, small_instance, kick):
        res = chained_lk(small_instance, max_kicks=5, kick=kick, rng=6)
        assert res.tour.is_valid()
        assert res.length == res.tour.recompute_length()

    def test_initial_tour_supplied(self, small_instance):
        from repro.construct import nearest_neighbor

        init = nearest_neighbor(small_instance, start=0)
        solver = ChainedLK(small_instance, rng=0)
        res2 = solver.run(max_kicks=3, initial=init)
        assert res2.tour.is_valid()
        assert res2.length <= init.length

    def test_improves_over_construction(self, small_instance):
        from repro.construct import quick_boruvka

        qb = quick_boruvka(small_instance)
        res = chained_lk(small_instance, max_kicks=20, rng=1)
        assert res.length < qb.length


class TestStep:
    def test_step_returns_candidate_without_mutating_best(self, small_instance):
        solver = ChainedLK(small_instance, rng=0)
        best = solver.initial_tour()
        snapshot = best.order.copy()
        meter = WorkMeter()
        cand = solver.step(best, meter)
        assert (best.order == snapshot).all()
        assert cand.is_valid()
        assert cand.length == cand.recompute_length()

    def test_multi_kick_step(self, small_instance):
        solver = ChainedLK(small_instance, rng=0)
        best = solver.initial_tour()
        cand = solver.step(best, WorkMeter(), n_kicks=4)
        assert cand.is_valid()
        assert cand.length == cand.recompute_length()
