"""Network topologies.

The paper arranges 8 nodes in a **hypercube**; the hub assigns each
joining node a hypercube position and hands it the neighbour list of the
already-known nodes (see :mod:`repro.distributed.hub`).  Other topologies
are provided for the ablation benches (the paper's future-work section
asks how the structure matters).

A topology is simply ``dict[int, tuple[int, ...]]`` mapping node id to its
neighbour ids; all topologies here are undirected and connected.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import ensure_rng

__all__ = [
    "hypercube",
    "ring",
    "grid",
    "complete",
    "random_regular",
    "get_topology",
    "validate_topology",
    "remove_node",
]


def hypercube(n_nodes: int) -> dict[int, tuple[int, ...]]:
    """(Incomplete) hypercube on ``n_nodes`` nodes.

    Node ids are hypercube coordinates; two nodes are adjacent iff their
    ids differ in exactly one bit.  When ``n_nodes`` is not a power of two
    the result is the induced subgraph on ids ``0..n_nodes-1`` (which is
    connected), matching how the paper's hub fills positions first-come
    first-served.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    dim = max(1, int(np.ceil(np.log2(max(n_nodes, 2)))))
    topo = {}
    for i in range(n_nodes):
        nbrs = []
        for b in range(dim):
            j = i ^ (1 << b)
            if j < n_nodes and j != i:
                nbrs.append(j)
        topo[i] = tuple(sorted(nbrs))
    return topo


def ring(n_nodes: int) -> dict[int, tuple[int, ...]]:
    """Bidirectional ring."""
    if n_nodes < 2:
        return {0: ()} if n_nodes == 1 else {}
    return {
        i: tuple(sorted({(i - 1) % n_nodes, (i + 1) % n_nodes} - {i}))
        for i in range(n_nodes)
    }


def grid(n_nodes: int) -> dict[int, tuple[int, ...]]:
    """Near-square 2D grid (row-major ids)."""
    cols = int(np.ceil(np.sqrt(n_nodes)))
    topo: dict[int, list[int]] = {i: [] for i in range(n_nodes)}
    for i in range(n_nodes):
        r, c = divmod(i, cols)
        for dr, dc in ((0, 1), (1, 0)):
            j = (r + dr) * cols + (c + dc)
            if c + dc < cols and j < n_nodes:
                topo[i].append(j)
                topo[j].append(i)
    return {i: tuple(sorted(set(v))) for i, v in topo.items()}


def complete(n_nodes: int) -> dict[int, tuple[int, ...]]:
    """Complete graph (every node broadcasts to every other)."""
    return {
        i: tuple(j for j in range(n_nodes) if j != i) for i in range(n_nodes)
    }


def random_regular(n_nodes: int, degree: int = 3, rng=None,
                   max_tries: int = 200) -> dict[int, tuple[int, ...]]:
    """Random connected ``degree``-regular graph (pairing model + retry)."""
    if n_nodes * degree % 2 != 0:
        raise ValueError("n_nodes * degree must be even")
    if degree >= n_nodes:
        return complete(n_nodes)
    rng = ensure_rng(rng)
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n_nodes), degree)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges = {tuple(sorted(map(int, p))) for p in pairs}
        if any(a == b for a, b in edges) or len(edges) < len(pairs):
            continue
        topo: dict[int, list[int]] = {i: [] for i in range(n_nodes)}
        for a, b in edges:
            topo[a].append(b)
            topo[b].append(a)
        result = {i: tuple(sorted(v)) for i, v in topo.items()}
        if _connected(result):
            return result
    raise RuntimeError("failed to sample a connected regular graph")


def _connected(topo: dict[int, tuple[int, ...]]) -> bool:
    if not topo:
        return True
    seen = {next(iter(topo))}
    stack = list(seen)
    while stack:
        for j in topo[stack.pop()]:
            if j not in seen:
                seen.add(j)
                stack.append(j)
    return len(seen) == len(topo)


_TOPOLOGIES = {
    "hypercube": hypercube,
    "ring": ring,
    "grid": grid,
    "complete": complete,
}


def get_topology(name: str, n_nodes: int, **kwargs) -> dict[int, tuple[int, ...]]:
    """Build a named topology (``random_regular`` takes ``degree``/``rng``)."""
    if name == "random_regular":
        return random_regular(n_nodes, **kwargs)
    try:
        builder = _TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; choices: "
            f"{sorted(_TOPOLOGIES) + ['random_regular']}"
        ) from None
    return builder(n_nodes, **kwargs)


def remove_node(topo: dict[int, tuple[int, ...]],
                node_id: int) -> dict[int, tuple[int, ...]]:
    """Topology degradation around a dead node.

    Removes ``node_id`` and cross-links its former neighbours into a
    clique, so the surviving graph keeps (at least) the connectivity the
    dead node provided — the same "topology degenerates around finished
    nodes" behaviour the paper describes for end-of-run drop-out, applied
    to crashes by the multiprocessing supervisor.
    """
    if node_id not in topo:
        raise KeyError(f"node {node_id} not in topology")
    orphans = topo[node_id]
    out: dict[int, set] = {
        i: set(nbrs) - {node_id} for i, nbrs in topo.items() if i != node_id
    }
    for a in orphans:
        for b in orphans:
            if a != b:
                out[a].add(b)
    return {i: tuple(sorted(v)) for i, v in out.items()}


def validate_topology(topo: dict[int, tuple[int, ...]],
                      require_connected: bool = True) -> None:
    """Raise ValueError unless the topology is simple and symmetric.

    Connectivity is required by default; pass ``require_connected=False``
    for deliberately partitioned setups (e.g. the no-cooperation arm of
    the topology ablation).
    """
    for i, nbrs in topo.items():
        if i in nbrs:
            raise ValueError(f"self-loop at node {i}")
        if len(set(nbrs)) != len(nbrs):
            raise ValueError(f"duplicate neighbours at node {i}")
        for j in nbrs:
            if j not in topo or i not in topo[j]:
                raise ValueError(f"asymmetric edge {i} -> {j}")
    if require_connected and not _connected(topo):
        raise ValueError("topology is not connected")
