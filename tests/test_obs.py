"""Tests for the observability layer (repro.obs): tracer, metrics, export.

Covers the ISSUE's acceptance points: span nesting with correct virtual
and wall accounting, the disabled-mode identity fast path, the metrics
cardinality cap, JSONL round-trips, and integration smoke against the
simulator (phase sums equal node clocks) and the process backend.
"""

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_SPAN,
    Histogram,
    Metrics,
    Tracer,
    get_tracer,
    read_jsonl,
    set_obs,
    set_tracer,
    summarize_trace,
    time_in_phase,
    use_tracer,
    write_jsonl,
)


class FakeMeter:
    """Minimal ``.vsec`` virtual-time source (WorkMeter stand-in)."""

    def __init__(self):
        self.vsec = 0.0


class TestSpans:
    def test_nesting_and_virtual_accounting(self):
        tracer = Tracer(enabled=True)
        meter = FakeMeter()
        with tracer.span("outer", vt=meter, node=0) as outer:
            meter.vsec = 1.5
            with tracer.span("inner", vt=meter) as inner:
                meter.vsec = 2.0
        assert outer.vdur == pytest.approx(2.0)
        assert inner.vdur == pytest.approx(0.5)
        assert inner.parent == outer.index
        assert inner.depth == outer.depth + 1 == 1
        assert outer.labels == {"node": 0}
        assert outer.wall >= inner.wall >= 0.0
        assert tracer._stack == []

    def test_callable_virtual_time_source(self):
        tracer = Tracer(enabled=True)
        clock = [3.0]
        with tracer.span("s", vt=lambda: clock[0]) as span:
            clock[0] = 7.5
        assert span.vdur == pytest.approx(4.5)

    def test_wall_only_span_has_zero_vdur(self):
        tracer = Tracer(enabled=True)
        with tracer.span("w") as span:
            pass
        assert span.vdur == 0.0
        assert span.v0 is None and span.v1 is None

    def test_record_span_post_hoc(self):
        tracer = Tracer(enabled=True)
        span = tracer.record_span("stamp", 1.0, 1.0, node=3)
        assert span.vdur == 0.0
        assert tracer.spans == [span]

    def test_exception_still_closes_span(self):
        tracer = Tracer(enabled=True)
        meter = FakeMeter()
        with pytest.raises(RuntimeError):
            with tracer.span("boom", vt=meter):
                meter.vsec = 1.0
                raise RuntimeError("x")
        assert tracer.spans[0].vdur == pytest.approx(1.0)
        assert tracer._stack == []


class TestDisabledFastPath:
    def test_identity_null_span(self):
        tracer = Tracer(enabled=False)
        # Every disabled call site gets the *same* object: no allocation.
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b", vt=FakeMeter(), node=1) is NULL_SPAN
        with tracer.span("c"):
            pass
        assert tracer.spans == []

    def test_null_metrics_shared_and_inert(self):
        tracer = Tracer(enabled=False)
        assert tracer.metrics is NULL_METRICS
        tracer.metrics.inc("x", 5, node=1)
        tracer.metrics.set_gauge("y", 2.0)
        tracer.metrics.observe("z", 0.5)
        assert NULL_METRICS.counters == {}
        assert NULL_METRICS.gauges == {}
        assert NULL_METRICS.hists == {}

    def test_record_span_disabled_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.record_span("s", 0.0, 1.0) is None
        assert tracer.spans == []

    def test_env_flag_drives_default(self):
        try:
            set_obs(True)
            assert Tracer().enabled
            set_obs(False)
            assert not Tracer().enabled
        finally:
            set_obs(None)

    def test_use_tracer_restores_previous(self):
        before = get_tracer()
        override = Tracer(enabled=True)
        with use_tracer(override):
            assert get_tracer() is override
        assert get_tracer() is before


class TestMetrics:
    def test_counters_and_gauges(self):
        m = Metrics()
        m.inc("hits", node=1)
        m.inc("hits", 4, node=1)
        m.inc("hits", node=2)
        m.set_gauge("clock", 1.0, node=1)
        m.set_gauge("clock", 2.5, node=1)  # last write wins
        assert m.counter_value("hits", node=1) == 5
        assert m.counter_value("hits", node=2) == 1
        assert m.counter_value("hits", node=3) == 0.0
        assert m.gauges["clock"][(("node", "1"),)] == 2.5

    def test_histogram_buckets_and_stats(self):
        h = Histogram()
        for v in (0.5e-6, 0.05, 0.05, 5000.0):
            h.observe(v)
        assert h.count == 4
        assert h.counts[0] == 1          # <= 1e-6
        assert h.counts[-1] == 1         # overflow (> 1000)
        assert h.min == pytest.approx(0.5e-6)
        assert h.max == pytest.approx(5000.0)
        assert h.mean == pytest.approx((0.5e-6 + 0.1 + 5000.0) / 4)
        assert sum(h.counts) == h.count

    def test_label_cardinality_cap_folds_into_overflow(self):
        m = Metrics(max_series=4)
        for i in range(10):
            m.observe("lat", 0.1, node=i)
        assert m.dropped_series == 6
        # 4 admitted series plus the single overflow series.
        assert len(m.hists["lat"]) == 5
        folded = m.histogram("lat", overflow="true")
        assert folded.count == 6
        # Admitted series are unaffected.
        assert m.histogram("lat", node=0).count == 1

    def test_cap_is_per_metric_name(self):
        m = Metrics(max_series=2)
        for i in range(3):
            m.inc("a", node=i)
            m.inc("b", node=i)
        assert m.counter_value("a", overflow="true") == 1
        assert m.counter_value("b", overflow="true") == 1
        assert m.dropped_series == 2

    def test_reset(self):
        m = Metrics(max_series=1)
        m.inc("a", node=1)
        m.inc("a", node=2)
        m.reset()
        assert m.counters == {} and m.dropped_series == 0


class TestJsonlRoundTrip:
    def _populated_tracer(self):
        tracer = Tracer(enabled=True)
        meter = FakeMeter()
        with tracer.span("root", vt=meter, node=0):
            meter.vsec = 2.0
            with tracer.span("child", vt=meter, kind="x"):
                meter.vsec = 3.0
        tracer.metrics.inc("engine.calls", 7, node=0)
        tracer.metrics.set_gauge("node.clock_vsec", 3.0, node=0)
        tracer.metrics.observe("net.msg_latency_vsec", 0.01, kind="TOUR")
        return tracer

    def test_round_trip(self, tmp_path):
        tracer = self._populated_tracer()
        path = tmp_path / "t.jsonl"
        write_jsonl(tracer, path)
        back = read_jsonl(path)
        assert [s.name for s in back.spans] == ["root", "child"]
        assert back.spans[1].parent == back.spans[0].index
        assert back.spans[0].vdur == pytest.approx(3.0)
        assert back.spans[1].vdur == pytest.approx(1.0)
        assert back.spans[0].labels == {"node": 0}
        key = (("node", "0"),)
        assert back.counters["engine.calls"][key] == 7
        assert back.gauges["node.clock_vsec"][key] == 3.0
        hist = back.hists["net.msg_latency_vsec"][(("kind", "TOUR"),)]
        assert hist.count == 1
        assert hist.mean == pytest.approx(0.01)
        assert back.meta["format"] == 1

    def test_empty_tracer_round_trips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl(Tracer(enabled=True), path)
        back = read_jsonl(path)
        assert back.spans == [] and back.counters == {}

    def test_unknown_record_kinds_skipped(self, tmp_path):
        tracer = self._populated_tracer()
        path = tmp_path / "t.jsonl"
        write_jsonl(tracer, path)
        path.write_text(
            path.read_text() + '{"t": "future-kind", "payload": 1}\n'
        )
        back = read_jsonl(path)
        assert len(back.spans) == 2

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="not valid JSONL"):
            read_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text('{"t": "meta", "format": 99}\n')
        with pytest.raises(ValueError, match="unsupported trace format"):
            read_jsonl(path)


class TestSimulatorIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        from repro.core import solve
        from repro.tsp import generators

        inst = generators.uniform(80, rng=3)
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            result = solve(inst, budget_vsec_per_node=1.0, n_nodes=8, rng=5)
        path = tmp_path_factory.mktemp("obs") / "run.jsonl"
        write_jsonl(tracer, path)
        return result, read_jsonl(path)

    def test_phase_sums_equal_node_clocks(self, traced_run):
        result, trace = traced_run
        per_node = time_in_phase(trace)
        assert len(per_node) == 8
        for node, phases in per_node.items():
            # Bootstrap is charged (free_init=False), so the traced
            # phases account for the node's entire virtual clock.
            assert sum(phases.values()) == pytest.approx(
                result.clocks[int(node)], abs=1e-6
            ), f"node {node} phase sum != clock"

    def test_latency_histogram_counts_delivered_messages(self, traced_run):
        result, trace = traced_run
        total = sum(
            h.count
            for h in trace.hists.get("net.msg_latency_vsec", {}).values()
        )
        assert total == result.network_stats.delivered > 0

    def test_engine_counters_exported_per_node(self, traced_run):
        result, trace = traced_run
        calls = trace.counters.get("engine.calls", {})
        nodes = {dict(k)["node"] for k in calls}
        assert nodes == {str(i) for i in range(8)}
        total = sum(calls.values())
        assert total == sum(
            s.calls for s in result.op_stats.values()
        ) > 0

    def test_summarize_renders_all_sections(self, traced_run):
        _, trace = traced_run
        text = summarize_trace(trace)
        assert "time in phase" in text
        assert "span tree" in text
        assert "net.msg_latency_vsec" in text
        assert "engine telemetry" in text

    def test_untraced_run_records_nothing(self):
        from repro.core import solve
        from repro.tsp import generators

        inst = generators.uniform(40, rng=9)
        tracer = Tracer(enabled=False)
        with use_tracer(tracer):
            solve(inst, budget_vsec_per_node=0.1, n_nodes=2, rng=1)
        assert tracer.spans == []
        assert tracer.metrics is NULL_METRICS


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_mp_backend_traced_smoke():
    """Parent-side spans/metrics for the real-process backend."""
    from repro.core.node import NodeConfig
    from repro.distributed.mp_backend import run_multiprocessing
    from repro.tsp import generators

    inst = generators.uniform(40, rng=0)
    tracer = Tracer(enabled=True)
    try:
        with use_tracer(tracer):
            res = run_multiprocessing(
                inst,
                budget_seconds=2.0,
                n_nodes=2,
                node_config=NodeConfig(inner_kicks=2),
                topology="ring",
                rng=0,
            )
    finally:
        set_tracer(None)
    assert res.tour(inst).is_valid()
    names = [s.name for s in tracer.spans]
    assert "mp.run" in names
    run_span = tracer.spans[names.index("mp.run")]
    assert run_span.wall > 0.0
    for node_id in (0, 1):
        assert tracer.metrics.counter_value(
            "mp.iterations", node=node_id
        ) > 0
