"""Tests for the CI bench-regression gate (scripts/check_bench_regression.py).

The comparator must pass on an identical re-measurement and demonstrably
fail when handed a synthetically 2x-slowed result — that is the ISSUE's
acceptance criterion for the gate.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "scripts"))

from check_bench_regression import compare, main  # noqa: E402

BASELINE = {
    "format": 1,
    "machine_factor": 1.0,
    "metrics": {
        "engine.two_opt_knn_ops_per_ref_sec": {
            "value": 40000.0, "direction": "higher",
        },
        "clk.fl150_wall_ref_sec": {
            "value": 150.0, "direction": "lower",
        },
    },
    "checks": {"clk_fl150_length": 81314},
}


def _slowed(doc, factor=2.0):
    slow = json.loads(json.dumps(doc))
    for m in slow["metrics"].values():
        if m["direction"] == "higher":
            m["value"] /= factor
        else:
            m["value"] *= factor
    return slow


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestCompare:
    def test_equal_inputs_pass(self):
        rows = compare(BASELINE, BASELINE, max_slowdown=0.15)
        assert rows and not any(r[-1] for r in rows)

    def test_two_x_slowdown_fails_both_directions(self):
        rows = compare(BASELINE, _slowed(BASELINE), max_slowdown=0.15)
        assert all(r[-1] for r in rows)
        by_name = {r[0]: r for r in rows}
        # higher-direction: 40000 -> 20000 is a 50% slowdown
        assert by_name["engine.two_opt_knn_ops_per_ref_sec"][3] == \
            pytest.approx(0.5)
        # lower-direction: 150 -> 300 is a 100% slowdown
        assert by_name["clk.fl150_wall_ref_sec"][3] == pytest.approx(1.0)

    def test_within_tolerance_passes(self):
        rows = compare(BASELINE, _slowed(BASELINE, 1.10), max_slowdown=0.15)
        assert not any(r[-1] for r in rows)

    def test_speedup_never_fails(self):
        rows = compare(_slowed(BASELINE), BASELINE, max_slowdown=0.15)
        assert not any(r[-1] for r in rows)

    def test_missing_metric_fails(self):
        current = json.loads(json.dumps(BASELINE))
        del current["metrics"]["clk.fl150_wall_ref_sec"]
        rows = compare(BASELINE, current, max_slowdown=0.15)
        assert any(r[0] == "clk.fl150_wall_ref_sec" and r[-1] for r in rows)


class TestMainExitCodes:
    def test_identical_exits_zero(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", BASELINE)
        assert main([a, a]) == 0
        assert "all gated metrics within tolerance" in capsys.readouterr().out

    def test_slowed_exits_one(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", BASELINE)
        b = _write(tmp_path, "b.json", _slowed(BASELINE))
        assert main([a, b]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "REGRESSION" in out

    def test_check_drift_noted_but_not_gated(self, tmp_path, capsys):
        drifted = json.loads(json.dumps(BASELINE))
        drifted["checks"]["clk_fl150_length"] = 99999
        a = _write(tmp_path, "a.json", BASELINE)
        b = _write(tmp_path, "b.json", drifted)
        assert main([a, b]) == 0
        assert "determinism drift" in capsys.readouterr().out

    def test_unsupported_format_rejected(self, tmp_path):
        bad = _write(tmp_path, "bad.json", {"format": 99, "metrics": {}})
        good = _write(tmp_path, "good.json", BASELINE)
        with pytest.raises(SystemExit, match="unsupported format"):
            main([bad, good])

    def test_empty_baseline_fails(self, tmp_path, capsys):
        empty = _write(tmp_path, "e.json",
                       {"format": 1, "metrics": {}, "checks": {}})
        assert main([empty, empty]) == 1
        assert "no gated metrics" in capsys.readouterr().out


def test_committed_baseline_is_wellformed():
    """The baseline the CI gate compares against must stay loadable."""
    path = (Path(__file__).parent.parent / "benchmarks" / "baselines"
            / "BENCH_ci_baseline.json")
    doc = json.loads(path.read_text())
    assert doc["format"] == 1
    assert doc["metrics"], "baseline has no gated metrics"
    for name, metric in doc["metrics"].items():
        assert metric["direction"] in ("higher", "lower"), name
        assert metric["value"] > 0, name
