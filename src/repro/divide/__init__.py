"""Divide-and-optimize for large TSP instances.

Spatially partition an instance into regions of a target size, solve
each region with CLK or distributed CLK (one
:class:`~repro.core.session.SolveSession` per region, over the
simulator or a process pool), then stitch the region tours and repair
the seams with bounded local search restricted to cross-boundary
candidate edges.  See docs/ALGORITHMS.md ("Divide and optimize") for
the algorithmic rationale and guarantees.
"""

from .partition import (
    Partition,
    PartitionConfig,
    Region,
    partition_instance,
)
from .pipeline import DivideConfig, DivideResult, divide_and_optimize
from .repair import (
    boundary_candidate_lists,
    boundary_repair,
    naive_concatenation,
    stitch_tours,
)
from .scheduler import DivideCancelled, RegionResult, RegionScheduler

__all__ = [
    "Partition",
    "PartitionConfig",
    "Region",
    "partition_instance",
    "DivideConfig",
    "DivideResult",
    "divide_and_optimize",
    "boundary_candidate_lists",
    "boundary_repair",
    "naive_concatenation",
    "stitch_tours",
    "DivideCancelled",
    "RegionResult",
    "RegionScheduler",
]
