"""Paper Table 5: DistCLK average excess after early/late checkpoints.

    "Distance of the average tour length compared to known optimum ...
    for DistCLK after 10 and 1000 CPU seconds per node, respectively.
    Compare to Table 4."

Per-node budgets are 1/8 of Table 4's CLK budgets (equal total CPU; the
paper used 1/10); the early checkpoint is 1/5 of the late one.  Shape to
reproduce, per the paper's comparison of the two tables: at equal total
CPU (DistCLK late vs CLK late from Table 4), the distributed algorithm's
excesses are at least as good nearly everywhere, with many cells at OPT.
"""

import numpy as np

from _common import (
    emit,
    FULL_TESTBED,
    KICKS,
    KICK_LABELS,
    N_RUNS,
    dist_budget_per_node,
    print_banner,
    reference,
    run_clk,
    run_dist,
    clk_budget,
    seeds,
)
from repro.analysis import fmt_pct, format_table, mean_excess_percent, value_at


def _experiment():
    table = {}
    clk_late = {}
    for name in FULL_TESTBED:
        ref, kind = reference(name)
        budget = dist_budget_per_node(name)
        early_t = budget / 5.0  # paper factor 100; 5 at this scale
        for kick in KICKS:
            early, late = [], []
            for s in seeds(5000 + hash((name, kick)) % 1000, N_RUNS):
                res = run_dist(name, kick, s, budget=budget)
                v = value_at(res.global_trace, early_t)
                early.append(v if v is not None else res.global_trace[0][1])
                late.append(res.best_length)
            table[(name, kick)] = (
                mean_excess_percent(early, ref),
                mean_excess_percent(late, ref),
            )
        # Matched CLK reference runs (same protocol as Table 4): both
        # the final quality (equal total CPU) and the value at the
        # distributed per-node time (the parallel wall-clock comparison
        # the paper's Figure 2c/d plots).
        finals, at_node_time = [], []
        for s in seeds(4000 + hash((name, "random_walk")) % 1000, N_RUNS):
            res = run_clk(name, "random_walk", s, budget=clk_budget(name))
            finals.append(res.length)
            v = value_at(res.trace, budget)
            at_node_time.append(v if v is not None else res.trace[0][1])
        clk_late[name] = (
            mean_excess_percent(finals, ref),
            mean_excess_percent(at_node_time, ref),
        )
    return table, clk_late


def test_table5_distclk_quality(once):
    table, clk_late = once(_experiment)
    print_banner(
        "Table 5: DistCLK (8 nodes) average excess at early/late "
        "checkpoints (paper: 10 s / 10^3 s per node)",
        "per-node budget = 1/8 of Table 4 CLK budget (equal total CPU).",
    )
    headers = ["instance"]
    for kick in KICKS:
        headers += [f"{KICK_LABELS[kick]} early", f"{KICK_LABELS[kick]} late"]
    rows = []
    for name in FULL_TESTBED:
        row = [name]
        for kick in KICKS:
            e, l = table[(name, kick)]
            row += [fmt_pct(e), fmt_pct(l)]
        rows.append(row)
    emit(format_table(headers, rows))

    emit("\nDistCLK late vs ABCC-CLK (Random-walk kick):")
    emit("  'equal wall' = CLK read at the DistCLK per-node time "
         "(the parallel-machines comparison, Fig. 2c/d);")
    emit("  'equal total CPU' = CLK with 8x the per-node budget.")
    rows2 = []
    wall_wins = 0
    total_ties = 0
    deficits = []
    for name in FULL_TESTBED:
        d = table[(name, "random_walk")][1]
        c_final, c_at_node = clk_late[name]
        rows2.append((
            name, fmt_pct(d), fmt_pct(c_at_node), fmt_pct(c_final),
        ))
        wall_wins += d <= c_at_node + 0.02
        total_ties += d <= c_final + 0.02
        deficits.append(d - c_final)
    emit(format_table(
        ["instance", "DistCLK late", "CLK @ equal wall",
         "CLK @ equal total CPU"],
        rows2,
    ))
    emit(f"\nshape checks: DistCLK beats CLK at equal wall time on "
          f"{wall_wins}/{len(FULL_TESTBED)} instances (paper's Fig 2c/d "
          f"claim); ties CLK at equal total CPU on {total_ties} "
          f"(paper: all; at Python scale the single long CLK chain wins "
          f"the endgame on the harder instances, see EXPERIMENTS.md)")
    # The parallel (wall-clock) superiority must reproduce.
    assert wall_wins >= int(0.75 * len(FULL_TESTBED))
    # At equal total CPU: ties on the easy half, bounded deficit overall.
    assert total_ties >= len(FULL_TESTBED) // 4
    assert float(np.median(deficits)) < 2.0
