"""Network substrate: messages, topologies, hub, simulator, MP backend."""

from .hub import BootstrapNode, Hub
from .message import Message, MessageKind, tour_payload
from .mp_backend import MPResult, run_multiprocessing
from .network import LatencyModel, NetworkStats, SimulatedNetwork
from .simulator import SimulationResult, Simulator, run_simulation
from .supervision import BudgetPacer, NodeReport, Supervisor, deliver_critical
from .topology import get_topology, remove_node, validate_topology

__all__ = [
    "Message",
    "MessageKind",
    "tour_payload",
    "LatencyModel",
    "NetworkStats",
    "SimulatedNetwork",
    "Hub",
    "BootstrapNode",
    "get_topology",
    "remove_node",
    "validate_topology",
    "Simulator",
    "SimulationResult",
    "run_simulation",
    "MPResult",
    "run_multiprocessing",
    "BudgetPacer",
    "NodeReport",
    "Supervisor",
    "deliver_critical",
]
